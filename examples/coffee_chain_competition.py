"""Competitive site selection: entering a market with incumbents.

A coffee chain wants its first shop in a city where two incumbent
chains already operate.  Plain PRIME-LS would pick the busiest
location outright — often right next to a dominant incumbent, where
every customer it "influences" is already better served.  The
competitive solver (`repro.core.competitive`) counts only *marginal*
customers: those the new shop reaches at least as credibly as every
existing facility.

Run with::

    python examples/coffee_chain_competition.py
"""

import numpy as np

from repro import Candidate, PowerLawPF
from repro.core import CompetitivePrimeLS, NaiveAlgorithm
from repro.datasets import tiny_demo


def main() -> None:
    world = tiny_demo(seed=29)
    dataset = world.dataset
    pf = PowerLawPF(rho=0.9, lam=1.25)
    tau = 0.6

    rng = np.random.default_rng(4)
    candidates, _ = dataset.sample_candidates(30, rng)

    # Incumbents sit on the two biggest hotspots.
    incumbents = [
        Candidate(900 + k, hotspot.x, hotspot.y, label=f"incumbent-{k}")
        for k, hotspot in enumerate(world.city.hotspots[:2])
    ]

    plain = NaiveAlgorithm().select(dataset.objects, candidates, pf, tau)
    competitive = CompetitivePrimeLS(incumbents).select(
        dataset.objects, candidates, pf, tau
    )

    p_best = plain.best_candidate
    c_best = competitive.best_candidate
    print(
        f"ignoring competition: site {p_best.candidate_id} at "
        f"({p_best.x:.2f}, {p_best.y:.2f}) km influences "
        f"{plain.best_influence}/{dataset.n_objects} customers"
    )
    print(
        f"against incumbents:   site {c_best.candidate_id} at "
        f"({c_best.x:.2f}, {c_best.y:.2f}) km wins "
        f"{competitive.best_influence} marginal customers"
    )

    # How many of the naive winner's customers were actually contested?
    naive_idx = next(
        j for j, c in enumerate(candidates) if c is plain.best_candidate
    )
    naive_marginal = competitive.influences[naive_idx]
    print(
        f"\nthe naive winner keeps only {naive_marginal} of its "
        f"{plain.best_influence} customers once incumbents are considered"
    )
    if competitive.best_influence >= naive_marginal:
        print(
            "=> the competitive solver finds an equal-or-better niche "
            "location"
        )

    for inc in incumbents:
        print(f"   ({inc.label} at ({inc.x:.2f}, {inc.y:.2f}) km)")


if __name__ == "__main__":
    main()
