"""The paper's motivating scenario: placing an outdoor advertising balloon.

A company wants the balloon to be *observed* by as many mobile
customers as possible.  A customer observes the balloon at each of her
positions independently, with probability decaying in distance — so
whether she is "influenced" is the cumulative probability over all her
positions (Definition 1), not just her single nearest position.

The script reproduces the paper's Example 1 numerically, then runs the
scenario at city scale and contrasts the PRIME-LS choice with the
nearest-neighbour (BRNN*) choice.

Run with::

    python examples/advertising_balloons.py
"""

import numpy as np

from repro import BRNNStar, PowerLawPF, select_location
from repro.core.naive import exact_influence, exact_probability
from repro.datasets import foursquare_like
from repro.model import MovingObject


def example_1_from_the_paper() -> None:
    """Example 1 (§3.2) with the paper's hand-picked probabilities."""
    print("— Example 1 (paper §3.2) —")
    # Pr_{c1}(O1): positions with independent probabilities
    # 0.5, 0.1, 0.2, 0.15, 0.12  =>  cumulative 0.73
    probs_o1 = [0.5, 0.1, 0.2, 0.15, 0.12]
    cumulative = 1.0 - np.prod([1 - p for p in probs_o1])
    print(f"Pr_c1(O1) = {cumulative:.2f}  (paper: 0.73)")
    probs_o2 = [0.25, 0.35, 0.33, 0.3, 0.38]
    cumulative2 = 1.0 - np.prod([1 - p for p in probs_o2])
    print(f"Pr_c1(O2) = {cumulative2:.2f}  (paper: 0.86)")
    tau = 0.8
    print(
        f"with tau = {tau}: c1 influences O2 but not O1 — "
        "even though O1 has the nearest-neighbour position\n"
    )


def city_scale_scenario() -> None:
    print("— City-scale balloon placement —")
    world = foursquare_like(scale=0.1, seed=3)
    dataset = world.dataset
    rng = np.random.default_rng(1)
    candidates, _ = dataset.sample_candidates(100, rng)
    pf = PowerLawPF(rho=0.9, lam=1.0)
    tau = 0.7

    prime = select_location(dataset.objects, candidates, pf=pf, tau=tau)
    brnn = BRNNStar().select(dataset.objects, candidates, pf, tau)

    prime_c = prime.best_candidate
    brnn_c = brnn.best_candidate
    print(
        f"PRIME-LS picks candidate {prime_c.candidate_id} at "
        f"({prime_c.x:.2f}, {prime_c.y:.2f}) km"
    )
    print(
        f"BRNN*    picks candidate {brnn_c.candidate_id} at "
        f"({brnn_c.x:.2f}, {brnn_c.y:.2f}) km"
    )

    # Score both choices under the *probabilistic* influence model.
    prime_inf = exact_influence(dataset.objects, prime_c.x, prime_c.y, pf, tau)
    brnn_inf = exact_influence(dataset.objects, brnn_c.x, brnn_c.y, pf, tau)
    print(
        f"\ncustomers reached (Pr >= {tau}): PRIME-LS choice {prime_inf}, "
        f"BRNN* choice {brnn_inf}"
    )
    if prime_inf >= brnn_inf:
        gain = prime_inf - brnn_inf
        print(f"mobility-aware selection reaches {gain} more customers")

    # Show one concrete customer for intuition.
    obj: MovingObject = dataset.objects[0]
    p = exact_probability(obj, prime_c.x, prime_c.y, pf)
    print(
        f"\ne.g. customer {obj.object_id} with {obj.n_positions} positions "
        f"observes the balloon with cumulative probability {p:.3f}"
    )


def main() -> None:
    example_1_from_the_paper()
    city_scale_scenario()


if __name__ == "__main__":
    main()
