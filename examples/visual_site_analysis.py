"""Visual site analysis: regions, top-k sites, trajectory discretisation.

Combines three library features beyond the basic solver:

* continuous commuter trajectories discretised into moving objects
  (paper §3.1's "sampling using the same time interval"),
* top-k PRIME-LS — a shortlist of sites instead of a single winner,
* SVG rendering of the paper's geometric machinery (activity MBRs,
  influence arcs, non-influence boundaries) for a few objects.

Run with::

    python examples/visual_site_analysis.py

and open ``site_analysis.svg``.
"""

import numpy as np

from repro import Candidate, top_k_locations
from repro.prob import ExponentialPF
from repro.model.trajectory import daily_commuter_trajectory
from repro.viz import render_scene
from repro.viz.scene import save_scene


def main() -> None:
    rng = np.random.default_rng(8)
    extent = 25.0

    # 80 commuters moving between random home/work pairs for a week,
    # discretised at 24 samples per day (the paper's recommended rate).
    objects = []
    for oid in range(80):
        home = tuple(rng.uniform(0.15 * extent, 0.85 * extent, 2))
        work = tuple(rng.uniform(0.15 * extent, 0.85 * extent, 2))
        trajectory = daily_commuter_trajectory(oid, home, work, rng)
        objects.append(
            trajectory.resample(24 * 7, jitter_km=0.05, rng=rng)
        )

    # Candidate sites on a jittered grid.
    candidates = []
    site_id = 0
    for gx in np.linspace(2, extent - 2, 9):
        for gy in np.linspace(2, extent - 2, 9):
            candidates.append(
                Candidate(
                    site_id,
                    float(gx + rng.normal(0, 0.4)),
                    float(gy + rng.normal(0, 0.4)),
                )
            )
            site_id += 1

    # A short-range PF: with 168 positions per commuter the paper's
    # heavy-tailed power law influences everyone from everywhere; a
    # walking-distance exponential keeps the problem spatial.
    pf = ExponentialPF(rho=0.8, length=1.0)
    tau = 0.9

    shortlist = top_k_locations(objects, candidates, pf, tau, k=5)
    print("top-5 sites by probabilistic influence:")
    for rank, (cand, influence) in enumerate(shortlist, start=1):
        print(
            f"  {rank}. site {cand.candidate_id} at "
            f"({cand.x:.1f}, {cand.y:.1f}) km — reaches {influence}/80 commuters"
        )

    # Render a handful of objects with their IA/NIB regions plus the
    # winning site, like the paper's Figs 3-5.
    svg = render_scene(
        objects[:4], candidates, pf, tau, best=shortlist[0][0]
    )
    path = save_scene("site_analysis.svg", svg)
    print(f"\nscene written to {path} (open in a browser)")


if __name__ == "__main__":
    main()
