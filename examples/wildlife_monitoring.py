"""Placing a wildlife monitoring station over migrating animals.

The paper's introduction lists "a new monitoring station to track wild
animals' migration" as a PRIME-LS application.  Here each animal is a
moving object whose positions come from two seasonal ranges (summer /
winter) connected by a migration corridor; the detection probability
of a station decays exponentially with distance (sensor-like, bounded
support rather than the heavy-tailed check-in power law).

PRIME-LS finds the station with a realistic chance of detecting the
most animals at least once.  Because detection is *cumulative* over
every position an animal visits, the winning site lands where the most
animals spend the most time (a shared seasonal range) — a placement a
nearest-neighbour or snapshot analysis of any single season would get
wrong.

Run with::

    python examples/wildlife_monitoring.py
"""

import numpy as np

from repro import Candidate, MovingObject, select_location
from repro.prob import ExponentialPF


def simulate_herds(
    n_animals: int = 120,
    positions_per_animal: int = 30,
    seed: int = 21,
) -> list[MovingObject]:
    """Animals migrating between a northern and a southern range.

    Each animal has a home offset within both seasonal ranges; its
    positions are split between the ranges plus a few samples along
    the corridor connecting them.
    """
    rng = np.random.default_rng(seed)
    summer_center = np.array([20.0, 80.0])
    winter_center = np.array([60.0, 10.0])
    animals = []
    for animal_id in range(n_animals):
        offset = rng.normal(0.0, 6.0, size=2)
        n_summer = positions_per_animal // 2
        n_corridor = max(2, positions_per_animal // 10)
        n_winter = positions_per_animal - n_summer - n_corridor
        summer = summer_center + offset + rng.normal(0, 3.0, size=(n_summer, 2))
        winter = winter_center + offset + rng.normal(0, 3.0, size=(n_winter, 2))
        # Corridor samples: linear interpolation with jitter.
        ts = rng.uniform(0.2, 0.8, size=(n_corridor, 1))
        corridor = (
            summer_center + offset
            + ts * (winter_center - summer_center)
            + rng.normal(0, 2.0, size=(n_corridor, 2))
        )
        animals.append(
            MovingObject(animal_id, np.concatenate([summer, corridor, winter]))
        )
    return animals


def station_candidates() -> list[Candidate]:
    """A coarse grid of feasible station sites."""
    sites = []
    site_id = 0
    for x in np.linspace(5, 75, 8):
        for y in np.linspace(5, 85, 9):
            sites.append(Candidate(site_id, float(x), float(y), label="site"))
            site_id += 1
    return sites


def main() -> None:
    animals = simulate_herds()
    sites = station_candidates()
    # Sensor detection: 90% at the mast, ~33% at 5 km, negligible at 25 km.
    pf = ExponentialPF(rho=0.9, length=5.0)
    tau = 0.6

    result = select_location(animals, sites, pf=pf, tau=tau, algorithm="PIN-VO")
    best = result.best_candidate
    print(
        f"best station: site {best.candidate_id} at ({best.x:.1f}, {best.y:.1f}) km, "
        f"detecting {result.best_influence}/{len(animals)} animals "
        f"with probability >= {tau}"
    )

    # Compare against the naive single-range placements.
    from repro.core.naive import exact_influence

    for name, (x, y) in (
        ("summer range centre", (20.0, 80.0)),
        ("winter range centre", (60.0, 10.0)),
        ("corridor midpoint", (40.0, 45.0)),
    ):
        influence = exact_influence(animals, x, y, pf, tau)
        print(f"  {name:20s} ({x:4.1f}, {y:4.1f}) -> {influence} animals")

    inst = result.instrumentation
    print(
        f"\npruning resolved {inst.pruned_fraction():.0%} of pairs; "
        f"{inst.dead_objects} animals were undetectable at tau={tau}"
    )


if __name__ == "__main__":
    main()
