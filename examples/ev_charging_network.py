"""Planning an EV-charging portfolio over a road network.

Combines two extensions: drivers reach chargers along *streets*
(network distances, `repro.network`), and the operator installs a
*portfolio* of k sites rather than a single one (`repro.core.portfolio`
— greedy (1−1/e) coverage over exact influence sets).

The script first shows how straight-line planning overestimates reach
(network distance dominates Euclidean), then picks an expanding
portfolio of charger sites and prints the coverage curve.

Run with::

    python examples/ev_charging_network.py
"""

import numpy as np

from repro.core import NaiveAlgorithm, greedy_portfolio
from repro.model import Candidate, MovingObject
from repro.network import NetworkPrimeLS, grid_road_network
from repro.prob import ExponentialPF


def build_city(rng):
    """A 12x12 street grid with some blocked segments and slow roads."""
    return grid_road_network(
        12, 12, spacing_km=1.0, rng=rng, jitter_km=0.08,
        removal_prob=0.2, detour_factor=1.3,
    )


def simulate_drivers(network, rng, count=90, stops=12):
    """Drivers whose daily stops sit on street intersections."""
    _, xy = network.coordinates_array()
    drivers = []
    for oid in range(count):
        home = rng.integers(0, len(xy))
        picks = rng.integers(0, len(xy), size=stops - 4)
        anchor = np.tile(xy[home], (4, 1))
        positions = np.concatenate([anchor, xy[picks]], axis=0)
        drivers.append(
            MovingObject(oid, positions + rng.normal(0, 0.03, (stops, 2)))
        )
    return drivers


def main() -> None:
    rng = np.random.default_rng(31)
    network = build_city(rng)
    drivers = simulate_drivers(network, rng)
    _, xy = network.coordinates_array()
    sites = [
        Candidate(j, float(xy[i, 0]), float(xy[i, 1]))
        for j, i in enumerate(rng.choice(len(xy), 40, replace=False))
    ]
    # A driver plugs in when a charger is a short drive from her stops.
    pf = ExponentialPF(rho=0.9, length=1.5)
    tau = 0.6

    euclid = NaiveAlgorithm().select(drivers, sites, pf, tau)
    on_streets = NetworkPrimeLS(network).select(drivers, sites, pf, tau)
    print(
        f"single best charger — straight-line model: "
        f"{euclid.best_influence}/{len(drivers)} drivers; "
        f"street-network model: {on_streets.best_influence}"
    )
    print(
        "  (straight-line planning overestimates reach: streets only "
        "stretch distances)"
    )

    print("\ngreedy charger portfolio (Euclidean influence sets):")
    for k in (1, 2, 4, 6):
        chosen, covered = greedy_portfolio(drivers, sites, pf, tau, k=k)
        picked = ", ".join(str(sites[j].candidate_id) for j in chosen)
        print(
            f"  k={k}: covers {covered}/{len(drivers)} drivers "
            f"(sites {picked})"
        )


if __name__ == "__main__":
    main()
