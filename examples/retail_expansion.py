"""Retail expansion with dynamic updates (the paper's §7 future work).

A retail chain keeps a live PRIME-LS index while the world changes:
candidate sites come and go (leases appear and fall through) and the
customer base shifts (new customers arrive, others churn).  The
:class:`repro.IncrementalPrimeLS` extension maintains exact influence
counts through all of it, so "where should the next shop go?" is
always answerable without recomputation from scratch.

Run with::

    python examples/retail_expansion.py
"""

import numpy as np

from repro import Candidate, IncrementalPrimeLS, PowerLawPF, select_location
from repro.datasets import tiny_demo


def main() -> None:
    world = tiny_demo(seed=11)
    dataset = world.dataset
    pf = PowerLawPF(rho=0.9, lam=1.0)
    tau = 0.6

    rng = np.random.default_rng(5)
    initial_sites, _ = dataset.sample_candidates(25, rng)

    index = IncrementalPrimeLS(pf, tau)
    for obj in dataset.objects:
        index.add_object(obj)
    for site in initial_sites:
        index.add_candidate(site)

    best, influence = index.optimal_location()
    print(
        f"initial portfolio: {index.n_candidates} sites, "
        f"{index.n_objects} customers"
    )
    print(f"  best site: {best.candidate_id} reaching {influence} customers")

    # Cross-check against the batch solver.
    batch = select_location(dataset.objects, initial_sites, pf=pf, tau=tau)
    assert batch.best_influence == influence, "incremental != batch"

    # A prime corner lease becomes available downtown.
    downtown = world.city.hotspots[0]
    new_site = Candidate(9_001, downtown.x, downtown.y, label="downtown corner")
    gained = index.add_candidate(new_site)
    best, influence = index.optimal_location()
    print(
        f"\nnew lease {new_site.label!r} would reach {gained} customers; "
        f"best site is now {best.candidate_id} ({influence} customers)"
    )

    # Two leases fall through.
    for site in initial_sites[:2]:
        index.remove_candidate(site.candidate_id)
    best, influence = index.optimal_location()
    print(
        f"after losing 2 leases: best site {best.candidate_id} "
        f"({influence} customers)"
    )

    # Customer churn: 10 customers leave town, 15 new ones arrive.
    for obj in dataset.objects[:10]:
        index.remove_object(obj.object_id)
    newcomer_rng = np.random.default_rng(99)
    from repro.model import MovingObject

    for k in range(15):
        positions = world.city.sample_points(20, newcomer_rng)
        index.add_object(MovingObject(10_000 + k, positions))
    best, influence = index.optimal_location()
    print(
        f"after churn (-10/+15 customers): best site {best.candidate_id} "
        f"({influence} of {index.n_objects} customers)"
    )

    # Final consistency check against a batch run over the same state.
    live_sites = [c for c in initial_sites[2:]] + [new_site]
    live_objects = dataset.objects[10:] + [
        index._entries[10_000 + k].obj for k in range(15)
    ]
    batch = select_location(live_objects, live_sites, pf=pf, tau=tau)
    assert batch.best_influence == influence, (
        f"incremental ({influence}) != batch ({batch.best_influence})"
    )
    print("\nincremental index agrees with a from-scratch batch solve")


if __name__ == "__main__":
    main()
