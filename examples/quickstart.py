"""Quickstart: solve PRIME-LS on a small synthetic city.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import PowerLawPF, select_location, rank_candidates
from repro.datasets import tiny_demo


def main() -> None:
    # A small synthetic world: 60 users moving through a 12 x 9 km city,
    # 150 venues, check-in counts as ground truth.
    world = tiny_demo(seed=7)
    dataset = world.dataset
    print(f"dataset: {dataset}")
    print(f"stats:   {dataset.stats()}")

    # Candidate locations: 40 venues sampled uniformly (the paper's
    # setup samples candidates from check-in coordinates).
    rng = np.random.default_rng(0)
    candidates, venue_idx = dataset.sample_candidates(40, rng)

    # The paper's default probability function and threshold.
    pf = PowerLawPF(rho=0.9, lam=1.0)
    tau = 0.7

    # PINOCCHIO-VO (the fast exact algorithm) finds the optimal location.
    result = select_location(
        dataset.objects, candidates, pf=pf, tau=tau, algorithm="PIN-VO"
    )
    print(
        f"\noptimal location: {result.best_candidate} "
        f"influencing {result.best_influence}/{dataset.n_objects} objects"
    )
    inst = result.instrumentation
    print(
        f"pruning resolved {inst.pruned_fraction():.0%} of object-candidate "
        f"pairs before validation; early stopping skipped "
        f"{inst.position_savings():.0%} of validation positions"
    )

    # Full exact ranking (PINOCCHIO computes every influence).
    ranking = rank_candidates(dataset.objects, candidates, pf=pf, tau=tau)
    print("\ntop 5 candidates by influence:")
    for position, (cand_idx, influence) in enumerate(ranking[:5], start=1):
        cand = candidates[cand_idx]
        true_visits = dataset.venue_checkins[venue_idx[cand_idx]]
        print(
            f"  {position}. candidate {cand.candidate_id} at "
            f"({cand.x:.2f}, {cand.y:.2f}) km — influence {influence}, "
            f"actual check-ins {true_visits}"
        )


if __name__ == "__main__":
    main()
