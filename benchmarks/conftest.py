"""Shared infrastructure for the paper-reproduction benchmarks.

Every bench runs one experiment driver through pytest-benchmark
(single round — these are experiments, not microbenchmarks), prints
the paper-style table, and archives it under ``results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def record():
    """Print a rendered experiment table and archive it to results/."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _record


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
