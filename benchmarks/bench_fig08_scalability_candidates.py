"""Fig 8: runtime vs number of candidates (200..1000) on F and G.

Paper shapes to reproduce: cost grows with the candidate count; NA is
slowest; PIN-VO scales best; PIN and PIN-VO* sit in between.  We assert
on the machine-independent work counters (positions evaluated) and on
the NA-vs-PIN-VO wall-clock gap.
"""

import pytest

from repro.experiments import run_candidate_scalability

from conftest import run_once

COUNTS = (200, 400, 600, 800, 1000)


@pytest.mark.parametrize("dataset", ["F", "G"])
def test_fig8_candidate_scalability(benchmark, record, dataset):
    result = run_once(
        benchmark,
        lambda: run_candidate_scalability(dataset, candidate_counts=COUNTS),
    )
    record(f"fig08_scalability_candidates_{dataset}", result.render())

    # Work grows with candidate count for the exhaustive baseline.
    assert result.positions["NA"] == sorted(result.positions["NA"])
    for i in range(len(COUNTS)):
        na_pos = result.positions["NA"][i]
        pin_pos = result.positions["PIN"][i]
        vo_pos = result.positions["PIN-VO"][i]
        # Pruning removes a large share of NA's work...
        assert pin_pos < na_pos
        # ...and the validation strategies remove more still.
        assert vo_pos < pin_pos
    # Wall clock: PIN-VO beats NA clearly at every sweep point.
    for na_s, vo_s in zip(result.seconds["NA"], result.seconds["PIN-VO"]):
        assert vo_s < na_s
