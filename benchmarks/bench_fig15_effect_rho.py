"""Fig 15: effect of the behaviour factor ρ ∈ {0.5, 0.7, 0.9}.

Shape: higher ρ (stronger influence at every distance) raises the
maximum influence; PIN-VO's advantage over NA persists.
"""

import pytest

from repro.experiments import run_effect_rho

from conftest import run_once


@pytest.mark.parametrize("dataset", ["F", "G"])
def test_fig15_effect_rho(benchmark, record, dataset):
    result = run_once(benchmark, lambda: run_effect_rho(dataset))
    record(f"fig15_effect_rho_{dataset}", result.render())

    # Max influence increases with rho.
    for earlier, later in zip(result.max_influence, result.max_influence[1:]):
        assert later >= earlier
    for na_s, vo_s in zip(result.na_seconds, result.vo_seconds):
        assert vo_s < na_s
