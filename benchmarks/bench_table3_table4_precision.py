"""Tables 3-4: effectiveness of PRIME-LS vs Avg-RANGE vs BRNN*.

Paper claims to reproduce (shape, not absolute values):

* PRIME-LS beats BRNN* by roughly 20% (P@K) / 35% (AP@K) on average;
* PRIME-LS beats Avg-RANGE by roughly 8% / 12% on average;
* all three metrics grow with K.
"""

import numpy as np

from repro.experiments import run_precision_experiment
from repro.experiments.precision import KS

from conftest import run_once

GROUPS = 12  # paper: 50 random candidate groups; scaled for bench time


def test_tables_3_and_4_precision(benchmark, record):
    result = run_once(
        benchmark, lambda: run_precision_experiment(groups=GROUPS)
    )
    record("table3_table4_precision", result.render())

    def mean_over_k(table, method):
        return float(np.mean([table[method][k] for k in KS]))

    prime_p = mean_over_k(result.precision, "Prime-ls")
    range_p = mean_over_k(result.precision, "Avg. range")
    brnn_p = mean_over_k(result.precision, "brnn*")
    prime_ap = mean_over_k(result.avg_precision, "Prime-ls")
    brnn_ap = mean_over_k(result.avg_precision, "brnn*")

    # Who wins: PRIME-LS on average over K, on both metrics.
    assert prime_p > brnn_p, "PRIME-LS must beat BRNN* on P@K"
    assert prime_p > range_p * 0.98, "PRIME-LS must at least match RANGE on P@K"
    assert prime_ap > brnn_ap, "PRIME-LS must beat BRNN* on AP@K"

    # Both metrics grow with K for PRIME-LS (paper Tables 3-4).
    p_series = [result.precision["Prime-ls"][k] for k in KS]
    assert p_series[-1] > p_series[0]
