"""Machine-readable serving-performance trajectory: ``BENCH_3.json``.

Runs the five serving scenarios over one Gowalla-like fleet and a
distinct 24-candidate set per query (so warm PIN-VO traffic really
dispatches work instead of replaying the pruning cache):

* **cold** — stateless ``select_location`` per query (fleet
  materialised each time),
* **warm-serial** — one primed :class:`~repro.engine.QueryEngine`,
  ``workers=0``,
* **warm-fork** — the engine's fork-per-query sharding, ``workers=4``,
* **warm-pool** — the persistent shared-memory worker pool
  (``pool=True``),
* **batched** — all queries admitted through one
  ``QueryEngine.query_batch`` round on the pool.

Writes per-scenario p50/p95 latency and throughput to ``BENCH_3.json``
at the repo root (the machine-readable artifact downstream tooling
tracks across PRs) and the human-readable comparison table to
``results/engine_pool_vs_fork.txt``.  Run it via ``make bench-record``
or::

    PYTHONPATH=src python benchmarks/record_bench.py

The two acceptance ratios — pool ≥ 1.5× faster than fork at p50, and
batched admission out-throughputing sequential pool queries — are
checked here and reported in both artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.engine import run_serve_bench
from repro.engine.parallel import fork_available
from repro.experiments.tables import TextTable

ROOT = Path(__file__).resolve().parent.parent


def latency_stats(latencies_ms, **extra) -> dict:
    """p50/p95/mean/total latency plus throughput for one scenario."""
    arr = np.asarray(latencies_ms, dtype=float)
    total_s = float(arr.sum()) / 1000.0
    return {
        "queries": int(arr.size),
        "p50_ms": round(float(np.percentile(arr, 50)), 3),
        "p95_ms": round(float(np.percentile(arr, 95)), 3),
        "mean_ms": round(float(arr.mean()), 3),
        "total_ms": round(float(arr.sum()), 3),
        "throughput_qps": round(arr.size / total_s, 3) if total_s else None,
        **extra,
    }


def run_scenarios(
    n_queries: int = 12,
    workers: int = 4,
    algorithm: str = "PIN-VO",
    seed: int = 11,
) -> dict:
    """Run all five scenarios; returns the ``BENCH_3.json`` payload."""
    common = dict(
        n_queries=n_queries,
        algorithm=algorithm,
        seed=seed,
        distinct_candidates=True,
    )
    serial = run_serve_bench(workers=0, **common)
    scenarios = {
        "cold": latency_stats(serial.cold_ms),
        "warm-serial": latency_stats(serial.warm_ms),
    }
    if fork_available():
        fork = run_serve_bench(workers=workers, **common)
        pool = run_serve_bench(workers=workers, pool=True, **common)
        batch = run_serve_bench(
            workers=workers, pool=True, batch=True, **common
        )
        scenarios["warm-fork"] = latency_stats(fork.warm_ms)
        scenarios["warm-pool"] = latency_stats(
            pool.warm_ms,
            spans_dispatched=pool.spans_dispatched,
            pool_respawns=pool.pool_respawns,
        )
        scenarios["batched"] = latency_stats(
            batch.warm_ms,
            spans_dispatched=batch.spans_dispatched,
            pool_respawns=batch.pool_respawns,
        )
    comparisons = {}
    if "warm-pool" in scenarios:
        comparisons["pool_vs_fork_p50"] = round(
            scenarios["warm-fork"]["p50_ms"]
            / scenarios["warm-pool"]["p50_ms"],
            3,
        )
        comparisons["batch_vs_pool_throughput"] = round(
            scenarios["batched"]["throughput_qps"]
            / scenarios["warm-pool"]["throughput_qps"],
            3,
        )
    return {
        "bench": "serving",
        "workload": {
            "n_queries": n_queries,
            "workers": workers,
            "algorithm": algorithm,
            "seed": seed,
            "n_objects": serial.n_objects,
            "n_candidates": serial.n_candidates,
            "distinct_candidates": True,
        },
        "scenarios": scenarios,
        "comparisons": comparisons,
    }


def render(payload: dict) -> str:
    """The human-readable scenario table archived under results/."""
    table = TextTable(
        ["scenario", "p50 ms", "p95 ms", "mean ms", "qps"]
    )
    for name, s in payload["scenarios"].items():
        table.add_row(
            [name, s["p50_ms"], s["p95_ms"], s["mean_ms"],
             s["throughput_qps"]],
            float_fmt="{:.2f}",
        )
    w = payload["workload"]
    lines = [
        table.render(
            title=(
                f"serving scenarios: {w['algorithm']}, "
                f"{w['n_objects']} objects x {w['n_candidates']} "
                f"candidates, {w['n_queries']} queries, "
                f"workers={w['workers']}"
            )
        )
    ]
    c = payload["comparisons"]
    if c:
        lines.append(
            f"pool vs fork p50 speedup: {c['pool_vs_fork_p50']:.2f}x "
            f"(target >= 1.5x)"
        )
        lines.append(
            f"batched vs sequential-pool throughput: "
            f"{c['batch_vs_pool_throughput']:.2f}x (target > 1x)"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    """Run the scenarios and write both artifacts; 1 on a missed target."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--queries", type=int, default=12)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--algorithm", default="PIN-VO")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--out", default=str(ROOT / "BENCH_3.json"),
        help="where to write the JSON payload",
    )
    args = parser.parse_args(argv)

    payload = run_scenarios(
        n_queries=args.queries,
        workers=args.workers,
        algorithm=args.algorithm,
        seed=args.seed,
    )
    text = render(payload)
    print(text)

    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    results_dir = ROOT / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "engine_pool_vs_fork.txt").write_text(text + "\n")
    print(f"\nJSON written to {args.out}")
    print(f"table archived to {results_dir / 'engine_pool_vs_fork.txt'}")

    c = payload["comparisons"]
    if not c:
        print("fork unavailable: pool scenarios skipped", file=sys.stderr)
        return 0
    ok = (
        c["pool_vs_fork_p50"] >= 1.5
        and c["batch_vs_pool_throughput"] > 1.0
    )
    if not ok:
        print("performance targets missed", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
