"""Machine-readable serving-performance trajectory: ``BENCH_4/5.json``.

Runs the six serving scenarios over one Gowalla-like fleet and a
distinct 24-candidate set per query (so warm PIN-VO traffic really
dispatches work instead of replaying the pruning cache):

* **cold** — stateless ``select_location`` per query (fleet
  materialised each time),
* **warm-serial** — one primed :class:`~repro.engine.QueryEngine`,
  ``workers=0``,
* **warm-fork** — the engine's fork-per-query sharding, ``workers=4``,
* **warm-pool** — the persistent shared-memory worker pool
  (``pool=True``),
* **batched** — all queries admitted through one
  ``QueryEngine.query_batch`` round on the pool,
* **overload** — the same workload offered at 4× the admission budget
  (``max_inflight=1``, three of every four arrivals meet a full queue
  via injected ``overload`` phantom load): the excess is shed with
  typed outcomes and the *completed* queries must keep their latency —
  p99 within 2× of the unloaded warm-serial p99.

A seventh scenario measures the *observability tax*: the warm-pool
workload untraced vs fully traced (``trace_path=`` span export plus a
live metrics endpoint), recorded separately as ``BENCH_5.json``.

Writes per-scenario p50/p95/p99 latency and throughput to
``BENCH_4.json`` at the repo root (the machine-readable artifact
downstream tooling tracks across PRs), the human-readable comparison
table to ``results/engine_pool_vs_fork.txt``, the overload summary
to ``results/engine_overload.txt``, and the tracing-overhead summary
to ``results/engine_observability.txt``.  Run it via
``make bench-record`` or::

    PYTHONPATH=src python benchmarks/record_bench.py

The acceptance ratios — pool ≥ 1.5× faster than fork at p50, batched
admission out-throughputing sequential pool queries, the overload
p99 bound with a non-empty shed count, and traced pool p50 within
1.05× of untraced — are checked here and reported in the artifacts.

``--ladder`` switches to the object-count scale ladder instead:
10³ → 10⁶ objects at constant spatial density, measuring the columnar
IA/NIB classification kernel against the legacy per-entry path (with
a chunk-wise bit-identity gate), warm-serial query latency, a pool
worker sweep, and the process's peak RSS per rung — written to
``BENCH_6.json`` + ``results/engine_scale_ladder.txt``.
``--ladder-smoke`` (the ``make bench-ladder`` CI step) runs only the
two small rungs and exits non-zero on any kernel mismatch.

``--approx`` runs the approximate-tier scenario at the 10⁵-object
rung: the workload offered at 4× admission pressure to an
``approx=True`` engine must shed nothing (over-budget arrivals are
answered from the influence sketch), every approximate answer's
measured error must stay within its advertised bound, and the approx
per-query latency must beat warm-serial exact by ≥ 10× — written to
``BENCH_7.json`` + ``results/engine_approx_tier.txt``.

``--streaming`` runs the standing-subscription rung: 10⁵ objects ×
10³ standing queries on one :class:`SubscriptionEngine`, streaming
10⁵ positions per workload — crossing-light (anchor jitter, safe
regions absorb most refreshes) then crossing-heavy (uniform jumps) —
and recording update throughput, safe-region hit rate, recompute
p50/p99, and bit-identity spot checks against one-shot queries.
Acceptance: ≥ 10⁴ positions/sec crossing-light, a hit-rate contrast
between the two workloads, and exact spot checks — written to
``BENCH_9.json`` + ``results/engine_streaming.txt``.
``--streaming-smoke`` (the ``make bench-streaming`` CI step) drives
an update storm at 4× the round budget with a pool crash mid-stream
and asserts every subscription stays bit-identical with /dev/shm
clean.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import resource
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.object_table import ObjectTable
from repro.core.pruning import classify_chunks, classify_table_chunks
from repro.datasets import gowalla_like
from repro.engine import (
    FaultInjector,
    FaultSpec,
    QueryEngine,
    QueryShedError,
    run_serve_bench,
)
from repro.engine.bench import TAUS
from repro.engine.parallel import fork_available
from repro.experiments.tables import TextTable
from repro.model import Candidate, MovingObject
from repro.prob import PowerLawPF

ROOT = Path(__file__).resolve().parent.parent


def latency_stats(latencies_ms, **extra) -> dict:
    """p50/p95/p99/mean/total latency plus throughput for one scenario."""
    arr = np.asarray(latencies_ms, dtype=float)
    total_s = float(arr.sum()) / 1000.0
    return {
        "queries": int(arr.size),
        "p50_ms": round(float(np.percentile(arr, 50)), 3),
        "p95_ms": round(float(np.percentile(arr, 95)), 3),
        "p99_ms": round(float(np.percentile(arr, 99)), 3),
        "mean_ms": round(float(arr.mean()), 3),
        "total_ms": round(float(arr.sum()), 3),
        "throughput_qps": round(arr.size / total_s, 3) if total_s else None,
        **extra,
    }


def run_overload_scenario(
    n_queries: int = 12,
    algorithm: str = "PIN-VO",
    seed: int = 11,
) -> dict:
    """Serve the workload unloaded, then at 4× admission pressure.

    Both passes run the same primed serial engine configuration and
    time every query individually.  The overloaded pass arms admission
    control (``max_inflight=1``) and injects ``overload`` phantom load
    on three of every four measured queries, so arrivals meet a full
    queue 75% of the time — 4× the admission budget in aggregate.
    Shed queries cost near-zero and are excluded from the completed
    latency distribution by construction (they raise
    :class:`QueryShedError`).
    """
    world = gowalla_like(scale=0.1, seed=seed)
    objects = world.dataset.objects
    rng = np.random.default_rng(seed)
    cand_sets = [
        world.dataset.sample_candidates(24, rng)[0]
        for _ in range(n_queries)
    ]
    pf = PowerLawPF()
    taus = [TAUS[i % len(TAUS)] for i in range(n_queries)]

    def timed_pass(engine):
        latencies, shed = [], 0
        for i in range(n_queries):
            started = time.perf_counter()
            try:
                engine.query(
                    cand_sets[i], pf=pf, tau=taus[i], algorithm=algorithm
                )
            except QueryShedError:
                shed += 1
                continue
            latencies.append((time.perf_counter() - started) * 1000.0)
        return latencies, shed

    engine = QueryEngine(objects)
    try:
        for tau in TAUS:  # unmeasured priming pass (query ids 0-2)
            engine.query(cand_sets[0], pf=pf, tau=tau, algorithm=algorithm)
        unloaded, _ = timed_pass(engine)
    finally:
        engine.close()

    # The priming pass consumes query ids 0-2; phantom load hits the
    # measured ids 3.. except every fourth, which completes.
    faults = [
        FaultSpec(kind="overload", query=3 + i, times=1)
        for i in range(n_queries)
        if i % 4 != 0
    ]
    engine = QueryEngine(
        objects,
        max_inflight=1,
        fault_injector=FaultInjector(faults),
    )
    try:
        for tau in TAUS:
            engine.query(cand_sets[0], pf=pf, tau=tau, algorithm=algorithm)
        completed, shed = timed_pass(engine)
        report = engine.admission.report
        return {
            "unloaded": latency_stats(unloaded),
            "completed": latency_stats(completed),
            "offered": n_queries,
            "shed": shed,
            "shed_reasons": sorted({s.reason for s in report.shed}),
            "pressure": "4x",
        }
    finally:
        engine.close()


def run_observability_scenario(
    n_queries: int = 12,
    workers: int = 4,
    algorithm: str = "PIN-VO",
    seed: int = 11,
    rounds: int = 3,
) -> dict:
    """Warm-pool latency untraced vs fully traced: the observability tax.

    Runs the pool scenario ``rounds`` times per arm — untraced, then
    traced with span export to a JSONL file *and* a live metrics
    endpoint — alternating arms so machine drift hits both equally,
    and keeps each arm's best (lowest) p50.  Returns the
    ``BENCH_5.json`` payload; the acceptance ratio is
    ``traced_p50 / untraced_p50 <= 1.05``.
    """
    common = dict(
        n_queries=n_queries,
        workers=workers,
        algorithm=algorithm,
        seed=seed,
        distinct_candidates=True,
        pool=True,
    )
    untraced_runs, traced_runs = [], []
    traces_exported = 0
    with tempfile.TemporaryDirectory(prefix="pinls_bench5_") as tmp:
        for i in range(rounds):
            untraced_runs.append(run_serve_bench(**common))
            traced = run_serve_bench(
                trace_path=str(Path(tmp) / f"traces_{i}.jsonl"),
                metrics_port=0,
                **common,
            )
            traces_exported = traced.traces_exported
            traced_runs.append(traced)

    def best(runs):
        stats = [latency_stats(r.warm_ms) for r in runs]
        return min(stats, key=lambda s: s["p50_ms"])

    untraced, traced = best(untraced_runs), best(traced_runs)
    return {
        "bench": "observability",
        "workload": {
            "n_queries": n_queries,
            "workers": workers,
            "algorithm": algorithm,
            "seed": seed,
            "rounds": rounds,
            "pool": True,
        },
        "scenarios": {"untraced": untraced, "traced": traced},
        "traces_exported_per_run": traces_exported,
        "comparisons": {
            "traced_vs_untraced_p50": round(
                traced["p50_ms"] / untraced["p50_ms"], 3
            ),
        },
    }


def run_scenarios(
    n_queries: int = 12,
    workers: int = 4,
    algorithm: str = "PIN-VO",
    seed: int = 11,
) -> dict:
    """Run all six scenarios; returns the ``BENCH_4.json`` payload."""
    common = dict(
        n_queries=n_queries,
        algorithm=algorithm,
        seed=seed,
        distinct_candidates=True,
    )
    serial = run_serve_bench(workers=0, **common)
    scenarios = {
        "cold": latency_stats(serial.cold_ms),
        "warm-serial": latency_stats(serial.warm_ms),
    }
    if fork_available():
        fork = run_serve_bench(workers=workers, **common)
        pool = run_serve_bench(workers=workers, pool=True, **common)
        batch = run_serve_bench(
            workers=workers, pool=True, batch=True, **common
        )
        scenarios["warm-fork"] = latency_stats(fork.warm_ms)
        scenarios["warm-pool"] = latency_stats(
            pool.warm_ms,
            spans_dispatched=pool.spans_dispatched,
            pool_respawns=pool.pool_respawns,
        )
        scenarios["batched"] = latency_stats(
            batch.warm_ms,
            spans_dispatched=batch.spans_dispatched,
            pool_respawns=batch.pool_respawns,
        )
    overload = run_overload_scenario(
        n_queries=n_queries, algorithm=algorithm, seed=seed
    )
    scenarios["overload"] = overload
    comparisons = {}
    if "warm-pool" in scenarios:
        comparisons["pool_vs_fork_p50"] = round(
            scenarios["warm-fork"]["p50_ms"]
            / scenarios["warm-pool"]["p50_ms"],
            3,
        )
        comparisons["batch_vs_pool_throughput"] = round(
            scenarios["batched"]["throughput_qps"]
            / scenarios["warm-pool"]["throughput_qps"],
            3,
        )
    comparisons["overload_p99_vs_unloaded"] = round(
        overload["completed"]["p99_ms"] / overload["unloaded"]["p99_ms"],
        3,
    )
    return {
        "bench": "serving",
        "workload": {
            "n_queries": n_queries,
            "workers": workers,
            "algorithm": algorithm,
            "seed": seed,
            "n_objects": serial.n_objects,
            "n_candidates": serial.n_candidates,
            "distinct_candidates": True,
        },
        "scenarios": scenarios,
        "comparisons": comparisons,
    }


# ----------------------------------------------------------------------
# Scale ladder (BENCH_6.json)
# ----------------------------------------------------------------------

LADDER_SEED = 17
LADDER_ALGORITHM = "PIN-VO"
LADDER_TAU = 0.7

#: ``(n_objects, n_candidates, n_queries)`` per rung.  The spatial
#: extent grows with sqrt(n_objects) so object density — and with it
#: per-candidate band sizes — stays roughly constant up the ladder;
#: what changes is the sheer number of object-candidate pairs.
LADDER_RUNGS = [
    (1_000, 100, 8),
    (10_000, 100, 6),
    (100_000, 1_000, 4),
    (1_000_000, 100, 3),
]

#: CI smoke: the two cheap rungs, few queries, capped wall time.
SMOKE_RUNGS = [
    (1_000, 64, 3),
    (10_000, 64, 3),
]

LADDER_WORKERS = (2, 4)


def ladder_extent(n_objects: int) -> float:
    return 30.0 * math.sqrt(n_objects / 1_000.0)


def make_ladder_fleet(n_objects: int, seed: int) -> list[MovingObject]:
    """Deterministic synthetic fleet for one ladder rung.

    All positions are drawn in one vectorised pass (a per-object
    Python-loop draw would dominate the 10^6 rung) and wrapped into
    :class:`MovingObject` instances afterwards — 4–16 positions per
    object, clustered around a uniform anchor.
    """
    extent = ladder_extent(n_objects)
    rng = np.random.default_rng(seed)
    counts = rng.integers(4, 17, size=n_objects)
    offsets = np.zeros(n_objects + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    anchors = rng.uniform(0.0, extent, size=(n_objects, 2))
    positions = np.repeat(anchors, counts, axis=0) + rng.normal(
        0.0, 1.5, size=(int(offsets[-1]), 2)
    )
    return [
        MovingObject(i, positions[offsets[i] : offsets[i + 1]])
        for i in range(n_objects)
    ]


def make_ladder_candidates(
    rng: np.random.Generator, extent: float, m: int, n_sets: int
) -> list[list[Candidate]]:
    """``n_sets`` distinct candidate sets (so pruning caches miss)."""
    return [
        [
            Candidate(j, float(x), float(y))
            for j, (x, y) in enumerate(
                rng.uniform(0.0, extent, size=(m, 2))
            )
        ]
        for _ in range(n_sets)
    ]


def classification_microbench(
    table: ObjectTable,
    cand_xy: np.ndarray,
    reps: int = 3,
) -> dict:
    """Columnar vs legacy full-table classification, per query.

    The legacy pass is exactly what every query used to pay: rebuild
    the five MBR/radius arrays from the Python entry list, then
    broadcast.  The columnar pass reads the table-cached arrays.  Both
    are checked chunk-by-chunk for bit-identity before timing.
    """
    identical = True
    legacy_iter = classify_chunks(table.entries, cand_xy)
    for start, stop, ia, band in classify_table_chunks(table, cand_xy):
        _, legacy_ia, legacy_band = next(legacy_iter)
        if not (
            np.array_equal(ia, legacy_ia)
            and np.array_equal(band, legacy_band)
        ):
            identical = False

    def columnar_pass():
        pairs = 0
        for _, _, ia, band in classify_table_chunks(table, cand_xy):
            pairs += int(np.count_nonzero(ia)) + int(np.count_nonzero(band))
        return pairs

    def legacy_pass():
        pairs = 0
        for _, ia, band in classify_chunks(table.entries, cand_xy):
            pairs += int(np.count_nonzero(ia)) + int(np.count_nonzero(band))
        return pairs

    def best_of(fn):
        times = []
        for _ in range(reps):
            started = time.perf_counter()
            fn()
            times.append(time.perf_counter() - started)
        return min(times)

    columnar_pass()  # warm the table-cached arrays once
    columnar_s = best_of(columnar_pass)
    legacy_s = best_of(legacy_pass)
    pairs = table.live_count * cand_xy.shape[0]
    return {
        "bit_identical": identical,
        "columnar_ms_per_query": round(columnar_s * 1000.0, 3),
        "legacy_ms_per_query": round(legacy_s * 1000.0, 3),
        "speedup": round(legacy_s / columnar_s, 2) if columnar_s else None,
        "pairs_per_second_columnar": (
            round(pairs / columnar_s) if columnar_s else None
        ),
    }


def timed_query_pass(engine, cand_sets, pf, tau, algorithm) -> list[float]:
    latencies = []
    for cands in cand_sets:
        started = time.perf_counter()
        engine.query(cands, pf=pf, tau=tau, algorithm=algorithm)
        latencies.append((time.perf_counter() - started) * 1000.0)
    return latencies


def peak_rss_mb() -> float:
    """The process's lifetime peak resident set size, in MiB.

    ``ru_maxrss`` is kilobytes on Linux; the value is monotone over the
    process lifetime, so per-rung readings show which rung first pushed
    the high-water mark up.
    """
    return round(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1
    )


def run_ladder_rung(
    n_objects: int,
    n_candidates: int,
    n_queries: int,
    seed: int = LADDER_SEED,
    workers_sweep: tuple[int, ...] = LADDER_WORKERS,
    algorithm: str = LADDER_ALGORITHM,
) -> dict:
    """One rung: fleet build, kernel microbench, serial + pool sweep."""
    extent = ladder_extent(n_objects)
    pf = PowerLawPF()
    started = time.perf_counter()
    objects = make_ladder_fleet(n_objects, seed)
    fleet_s = time.perf_counter() - started

    rng = np.random.default_rng(seed + 1)
    prime_set = make_ladder_candidates(rng, extent, n_candidates, 1)[0]
    cand_sets = make_ladder_candidates(rng, extent, n_candidates, n_queries)

    started = time.perf_counter()
    table = ObjectTable(objects, pf, LADDER_TAU)
    table_build_s = time.perf_counter() - started
    cand_xy = np.array([(c.x, c.y) for c in prime_set])
    micro = classification_microbench(
        table, cand_xy, reps=3 if n_objects <= 100_000 else 2
    )

    scenarios = {}
    engine = QueryEngine(objects)
    try:
        engine.query(prime_set, pf=pf, tau=LADDER_TAU, algorithm=algorithm)
        scenarios["warm-serial"] = latency_stats(
            timed_query_pass(engine, cand_sets, pf, LADDER_TAU, algorithm)
        )
    finally:
        engine.close()

    if fork_available():
        for w in workers_sweep:
            engine = QueryEngine(objects, pool=True, workers=w)
            try:
                engine.query(
                    prime_set, pf=pf, tau=LADDER_TAU, algorithm=algorithm
                )
                scenarios[f"pool-w{w}"] = latency_stats(
                    timed_query_pass(
                        engine, cand_sets, pf, LADDER_TAU, algorithm
                    )
                )
            finally:
                engine.close()

    pool_p50s = {
        name: s["p50_ms"]
        for name, s in scenarios.items()
        if name.startswith("pool-")
    }
    comparisons = {}
    if pool_p50s:
        best_pool = min(pool_p50s, key=pool_p50s.get)
        comparisons["best_pool"] = best_pool
        comparisons["pool_vs_serial_p50"] = round(
            scenarios["warm-serial"]["p50_ms"] / pool_p50s[best_pool], 3
        )
    return {
        "n_objects": n_objects,
        "n_candidates": n_candidates,
        "n_queries": n_queries,
        "n_positions_total": int(
            sum(o.n_positions for o in objects)
        ),
        "extent_km": round(extent, 1),
        "fleet_build_s": round(fleet_s, 3),
        "table_build_s": round(table_build_s, 3),
        "peak_rss_mb": peak_rss_mb(),
        "classification": micro,
        "scenarios": scenarios,
        "comparisons": comparisons,
    }


def run_scale_ladder(
    rungs=None,
    seed: int = LADDER_SEED,
    workers_sweep: tuple[int, ...] = LADDER_WORKERS,
    algorithm: str = LADDER_ALGORITHM,
) -> dict:
    """The full ladder; returns the ``BENCH_6.json`` payload."""
    if rungs is None:
        rungs = LADDER_RUNGS
    try:
        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        cpus = os.cpu_count() or 1
    results = []
    for n_objects, n_candidates, n_queries in rungs:
        print(
            f"ladder rung: {n_objects} objects x {n_candidates} "
            f"candidates, {n_queries} queries...",
            flush=True,
        )
        results.append(
            run_ladder_rung(
                n_objects, n_candidates, n_queries,
                seed=seed, workers_sweep=workers_sweep,
                algorithm=algorithm,
            )
        )
    top = results[-1]
    identical = all(r["classification"]["bit_identical"] for r in results)
    headline = {
        "top_rung_objects": top["n_objects"],
        "columnar_vs_legacy_classification": top["classification"][
            "speedup"
        ],
        "pool_vs_serial_p50": top["comparisons"].get("pool_vs_serial_p50"),
    }
    ratio = headline["pool_vs_serial_p50"]
    return {
        "bench": "scale-ladder",
        "algorithm": algorithm,
        "tau": LADDER_TAU,
        "seed": seed,
        "cpus": cpus,
        "workers_sweep": list(workers_sweep),
        "rungs": results,
        "headline": headline,
        "targets": {
            "pool_vs_serial_p50_target": 2.0,
            "pool_vs_serial_p50_met": (
                ratio is not None and ratio >= 2.0
            ),
            "bit_identical": identical,
            "note": (
                "the >=2x pool target assumes multiple CPU cores; this "
                f"host exposes {cpus} (pool gains come from keeping the "
                "shared columnar table resident, not from parallelism, "
                "so the measured ratio is reported as-is)"
            ),
        },
    }


def render_ladder(payload: dict) -> str:
    """The ladder table archived to ``results/engine_scale_ladder.txt``."""
    table = TextTable(
        [
            "objects", "cands", "columnar ms", "legacy ms", "kernel x",
            "serial p50", "pool p50", "pool x", "peak rss MB",
        ]
    )
    for r in payload["rungs"]:
        micro = r["classification"]
        best = r["comparisons"].get("best_pool")
        pool_p50 = r["scenarios"][best]["p50_ms"] if best else None
        table.add_row(
            [
                r["n_objects"], r["n_candidates"],
                micro["columnar_ms_per_query"],
                micro["legacy_ms_per_query"],
                micro["speedup"],
                r["scenarios"]["warm-serial"]["p50_ms"],
                pool_p50,
                r["comparisons"].get("pool_vs_serial_p50"),
                r.get("peak_rss_mb"),
            ],
            float_fmt="{:.2f}",
        )
    t = payload["targets"]
    lines = [
        table.render(
            title=(
                f"scale ladder: {payload['algorithm']}, tau="
                f"{payload['tau']}, cpus={payload['cpus']}, workers swept "
                f"over {payload['workers_sweep']}"
            )
        ),
        (
            "columnar and legacy classification kernels bit-identical on "
            f"every rung: {t['bit_identical']}"
        ),
        (
            f"top-rung pool vs warm-serial p50: "
            f"{payload['headline']['pool_vs_serial_p50']}x "
            f"(target {t['pool_vs_serial_p50_target']}x, met: "
            f"{t['pool_vs_serial_p50_met']})"
        ),
        f"note: {t['note']}",
    ]
    return "\n".join(lines)


def main_ladder(args) -> int:
    """Run the scale ladder (full or CI smoke) and write artifacts."""
    if args.ladder_smoke:
        payload = run_scale_ladder(
            rungs=SMOKE_RUNGS, workers_sweep=(2,)
        )
        print(render_ladder(payload))
        if not payload["targets"]["bit_identical"]:
            print(
                "columnar/legacy kernel mismatch on the smoke rungs",
                file=sys.stderr,
            )
            return 1
        return 0
    payload = run_scale_ladder()
    text = render_ladder(payload)
    print(text)
    Path(args.out_ladder).write_text(json.dumps(payload, indent=2) + "\n")
    results_dir = ROOT / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "engine_scale_ladder.txt").write_text(text + "\n")
    print(f"\nJSON written to {args.out_ladder}")
    print(
        f"ladder table archived to "
        f"{results_dir / 'engine_scale_ladder.txt'}"
    )
    return 0 if payload["targets"]["bit_identical"] else 1


# ----------------------------------------------------------------------
# Approximate tier (BENCH_7.json)
# ----------------------------------------------------------------------

APPROX_N_OBJECTS = 100_000
APPROX_N_CANDIDATES = 1_000
APPROX_N_QUERIES = 8


def run_approx_scenario(
    n_objects: int = APPROX_N_OBJECTS,
    n_candidates: int = APPROX_N_CANDIDATES,
    n_queries: int = APPROX_N_QUERIES,
    seed: int = LADDER_SEED,
) -> dict:
    """The approximate tier under 4× admission pressure at the 10⁵ rung.

    Two passes over the same fleet and distinct candidate sets, both
    with the full-influence-table ``PIN`` algorithm (so every query
    reports per-candidate influence, giving the error check its ground
    truth for free):

    * **exact** — a plain warm engine; its per-query latency is the
      warm-serial baseline and its influence tables are the exact
      reference,
    * **approx** — an ``approx=True`` engine with ``max_inflight=1``
      and injected ``overload`` phantom load on three of every four
      queries (4× the admission budget in aggregate): the overloaded
      arrivals must be answered from the sketch instead of shed.

    Acceptance: zero sheds, every approximate answer's measured error
    within its advertised bound, and approx p50 ≥ 10× below the exact
    warm-serial p50.
    """
    algorithm = "PIN"
    tau = LADDER_TAU
    pf = PowerLawPF()
    objects = make_ladder_fleet(n_objects, seed)
    extent = ladder_extent(n_objects)
    rng = np.random.default_rng(seed + 1)
    prime_set = make_ladder_candidates(rng, extent, n_candidates, 1)[0]
    cand_sets = make_ladder_candidates(
        rng, extent, n_candidates, n_queries
    )

    exact_latencies, exact_tables = [], []
    engine = QueryEngine(objects)
    try:
        engine.query(prime_set, pf=pf, tau=tau, algorithm=algorithm)
        for cands in cand_sets:
            started = time.perf_counter()
            res = engine.query(cands, pf=pf, tau=tau, algorithm=algorithm)
            exact_latencies.append(
                (time.perf_counter() - started) * 1000.0
            )
            exact_tables.append(res.influences)
    finally:
        engine.close()

    # The priming query consumes id 0; phantom overload hits the
    # measured ids 1.. except every fourth, which runs exact.
    faults = [
        FaultSpec(kind="overload", query=1 + i, times=1)
        for i in range(n_queries)
        if i % 4 != 0
    ]
    approx_latencies, exact_tier_latencies = [], []
    errors, bounds, sketch_builds = [], [], 0
    shed = 0
    engine = QueryEngine(
        objects,
        approx=True,
        max_inflight=1,
        fault_injector=FaultInjector(faults),
    )
    try:
        engine.query(prime_set, pf=pf, tau=tau, algorithm=algorithm)
        for i, cands in enumerate(cand_sets):
            started = time.perf_counter()
            try:
                res = engine.query(
                    cands, pf=pf, tau=tau, algorithm=algorithm
                )
            except QueryShedError:
                shed += 1
                continue
            latency = (time.perf_counter() - started) * 1000.0
            record = engine.metrics_log[-1]
            if record["tier"] == "approx":
                approx_latencies.append(latency)
                err = max(
                    abs(res.influences[j] - exact_tables[i][j])
                    for j in range(n_candidates)
                )
                errors.append(int(err))
                bounds.append(float(res.error_bound))
            else:
                exact_tier_latencies.append(latency)
        shed += engine.stats.queries_shed
        sketch_builds = engine.stats.sketch_misses
        k = engine.approx_k
        delta = engine.approx_delta
    finally:
        engine.close()

    exact = latency_stats(exact_latencies)
    approx = latency_stats(approx_latencies)
    speedup = (
        round(exact["p50_ms"] / approx["p50_ms"], 1)
        if approx["p50_ms"] else None
    )
    within = [e <= b for e, b in zip(errors, bounds)]
    return {
        "bench": "approx-tier",
        "workload": {
            "n_objects": n_objects,
            "n_candidates": n_candidates,
            "n_queries": n_queries,
            "algorithm": algorithm,
            "tau": tau,
            "seed": seed,
            "sketch_k": k,
            "sketch_delta": delta,
            "pressure": "4x",
        },
        "scenarios": {
            "warm-serial-exact": exact,
            "approx": approx,
        },
        "approx": {
            "offered": n_queries,
            "answered_approx": len(approx_latencies),
            "answered_exact": len(exact_tier_latencies),
            "shed": shed,
            "sketch_builds": sketch_builds,
            "max_error": max(errors) if errors else None,
            "mean_error": (
                round(float(np.mean(errors)), 1) if errors else None
            ),
            "advertised_bound": round(max(bounds), 1) if bounds else None,
            "errors_within_bound": all(within) if within else None,
        },
        "comparisons": {
            "approx_vs_exact_p50": speedup,
        },
        "targets": {
            "zero_sheds": shed == 0,
            "errors_within_bound": bool(within) and all(within),
            "speedup_target": 10.0,
            "speedup_met": speedup is not None and speedup >= 10.0,
        },
    }


def render_approx(payload: dict) -> str:
    """The approx summary archived to ``results/engine_approx_tier.txt``."""
    s = payload["scenarios"]
    a = payload["approx"]
    w = payload["workload"]
    t = payload["targets"]
    table = TextTable(["pass", "queries", "p50 ms", "p95 ms", "mean ms"])
    for name in ("warm-serial-exact", "approx"):
        table.add_row(
            [name, s[name]["queries"], s[name]["p50_ms"],
             s[name]["p95_ms"], s[name]["mean_ms"]],
            float_fmt="{:.2f}",
        )
    return "\n".join([
        table.render(
            title=(
                f"approx tier: {w['n_objects']} objects x "
                f"{w['n_candidates']} candidates, {w['algorithm']}, "
                f"k={w['sketch_k']}, {w['pressure']} admission pressure"
            )
        ),
        (
            f"pressure: {a['offered']} offered, "
            f"{a['answered_approx']} answered approximately, "
            f"{a['answered_exact']} exactly, {a['shed']} shed "
            f"(target 0: {t['zero_sheds']})"
        ),
        (
            f"accuracy: max measured error {a['max_error']} objects "
            f"(mean {a['mean_error']}) vs advertised bound "
            f"{a['advertised_bound']} — within bound on every answer: "
            f"{t['errors_within_bound']}"
        ),
        (
            f"latency: approx p50 "
            f"{payload['comparisons']['approx_vs_exact_p50']}x below "
            f"warm-serial exact (target >= {t['speedup_target']}x, met: "
            f"{t['speedup_met']})"
        ),
    ])


def main_approx(args) -> int:
    """Run the approximate-tier scenario and write its artifacts."""
    payload = run_approx_scenario()
    text = render_approx(payload)
    print(text)
    Path(args.out_approx).write_text(json.dumps(payload, indent=2) + "\n")
    results_dir = ROOT / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "engine_approx_tier.txt").write_text(text + "\n")
    print(f"\nJSON written to {args.out_approx}")
    print(
        f"approx summary archived to "
        f"{results_dir / 'engine_approx_tier.txt'}"
    )
    t = payload["targets"]
    ok = t["zero_sheds"] and t["errors_within_bound"] and t["speedup_met"]
    if not ok:
        print("approx-tier acceptance missed", file=sys.stderr)
    return 0 if ok else 1


# ----------------------------------------------------------------------
# HTTP front end (BENCH_8.json)
# ----------------------------------------------------------------------

def run_http_scenario(
    duration: float = 6.0,
    multipliers: tuple = (1, 2, 4),
    max_inflight: int = 2,
    seed: int = 11,
    scale: float = 0.2,
    n_candidates: int = 48,
    victim_qps: float = 4.0,
    approx_k: int = 16,
) -> dict:
    """Overload curves through the HTTP front end; the BENCH_8 payload.

    Two tenants share one engine behind the front end: ``victim``
    offers a light fixed rate, ``bulk`` sweeps its offered rate across
    multiples of the *sustainable* rate.  Open-loop Poisson arrivals
    per tenant.  Run once on an exact engine (over-budget bulk
    requests are shed with 429) and once with the approximate floor
    armed (over-budget bulk requests are answered from a small
    influence sketch instead — zero sheds).

    On a single-core host the engine serializes on the GIL, so the
    sustainable rate is one query's worth of CPU per second
    (``1 / service_time``) no matter how many budget slots a tenant
    holds, and a victim sharing the core with *any* admitted bulk work
    necessarily runs slower than it does solo.  What admission control
    guarantees — and what the targets check — is that bulk's *offered*
    rate stops mattering once its budget saturates: the victim's p99
    at 4x the sustainable rate stays within 1.2x of its p99 at 1x
    (the loaded-but-not-overloaded baseline), the victim is never
    shed, and only the overloading tenant is shed (exact engine) or
    approx-answered (approx floor).  The solo-victim p99 is recorded
    alongside for reference.
    """
    from repro.engine import (
        TenantAdmission,
        TenantBudget,
        TenantLoad,
        build_serving_engine,
        run_load_sync,
    )
    from repro.engine.server import BackgroundServer

    payload = {
        "schema": 2,
        "scenario": "http-front-end",
        "duration_seconds": duration,
        "max_inflight": max_inflight,
        "scale": scale,
        "n_candidates": n_candidates,
        "approx_k": approx_k,
        "modes": {},
    }
    for mode in ("exact", "approx"):
        engine, sample_candidates = build_serving_engine(
            scale=scale,
            seed=7,
            approx=(mode == "approx"),
            approx_k=(approx_k if mode == "approx" else None),
        )
        candidates = sample_candidates(n_candidates, seed)
        coords = [[float(c.x), float(c.y)] for c in candidates]
        body = {"candidates": coords, "tau": 0.7}

        engine.query(candidates, tau=0.7)  # warm the (pf, tau) caches
        if mode == "approx":
            engine.query_approx(candidates, tau=0.7)  # warm the sketch
        started = time.perf_counter()
        reps = 5
        for _ in range(reps):
            engine.query(candidates, tau=0.7)
        service_s = (time.perf_counter() - started) / reps
        # single-core capacity: one query's worth of CPU per second
        sustainable_qps = 1.0 / service_s

        # bulk sheds the moment its slots fill; the victim rides out
        # scheduling jitter in a short queue instead of shedding
        tenants = TenantAdmission(
            default=TenantBudget(
                max_inflight=max_inflight, max_queue_depth=0
            ),
            budgets={
                "victim": TenantBudget(
                    max_inflight=max_inflight,
                    max_queue_depth=3 * max_inflight,
                )
            },
        )
        server = BackgroundServer(
            engine, tenants=tenants, engine_threads=8
        )
        try:
            base = run_load_sync(
                [TenantLoad("victim", victim_qps, body)],
                host="127.0.0.1",
                port=server.port,
                duration=duration,
                seed=seed,
            )
            solo = base.tenants["victim"].to_dict()
            rungs = []
            for mult in multipliers:
                report = run_load_sync(
                    [
                        TenantLoad("bulk", mult * sustainable_qps, body),
                        TenantLoad("victim", victim_qps, body),
                    ],
                    host="127.0.0.1",
                    port=server.port,
                    duration=duration,
                    seed=seed + mult,
                )
                rungs.append({
                    "offered_multiple": mult,
                    "bulk_offered_qps": round(mult * sustainable_qps, 2),
                    "bulk": report.tenants["bulk"].to_dict(),
                    "victim": report.tenants["victim"].to_dict(),
                })
        finally:
            drain = server.stop()
        payload["modes"][mode] = {
            "service_ms": round(service_s * 1000.0, 3),
            "sustainable_qps": round(sustainable_qps, 2),
            "victim_qps": round(victim_qps, 2),
            "solo_victim": solo,
            "rungs": rungs,
            "drain": {
                name: {
                    k: snap[k] for k in ("offered", "admitted", "shed")
                }
                for name, snap in drain["tenants"].items()
            },
        }

    exact = payload["modes"]["exact"]
    approx = payload["modes"]["approx"]
    top_exact = exact["rungs"][-1]
    top_approx = approx["rungs"][-1]
    base_p99 = exact["rungs"][0]["victim"]["p99_ms"]
    loaded_p99 = top_exact["victim"]["p99_ms"]
    solo_p99 = exact["solo_victim"]["p99_ms"]
    payload["targets"] = {
        # overload beyond the budget must not hurt the victim further:
        # p99 at 4x sustainable vs the 1x (loaded) baseline
        "victim_p99_ratio": (
            round(loaded_p99 / base_p99, 3) if base_p99 else None
        ),
        "victim_p99_bounded": bool(
            base_p99 and loaded_p99 <= 1.2 * base_p99
        ),
        # reference only: single-core GIL sharing makes some solo ->
        # loaded inflation unavoidable; not a pass/fail target
        "victim_p99_vs_solo": (
            round(loaded_p99 / solo_p99, 3) if solo_p99 else None
        ),
        # isolation: only the overloading tenant is ever shed
        "victim_never_shed": all(
            r["victim"]["shed"] == 0
            for r in exact["rungs"] + approx["rungs"]
        ),
        "bulk_shed_under_overload": top_exact["bulk"]["shed"] > 0,
        # the approx floor absorbs the same overload with zero sheds
        "approx_zero_sheds": all(
            r["bulk"]["shed"] == 0 and r["victim"]["shed"] == 0
            for r in approx["rungs"]
        ),
        "approx_absorbed": top_approx["bulk"]["approx"] > 0,
    }
    return payload


def render_http(payload: dict) -> str:
    """The front-end summary for ``results/engine_http_frontend.txt``."""
    lines = [
        "HTTP front end: per-tenant isolation under open-loop overload",
        f"(duration {payload['duration_seconds']}s per rung, per-tenant "
        f"max_inflight {payload['max_inflight']}; bulk queue depth 0, "
        "victim queue depth 6, policy reject; single-core host, so "
        "sustainable = 1/service and the 1x rung is the loaded "
        "baseline)",
        "",
    ]
    for mode, data in payload["modes"].items():
        lines.append(
            f"[{mode}] service {data['service_ms']}ms -> sustainable "
            f"{data['sustainable_qps']} qps; victim offers "
            f"{data['victim_qps']} qps (solo p99 "
            f"{data['solo_victim']['p99_ms']}ms)"
        )
        table = TextTable([
            "x-sustainable", "bulk qps", "bulk shed", "bulk approx",
            "bulk p99 ms", "victim p99 ms", "victim shed",
        ])
        for rung in data["rungs"]:
            bulk, victim = rung["bulk"], rung["victim"]
            table.add_row([
                rung["offered_multiple"],
                rung["bulk_offered_qps"],
                f"{bulk['shed']}/{bulk['sent']}",
                bulk["approx"],
                bulk["p99_ms"],
                victim["p99_ms"],
                victim["shed"],
            ])
        lines.append(table.render())
        lines.append("")
    t = payload["targets"]
    lines.append(
        f"victim p99 at 4x vs 1x sustainable: {t['victim_p99_ratio']}x "
        f"(target <= 1.2x: {'MET' if t['victim_p99_bounded'] else 'MISSED'}; "
        f"vs solo, for reference: {t['victim_p99_vs_solo']}x)"
    )
    lines.append(
        "victim never shed: "
        + ("MET" if t["victim_never_shed"] else "MISSED")
    )
    lines.append(
        "bulk shed under exact overload: "
        + ("MET" if t["bulk_shed_under_overload"] else "MISSED")
    )
    lines.append(
        "approx floor absorbs overload with zero sheds: "
        + ("MET" if t["approx_zero_sheds"] and t["approx_absorbed"]
           else "MISSED")
    )
    return "\n".join(lines)


def main_http(args) -> int:
    """Run the HTTP front-end scenario and write its artifacts."""
    payload = run_http_scenario()
    text = render_http(payload)
    print(text)
    Path(args.out_http).write_text(json.dumps(payload, indent=2) + "\n")
    results_dir = ROOT / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "engine_http_frontend.txt").write_text(text + "\n")
    print(f"\nJSON written to {args.out_http}")
    print(
        f"front-end summary archived to "
        f"{results_dir / 'engine_http_frontend.txt'}"
    )
    t = payload["targets"]
    ok = (
        t["victim_p99_bounded"]
        and t["victim_never_shed"]
        and t["bulk_shed_under_overload"]
        and t["approx_zero_sheds"]
        and t["approx_absorbed"]
    )
    if not ok:
        print("http front-end acceptance missed", file=sys.stderr)
    return 0 if ok else 1


# ----------------------------------------------------------------------
# Streaming subscriptions (BENCH_9.json)
# ----------------------------------------------------------------------

STREAMING_SEED = 23
STREAMING_TAU = 0.7
#: the standing queries are spread across a tau portfolio — one
#: maintenance group per tau, like a real mix of subscribers with
#: different confidence requirements
STREAMING_TAUS = (0.6, 0.7, 0.8, 0.9)
STREAMING_WINDOW = 8
#: per-update positional jitter of the crossing-light workload
STREAMING_JITTER = 0.04
#: per-update jitter of the crossing-heavy workload: large enough to
#: deform nearly every window past its slack, small enough that the
#: windows stay compact (teleporting objects would make every window
#: span the whole extent and measure validation cost, not crossings)
STREAMING_HEAVY_JITTER = 2.0
#: candidates per standing query
STREAMING_CANDS_PER_SUB = 4
#: positions streamed per measured phase
STREAMING_PHASE_POSITIONS = 100_000
STREAMING_BATCH = 2_000
#: subscriptions spot-checked bit-identically against a one-shot query
STREAMING_SPOT_CHECKS = 3


def build_streaming_engine(
    n_objects: int,
    n_subs: int,
    seed: int,
    pf,
    records_path=None,
    **engine_kwargs,
):
    """Seed a fleet, then register the standing queries.

    Returns ``(engine, anchors, sub_cands, extent)``.  Objects are
    seeded *before* any subscription exists — seeding is then pure
    window bookkeeping (no groups to refresh), exactly how a serving
    deployment would warm up.  Every window is seeded *full* (count
    changes alter ``minMaxRadius``, which deforms past any slack) and
    with the same jitter scale the crossing-light workload streams, so
    the reference states scored at subscribe time are representative.
    """
    from repro.engine.subscriptions import SubscriptionEngine

    extent = ladder_extent(n_objects)
    rng = np.random.default_rng(seed)
    anchors = rng.uniform(0.0, extent, size=(n_objects, 2))
    eng = SubscriptionEngine(
        window=STREAMING_WINDOW,
        default_pf=pf,
        metrics_path=records_path,
        max_records=250_000,
        **engine_kwargs,
    )
    for _ in range(STREAMING_WINDOW):
        jitter = rng.normal(0.0, STREAMING_JITTER, size=(n_objects, 2))
        seed_xy = anchors + jitter
        for lo in range(0, n_objects, 50_000):
            hi = min(lo + 50_000, n_objects)
            eng.ingest_batch(
                (oid, float(seed_xy[oid, 0]), float(seed_xy[oid, 1]))
                for oid in range(lo, hi)
            )
    subs = []
    for i in range(n_subs):
        cands = [
            (float(x), float(y))
            for x, y in rng.uniform(
                0.0, extent, size=(STREAMING_CANDS_PER_SUB, 2)
            )
        ]
        tau = STREAMING_TAUS[i % len(STREAMING_TAUS)]
        eng.subscribe(cands, tau=tau)
        subs.append((cands, tau))
    return eng, anchors, subs, extent


def run_streaming_phase(
    eng, anchors, extent, rng, positions: int, sigma: float | None
) -> dict:
    """Stream ``positions`` updates; returns the phase's measurements.

    ``sigma`` is the per-update jitter around each object's anchor —
    small keeps deformations inside the safe regions (crossing-light),
    large deforms nearly every window past its slack (crossing-heavy).
    ``None`` draws positions uniformly over the extent instead.
    """
    n_objects = anchors.shape[0]
    before = len(eng.records)
    hits = crossings = validations = applied = 0
    elapsed = 0.0
    for lo in range(0, positions, STREAMING_BATCH):
        count = min(STREAMING_BATCH, positions - lo)
        oids = rng.integers(0, n_objects, size=count)
        if sigma is None:
            xy = rng.uniform(0.0, extent, size=(count, 2))
        else:
            xy = anchors[oids] + rng.normal(0.0, sigma, size=(count, 2))
        batch = [
            (int(oids[i]), float(xy[i, 0]), float(xy[i, 1]))
            for i in range(count)
        ]
        t0 = time.perf_counter()
        report = eng.ingest_batch(batch)
        elapsed += time.perf_counter() - t0
        hits += report.safe_region_hits
        crossings += report.crossings
        validations += report.validations
        applied += report.applied
    recompute_ms = [
        r["elapsed_seconds"] * 1000.0
        for r in eng.records[before:]
        if r["kind"] == "recompute"
    ]
    refreshes = hits + crossings
    return {
        "positions": applied,
        "elapsed_s": round(elapsed, 3),
        "positions_per_sec": round(applied / elapsed, 1) if elapsed else None,
        "safe_region_hits": hits,
        "crossings": crossings,
        "validations": validations,
        "safe_region_hit_rate": (
            round(hits / refreshes, 4) if refreshes else None
        ),
        "recompute_p50_ms": (
            round(float(np.percentile(recompute_ms, 50)), 4)
            if recompute_ms else None
        ),
        "recompute_p99_ms": (
            round(float(np.percentile(recompute_ms, 99)), 4)
            if recompute_ms else None
        ),
    }


def check_streaming_identity(eng, subs, rng, checks: int) -> bool:
    """Spot-check maintained snapshots against fresh one-shot queries."""
    sub_ids = eng.subscriptions()
    picks = rng.choice(len(sub_ids), size=min(checks, len(sub_ids)),
                       replace=False)
    fleet = eng.fleet()
    oracle = QueryEngine(fleet, workers=1, default_pf=eng.default_pf)
    ok = True
    for k in picks:
        sid = sub_ids[int(k)]
        cands, tau = subs[int(k)]
        snap = eng.snapshot(sid)
        res = oracle.query(
            [Candidate(j, x, y) for j, (x, y) in enumerate(cands)],
            tau=tau,
            algorithm="PIN",
        )
        expected = tuple(res.influences[j] for j in range(len(cands)))
        if snap.influences != expected:
            ok = False
            print(
                f"bit-identity MISMATCH for subscription {sid}: "
                f"maintained {snap.influences} vs one-shot {expected}",
                file=sys.stderr,
            )
    oracle.close()
    return ok


def run_streaming_scenario(
    n_objects: int = 100_000,
    n_subs: int = 1_000,
    seed: int = STREAMING_SEED,
) -> dict:
    """Update throughput and safe-region effectiveness: BENCH_9."""
    pf = PowerLawPF()
    rng = np.random.default_rng(seed + 1)
    with tempfile.TemporaryDirectory() as tmp:
        t0 = time.perf_counter()
        eng, anchors, subs, extent = build_streaming_engine(
            n_objects, n_subs, seed, pf,
            records_path=Path(tmp) / "sub.jsonl",
        )
        setup_s = time.perf_counter() - t0
        print(
            f"seeded {n_objects} objects + {n_subs} subscriptions "
            f"in {setup_s:.1f}s"
        )
        light = run_streaming_phase(
            eng, anchors, extent, rng,
            STREAMING_PHASE_POSITIONS, sigma=STREAMING_JITTER,
        )
        print(f"crossing-light: {light['positions_per_sec']} pos/s")
        heavy = run_streaming_phase(
            eng, anchors, extent, rng,
            STREAMING_PHASE_POSITIONS, sigma=STREAMING_HEAVY_JITTER,
        )
        print(f"crossing-heavy: {heavy['positions_per_sec']} pos/s")
        identical = check_streaming_identity(
            eng, subs, rng, STREAMING_SPOT_CHECKS
        )
        stats = eng.stats()
    return {
        "bench": "subscription-streaming",
        "schema_version": 1,
        "seed": seed,
        "config": {
            "n_objects": n_objects,
            "n_subscriptions": n_subs,
            "candidates_per_subscription": STREAMING_CANDS_PER_SUB,
            "window": STREAMING_WINDOW,
            "taus": list(STREAMING_TAUS),
            "light_jitter": STREAMING_JITTER,
            "heavy_jitter": STREAMING_HEAVY_JITTER,
            "phase_positions": STREAMING_PHASE_POSITIONS,
        },
        "setup_seconds": round(setup_s, 3),
        "phases": {"crossing_light": light, "crossing_heavy": heavy},
        "bit_identity_spot_checks": {
            "checked": STREAMING_SPOT_CHECKS,
            "identical": identical,
        },
        "engine_stats": stats,
        "targets": {
            # the ISSUE's floor: >= 10^4 positions/sec at 10^5 x 10^3
            "throughput_light_ok": (
                (light["positions_per_sec"] or 0.0) >= 10_000.0
            ),
            # maintenance work must track crossings, not fleet size:
            # the light workload skips most refreshes, the heavy one
            # crosses on most
            "hit_rate_contrast_ok": (
                (light["safe_region_hit_rate"] or 0.0)
                > (heavy["safe_region_hit_rate"] or 0.0)
            ),
            "crossings_scale_ok": (
                heavy["crossings"] > light["crossings"]
            ),
            "bit_identity_ok": identical,
        },
    }


def render_streaming(payload: dict) -> str:
    """The archived results/engine_streaming.txt table."""
    cfg = payload["config"]
    table = TextTable([
        "workload", "positions", "pos/s", "hit rate", "crossings",
        "validations", "recompute p50 ms", "recompute p99 ms",
    ])
    for name, phase in payload["phases"].items():
        table.add_row([
            name.replace("_", "-"),
            phase["positions"],
            phase["positions_per_sec"],
            phase["safe_region_hit_rate"],
            phase["crossings"],
            phase["validations"],
            phase["recompute_p50_ms"],
            phase["recompute_p99_ms"],
        ])
    lines = [
        table.render(
            title=(
                f"streaming subscriptions: {cfg['n_objects']} objects x "
                f"{cfg['n_subscriptions']} standing queries "
                f"(window {cfg['window']}, taus {cfg['taus']})"
            )
        ),
        f"setup: {payload['setup_seconds']}s "
        f"(seed + initial subscription scoring)",
        f"bit-identity spot checks: "
        f"{'ok' if payload['bit_identity_spot_checks']['identical'] else 'FAILED'}",
    ]
    return "\n".join(lines)


def main_streaming(args) -> int:
    """Run the streaming scenario (full or CI smoke); write artifacts."""
    if args.streaming_smoke:
        return main_streaming_smoke(args)
    payload = run_streaming_scenario(
        n_objects=args.streaming_objects,
        n_subs=args.streaming_subs,
    )
    text = render_streaming(payload)
    print()
    print(text)
    Path(args.out_streaming).write_text(json.dumps(payload, indent=2) + "\n")
    results_dir = ROOT / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "engine_streaming.txt").write_text(text + "\n")
    print(f"\nJSON written to {args.out_streaming}")
    print(
        f"streaming summary archived to "
        f"{results_dir / 'engine_streaming.txt'}"
    )
    ok = all(payload["targets"].values())
    if not ok:
        missed = [k for k, v in payload["targets"].items() if not v]
        print(
            f"streaming acceptance missed: {', '.join(missed)}",
            file=sys.stderr,
        )
    return 0 if ok else 1


def main_streaming_smoke(args) -> int:
    """CI chaos smoke: update storm at 4x the round budget, a pool
    crash mid-stream, then bit-identity over every subscription.

    Grep-able lines (the CI step asserts on these):

    * ``streaming-smoke: sheds=N`` — the storm + overflow rounds shed,
    * ``streaming-smoke: bit-identity ok (K subscriptions)``,
    * ``streaming-smoke: shm clean`` — no pool segment survived close.
    """
    from repro.engine import pool_segments
    from repro.engine.subscriptions import SubscriptionEngine

    pf = PowerLawPF()
    n_objects, n_subs, budget = 2_000, 40, 250
    rng = np.random.default_rng(STREAMING_SEED)
    extent = ladder_extent(n_objects)
    anchors = rng.uniform(0.0, extent, size=(n_objects, 2))
    injector = FaultInjector([
        FaultSpec(kind="update-storm", times=2),
    ])
    eng = SubscriptionEngine(
        window=STREAMING_WINDOW,
        default_pf=pf,
        max_updates_per_round=budget,
        shed_policy="reject",
        fault_injector=injector,
    )
    for oid in range(n_objects):
        eng.ingest(oid, float(anchors[oid, 0]), float(anchors[oid, 1]))
    sub_cands = []
    for _ in range(n_subs):
        cands = [
            (float(x), float(y))
            for x, y in rng.uniform(
                0.0, extent, size=(STREAMING_CANDS_PER_SUB, 2)
            )
        ]
        eng.subscribe(cands, tau=STREAMING_TAU)
        sub_cands.append(cands)

    # 12 rounds at 4x the sustainable per-round budget; the first two
    # also carry the injected storm (phantom load = full capacity, so
    # the whole round sheds).
    sheds = 0
    for _ in range(12):
        oids = rng.integers(0, n_objects, size=4 * budget)
        xy = anchors[oids] + rng.normal(0.0, 0.5, size=(4 * budget, 2))
        report = eng.ingest_batch([
            (int(oids[i]), float(xy[i, 0]), float(xy[i, 1]))
            for i in range(4 * budget)
        ])
        sheds += len(report.shed)
    print(f"streaming-smoke: sheds={sheds}")

    # A pool-backed one-shot engine crashes a worker mid-stream; the
    # supervised retry answers anyway and close() must leave /dev/shm
    # clean — the streaming tier and the crash share one process.
    crashed = QueryEngine(
        eng.fleet(),
        workers=2,
        pool=fork_available(),
        default_pf=pf,
        fault_injector=FaultInjector([FaultSpec(kind="crash", times=1)]),
    )
    mid = crashed.query(
        [Candidate(j, x, y) for j, (x, y) in enumerate(sub_cands[0])],
        tau=STREAMING_TAU,
        algorithm="PIN",
    )
    crashed.close()

    # More updates after the crash, then the full bit-identity sweep.
    for _ in range(4):
        oids = rng.integers(0, n_objects, size=budget // 2)
        xy = anchors[oids] + rng.normal(0.0, 0.5, size=(budget // 2, 2))
        eng.ingest_batch([
            (int(oids[i]), float(xy[i, 0]), float(xy[i, 1]))
            for i in range(budget // 2)
        ])
    oracle = QueryEngine(eng.fleet(), workers=1, default_pf=pf)
    mismatches = 0
    for k, sid in enumerate(eng.subscriptions()):
        snap = eng.snapshot(sid)
        res = oracle.query(
            [Candidate(j, x, y) for j, (x, y) in enumerate(sub_cands[k])],
            tau=STREAMING_TAU,
            algorithm="PIN",
        )
        expected = tuple(
            res.influences[j] for j in range(len(sub_cands[k]))
        )
        if snap.influences != expected:
            mismatches += 1
            print(
                f"streaming-smoke: MISMATCH subscription {sid}: "
                f"{snap.influences} vs {expected}",
                file=sys.stderr,
            )
    oracle.close()
    segments = pool_segments()
    ok = (
        sheds > 0
        and mismatches == 0
        and not segments
        and mid.best_influence >= 0
    )
    if mismatches == 0:
        print(
            f"streaming-smoke: bit-identity ok "
            f"({n_subs} subscriptions)"
        )
    if not segments:
        print("streaming-smoke: shm clean")
    else:
        print(
            f"streaming-smoke: LEAKED segments {segments}",
            file=sys.stderr,
        )
    if not ok:
        print("streaming smoke acceptance missed", file=sys.stderr)
    return 0 if ok else 1


def render(payload: dict) -> str:
    """The human-readable scenario table archived under results/."""
    table = TextTable(
        ["scenario", "p50 ms", "p95 ms", "mean ms", "qps"]
    )
    for name, s in payload["scenarios"].items():
        if name == "overload":  # different shape: see render_overload()
            continue
        table.add_row(
            [name, s["p50_ms"], s["p95_ms"], s["mean_ms"],
             s["throughput_qps"]],
            float_fmt="{:.2f}",
        )
    w = payload["workload"]
    lines = [
        table.render(
            title=(
                f"serving scenarios: {w['algorithm']}, "
                f"{w['n_objects']} objects x {w['n_candidates']} "
                f"candidates, {w['n_queries']} queries, "
                f"workers={w['workers']}"
            )
        )
    ]
    c = payload["comparisons"]
    if c:
        lines.append(
            f"pool vs fork p50 speedup: {c['pool_vs_fork_p50']:.2f}x "
            f"(target >= 1.5x)"
        )
        lines.append(
            f"batched vs sequential-pool throughput: "
            f"{c['batch_vs_pool_throughput']:.2f}x (target > 1x)"
        )
    return "\n".join(lines)


def render_overload(payload: dict) -> str:
    """The overload summary archived to ``results/engine_overload.txt``."""
    o = payload["scenarios"]["overload"]
    ratio = payload["comparisons"]["overload_p99_vs_unloaded"]
    table = TextTable(["pass", "queries", "p50 ms", "p95 ms", "p99 ms"])
    table.add_row(
        ["unloaded", o["unloaded"]["queries"], o["unloaded"]["p50_ms"],
         o["unloaded"]["p95_ms"], o["unloaded"]["p99_ms"]],
        float_fmt="{:.2f}",
    )
    table.add_row(
        ["overloaded (completed)", o["completed"]["queries"],
         o["completed"]["p50_ms"], o["completed"]["p95_ms"],
         o["completed"]["p99_ms"]],
        float_fmt="{:.2f}",
    )
    return "\n".join([
        table.render(
            title=(
                f"overload scenario: {o['offered']} queries offered at "
                f"{o['pressure']} admission pressure"
            )
        ),
        (
            f"shed: {o['shed']} of {o['offered']} queries "
            f"(reasons: {', '.join(o['shed_reasons'])}) — every shed is "
            f"a typed QueryShed outcome with a JSONL record"
        ),
        (
            f"completed-query p99 vs unloaded p99: {ratio:.2f}x "
            f"(target <= 2x)"
        ),
    ])


def render_observability(payload: dict) -> str:
    """The tracing-overhead summary for ``results/engine_observability.txt``."""
    s = payload["scenarios"]
    ratio = payload["comparisons"]["traced_vs_untraced_p50"]
    w = payload["workload"]
    table = TextTable(["arm", "p50 ms", "p95 ms", "mean ms", "qps"])
    for name in ("untraced", "traced"):
        table.add_row(
            [name, s[name]["p50_ms"], s[name]["p95_ms"], s[name]["mean_ms"],
             s[name]["throughput_qps"]],
            float_fmt="{:.2f}",
        )
    return "\n".join([
        table.render(
            title=(
                f"observability tax: warm pool, {w['algorithm']}, "
                f"{w['n_queries']} queries, workers={w['workers']}, "
                f"best of {w['rounds']} rounds per arm"
            )
        ),
        (
            f"traced arm exports {payload['traces_exported_per_run']} span "
            f"trees per run and serves a live /metrics endpoint"
        ),
        f"traced vs untraced p50: {ratio:.2f}x (target <= 1.05x)",
    ])


def main(argv=None) -> int:
    """Run the scenarios and write both artifacts; 1 on a missed target."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--queries", type=int, default=12)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--algorithm", default="PIN-VO")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--out", default=str(ROOT / "BENCH_4.json"),
        help="where to write the serving-trajectory JSON payload",
    )
    parser.add_argument(
        "--out-observability", default=str(ROOT / "BENCH_5.json"),
        help="where to write the observability-overhead JSON payload",
    )
    parser.add_argument(
        "--ladder", action="store_true",
        help="run the object-count scale ladder instead of the serving "
        "scenarios and write BENCH_6.json",
    )
    parser.add_argument(
        "--ladder-smoke", action="store_true",
        help="CI smoke: the two small ladder rungs, asserting the "
        "columnar and legacy kernels agree bit-identically",
    )
    parser.add_argument(
        "--out-ladder", default=str(ROOT / "BENCH_6.json"),
        help="where to write the scale-ladder JSON payload",
    )
    parser.add_argument(
        "--approx", action="store_true",
        help="run the approximate-tier scenario at the 10^5-object "
        "rung instead and write BENCH_7.json",
    )
    parser.add_argument(
        "--out-approx", default=str(ROOT / "BENCH_7.json"),
        help="where to write the approximate-tier JSON payload",
    )
    parser.add_argument(
        "--http", action="store_true",
        help="run the HTTP front-end overload scenario instead and "
        "write BENCH_8.json",
    )
    parser.add_argument(
        "--out-http", default=str(ROOT / "BENCH_8.json"),
        help="where to write the HTTP front-end JSON payload",
    )
    parser.add_argument(
        "--streaming", action="store_true",
        help="run the standing-subscription streaming scenario instead "
        "and write BENCH_9.json",
    )
    parser.add_argument(
        "--streaming-smoke", action="store_true",
        help="CI chaos smoke: update storm at 4x the round budget plus "
        "a pool crash mid-stream, asserting bit-identity and clean shm",
    )
    parser.add_argument(
        "--streaming-objects", type=int, default=100_000,
        help="fleet size for the --streaming scenario",
    )
    parser.add_argument(
        "--streaming-subs", type=int, default=1_000,
        help="standing-query count for the --streaming scenario",
    )
    parser.add_argument(
        "--out-streaming", default=str(ROOT / "BENCH_9.json"),
        help="where to write the streaming-subscription JSON payload",
    )
    args = parser.parse_args(argv)

    if args.ladder or args.ladder_smoke:
        return main_ladder(args)
    if args.approx:
        return main_approx(args)
    if args.http:
        return main_http(args)
    if args.streaming or args.streaming_smoke:
        return main_streaming(args)

    payload = run_scenarios(
        n_queries=args.queries,
        workers=args.workers,
        algorithm=args.algorithm,
        seed=args.seed,
    )
    text = render(payload)
    overload_text = render_overload(payload)
    print(text)
    print()
    print(overload_text)

    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    results_dir = ROOT / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "engine_pool_vs_fork.txt").write_text(text + "\n")
    (results_dir / "engine_overload.txt").write_text(overload_text + "\n")
    print(f"\nJSON written to {args.out}")
    print(f"table archived to {results_dir / 'engine_pool_vs_fork.txt'}")
    print(
        f"overload summary archived to "
        f"{results_dir / 'engine_overload.txt'}"
    )

    obs_ok = True
    if fork_available():
        obs = run_observability_scenario(
            n_queries=args.queries,
            workers=args.workers,
            algorithm=args.algorithm,
            seed=args.seed,
        )
        obs_text = render_observability(obs)
        print()
        print(obs_text)
        Path(args.out_observability).write_text(
            json.dumps(obs, indent=2) + "\n"
        )
        (results_dir / "engine_observability.txt").write_text(
            obs_text + "\n"
        )
        print(f"\nJSON written to {args.out_observability}")
        print(
            f"observability summary archived to "
            f"{results_dir / 'engine_observability.txt'}"
        )
        obs_ok = obs["comparisons"]["traced_vs_untraced_p50"] <= 1.05
        if not obs_ok:
            print("observability overhead target missed", file=sys.stderr)

    c = payload["comparisons"]
    o = payload["scenarios"]["overload"]
    overload_ok = (
        c["overload_p99_vs_unloaded"] <= 2.0 and o["shed"] > 0
    )
    if not overload_ok:
        print("overload acceptance missed", file=sys.stderr)
    if "pool_vs_fork_p50" not in c:
        print("fork unavailable: pool scenarios skipped", file=sys.stderr)
        return 0 if overload_ok else 1
    ok = (
        c["pool_vs_fork_p50"] >= 1.5
        and c["batch_vs_pool_throughput"] > 1.0
        and overload_ok
        and obs_ok
    )
    if not ok:
        print("performance targets missed", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
