"""Dynamic-scenario extensions (§7 future work): throughput benches.

Measures the incremental index and the sliding-window index against
from-scratch recomputation — the whole point of the §7 extension is
that updates cost far less than a batch re-solve.
"""

import numpy as np
import pytest

from repro.core.incremental import IncrementalPrimeLS
from repro.core.pinocchio_vo import PinocchioVO
from repro.core.streaming import SlidingWindowPrimeLS
from repro.experiments.datasets import timing_world
from repro.prob import PowerLawPF

from conftest import run_once

PF = PowerLawPF()
TAU = 0.7


@pytest.fixture(scope="module")
def workload():
    world = timing_world("F")
    ds = world.dataset
    rng = np.random.default_rng(11)
    candidates, _ = ds.sample_candidates(200, rng)
    return ds, candidates


def test_incremental_object_churn_vs_recompute(benchmark, record, workload):
    ds, candidates = workload
    index = IncrementalPrimeLS(PF, TAU)
    for obj in ds.objects:
        index.add_object(obj)
    for cand in candidates:
        index.add_candidate(cand)
    churn = ds.objects[:20]

    def one_churn_cycle():
        for obj in churn:
            index.remove_object(obj.object_id)
        for obj in churn:
            index.add_object(obj)
        return index.optimal_location()

    __, influence = run_once(benchmark, one_churn_cycle)
    batch = PinocchioVO().select(ds.objects, candidates, PF, TAU)
    assert influence == batch.best_influence
    record(
        "dynamic_incremental",
        f"incremental churn of 20 objects maintained influence "
        f"{influence} == batch PIN-VO {batch.best_influence}",
    )


def test_sliding_window_stream_throughput(benchmark, record, workload):
    ds, candidates = workload
    sw = SlidingWindowPrimeLS(PF, TAU, window=24)
    for cand in candidates:
        sw.add_candidate(cand)
    rng = np.random.default_rng(3)
    events = [
        (int(rng.integers(0, 100)), *rng.uniform([0, 0], [39.22, 27.03]))
        for _ in range(2_000)
    ]

    def replay():
        for oid, x, y in events:
            sw.observe(oid, x, y)
        return sw.optimal_location()

    __, influence = run_once(benchmark, replay)
    assert 0 <= influence <= 100
    record(
        "dynamic_streaming",
        f"2,000 streamed positions over 100 objects; optimum reaches "
        f"{influence}/100 windowed objects",
    )
