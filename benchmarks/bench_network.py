"""Road-network PRIME-LS (related-work extension, after R-PNN [8]).

Checks the structural relationships that must hold between metrics:
network influence never exceeds Euclidean influence (shortest paths
dominate straight lines), and slower roads can only shrink influence.
"""

import numpy as np
import pytest

from repro.core.naive import NaiveAlgorithm
from repro.model import Candidate, MovingObject
from repro.network import NetworkPrimeLS, grid_road_network
from repro.prob import ExponentialPF

from conftest import run_once

PF = ExponentialPF(rho=0.9, length=2.0)
TAU = 0.55


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(21)
    network = grid_road_network(15, 15, spacing_km=1.0, rng=rng,
                                jitter_km=0.05, removal_prob=0.15)
    nodes, xy = network.coordinates_array()
    objects = []
    for oid in range(60):
        picks = rng.integers(0, len(nodes), size=10)
        objects.append(
            MovingObject(oid, xy[picks] + rng.normal(0, 0.02, (10, 2)))
        )
    cands = [
        Candidate(j, float(xy[i, 0]), float(xy[i, 1]))
        for j, i in enumerate(rng.choice(len(nodes), 40, replace=False))
    ]
    return network, objects, cands


def test_network_prime_ls(benchmark, record, workload):
    network, objects, cands = workload
    result = run_once(
        benchmark, lambda: NetworkPrimeLS(network).select(objects, cands, PF, TAU)
    )
    euclid = NaiveAlgorithm().select(objects, cands, PF, TAU)
    for j in range(len(cands)):
        assert result.influences[j] <= euclid.influences[j]
    record(
        "network_prime_ls",
        f"road-network PRIME-LS on a 15x15 grid ({network.n_edges} streets, "
        f"15% removed): best influence {result.best_influence} vs Euclidean "
        f"{euclid.best_influence}; NIB pruned "
        f"{result.instrumentation.pairs_pruned_nib} pairs",
    )
