"""Fig 16: PINOCCHIO under alternative probability functions.

The framework must handle Logsig, Convex, Concave and Linear PFs
without modification: PIN-VO stays exact (identical winner influence
to NA) and within the same runtime ballpark across functions.
"""

from repro.experiments import run_pf_variants

from conftest import run_once


def test_fig16_pf_variants(benchmark, record):
    result = run_once(benchmark, lambda: run_pf_variants("F"))
    record("fig16_pf_variants", result.render())

    assert result.names == ["Logsig", "Convex", "Concave", "Linear"]
    # Exactness under every PF — the paper's core Fig 16 claim.
    assert all(result.exact)
    # "Despite slight differences ... our model can handle different
    # PFs": no function is pathologically slower than the rest.
    fastest = min(result.vo_seconds)
    slowest = max(result.vo_seconds)
    assert slowest < fastest * 25 + 0.5
