"""Fig 11 / Table 5: effect of the number of positions n.

Paper shapes to reproduce:

* objects with more positions are influenced far more easily — the
  max-influence fraction grows monotonically across the n-groups
  (>60% for n ≥ 70 vs ~20% for n < 10 in the paper);
* the mined optimal locations barely move across groups (avg pairwise
  distance 0.22-0.27 km on multi-km candidate spacing);
* PIN-VO stays faster than NA in every group.
"""

import numpy as np

from repro.experiments import run_effect_n_groups, run_effect_n_resampled

from conftest import run_once


def test_fig11a_natural_groups(benchmark, record):
    result = run_once(benchmark, lambda: run_effect_n_groups("G"))
    record("fig11a_effect_n_groups", result.render())

    fractions = [
        influence / size if size else 0.0
        for influence, size in zip(result.max_influence, result.group_sizes)
    ]
    # Influence-fraction grows with n (compare first vs last bin).
    assert fractions[-1] > fractions[0]
    # PIN-VO touches far fewer positions than NA in every group
    # (wall-clock per group is sub-50ms here and too noisy to compare).
    for na_pos, vo_pos, size in zip(
        result.na_positions, result.vo_positions, result.group_sizes
    ):
        if size:
            assert vo_pos < na_pos


def test_fig11b_resampled_instances(record, benchmark):
    result = run_once(
        benchmark,
        lambda: run_effect_n_resampled("G", position_counts=(10, 20, 30, 40, 50)),
    )
    record("fig11b_effect_n_resampled", result.render())

    # Same objects, more positions => (weakly) more influence.
    assert result.max_influence == sorted(result.max_influence)

    # Result locations stay close across n relative to the city size
    # (the paper reports 0.27 km avg on multi-km candidate spacing;
    # our G-like world spans 800 km, so "close" scales accordingly).
    dists = result.location_distances()
    assert float(np.mean(dists)) < 80.0
