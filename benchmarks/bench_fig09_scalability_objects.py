"""Fig 9: runtime vs number of objects (Gowalla, 600 candidates).

Paper: 2k..10k objects of the full Gowalla; here 200..1000 of the
10%-scaled G-like world (same fraction of the dataset).  Shape: cost
grows with the object count, ordering NA > PIN-VO* ≳ PIN > PIN-VO.
"""

from repro.experiments import run_object_scalability

from conftest import run_once

COUNTS = (200, 400, 600, 800, 1000)


def test_fig9_object_scalability(benchmark, record):
    result = run_once(
        benchmark,
        lambda: run_object_scalability("G", object_counts=COUNTS),
    )
    record("fig09_scalability_objects", result.render())

    assert result.positions["NA"] == sorted(result.positions["NA"])
    for i in range(len(COUNTS)):
        assert result.positions["PIN"][i] < result.positions["NA"][i]
        assert result.positions["PIN-VO"][i] < result.positions["PIN"][i]
    # At the largest size the wall-clock ordering must match the paper.
    assert result.seconds["PIN-VO"][-1] < result.seconds["NA"][-1]
