"""Fig 12: effect of the probability threshold τ.

Paper shapes: maximum influence decreases monotonically in τ; PIN-VO
stays well below NA across the sweep.
"""

import pytest

from repro.experiments import run_effect_tau

from conftest import run_once

TAUS = (0.1, 0.3, 0.5, 0.7, 0.9)


@pytest.mark.parametrize("dataset", ["F", "G"])
def test_fig12_effect_tau(benchmark, record, dataset):
    result = run_once(benchmark, lambda: run_effect_tau(dataset, taus=TAUS))
    record(f"fig12_effect_tau_{dataset}", result.render())

    # Max influence is non-increasing in tau.
    for earlier, later in zip(result.max_influence, result.max_influence[1:]):
        assert later <= earlier
    # PIN-VO consistently beats NA.
    for na_s, vo_s in zip(result.na_seconds, result.vo_seconds):
        assert vo_s < na_s
