"""§4.3 Remark: the analytic pruning model versus measurement.

The paper derives ``m' = (S_N − S_I) / (δ² w h) · m`` for uniformly
distributed candidates.  With our closed-form ``S_I``/``S_N`` the
analytic surviving fraction must match a Monte-Carlo measurement.
"""

import pytest

from repro.experiments import run_pruning_model_check

from conftest import run_once


def test_remark_analytic_model_matches_measurement(benchmark, record):
    result = run_once(
        benchmark,
        lambda: run_pruning_model_check(
            taus=(0.3, 0.5, 0.7, 0.9), n_objects=150, n_candidates=3_000
        ),
    )
    record("remark_pruning_model", result.render())
    for analytic, measured in zip(result.analytic, result.measured):
        assert analytic == pytest.approx(measured, abs=0.02)
