"""Table 2: generate the F-like and G-like datasets and report stats."""

from repro.experiments import run_table2

from conftest import run_once


def test_table2_dataset_generation(benchmark, record):
    result = run_once(benchmark, run_table2)
    record("table2_datasets", result.render())
    # The scaled stand-ins must preserve Table 2's check-in shape.
    assert result.stats["F"]["min check-ins"] == 3
    assert result.stats["F"]["max check-ins"] == 661
    assert result.stats["G"]["min check-ins"] == 2
    assert result.stats["G"]["max check-ins"] == 780
