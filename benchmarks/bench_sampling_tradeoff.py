"""§6.2's sampling discussion: 24-48 positions/day suffice.

The paper argues that hourly (24) or half-hourly (48) sampling of a
periodic trajectory captures mobility well enough for PRIME-LS, while
cost grows linearly with the sample count.  With commuter trajectories
and a dense reference discretisation we check both halves: accuracy
saturates at (or before) 24 samples/day, and coarser rates are worse.
"""

from repro.experiments import run_sampling_tradeoff

from conftest import run_once


def test_sampling_tradeoff(benchmark, record):
    result = run_once(benchmark, run_sampling_tradeoff)
    record("sampling_tradeoff", result.render())

    by_rate = dict(zip(result.samples_per_day, result.top10_overlap))
    # The paper-recommended rates agree with the dense reference...
    assert by_rate[24] >= 0.9
    assert by_rate[48] >= 0.9
    # ...and severe under-sampling visibly degrades the result.
    assert by_rate[1] < by_rate[24]
    err = dict(zip(result.samples_per_day, result.location_error_km))
    assert err[24] <= err[1]
