"""Fig 13: the ⟨n, τ⟩ level curve of equal maximum influence.

Paper findings to reproduce: τ must grow with n to hold influence
constant; the tuned optima are nearly the same location; a polynomial
fit through the curve predicts held-out ⟨n, τ⟩ pairs tightly (the
paper reports <1.2% influence error; we assert the τ-prediction error).
"""

import numpy as np

from repro.experiments import run_n_tau_levelcurve

from conftest import run_once


def test_fig13_level_curve(benchmark, record):
    result = run_once(
        benchmark,
        lambda: run_n_tau_levelcurve(
            "G",
            curve_ns=(10, 20, 30, 40, 50),
            check_ns=(15, 25, 35, 45),
        ),
    )
    record("fig13_n_tau_levelcurve", result.render())

    # The level curve is monotone: more positions tolerate a stricter tau.
    assert result.taus == sorted(result.taus)

    # Influences along the curve stay close to the reference.
    ref = result.reference_influence
    for influence in result.influences:
        assert abs(influence - ref) <= max(3, 0.05 * ref)

    # Held-out tau predictions from the polynomial fit are tight
    # (mean absolute error in tau units).
    assert float(np.mean(result.fit_check_errors)) < 0.08
