"""Top-k PRIME-LS (extension): shortlist cost vs full ranking.

Not a paper figure — DESIGN.md §5 ablation territory.  Checks that the
generalised Strategy-1 bound keeps top-k much cheaper than PIN's full
influence table while returning identical top-k influence values.
"""

import numpy as np
import pytest

from repro.core.pinocchio import Pinocchio
from repro.core.topk import TopKPrimeLS
from repro.experiments.datasets import timing_world
from repro.prob import PowerLawPF

from conftest import run_once

PF = PowerLawPF()
TAU = 0.8


@pytest.fixture(scope="module")
def workload():
    world = timing_world("F")
    ds = world.dataset
    rng = np.random.default_rng(9)
    candidates, _ = ds.sample_candidates(400, rng)
    return ds, candidates


@pytest.mark.parametrize("k", [1, 5, 20])
def test_topk_extension(benchmark, record, workload, k):
    ds, candidates = workload
    solver = TopKPrimeLS(k=k)
    result = run_once(
        benchmark, lambda: solver.select(ds.objects, candidates, PF, TAU)
    )
    reference = Pinocchio().select(ds.objects, candidates, PF, TAU)
    got = [v for _, v in solver.top_k_of(result)]
    expected = [v for _, v in reference.ranking()[:k]]
    assert got == expected
    record(
        f"topk_k{k}",
        f"top-{k}: validated pairs "
        f"{result.instrumentation.pairs_validated:,} vs PIN "
        f"{reference.instrumentation.pairs_validated:,}; "
        f"candidates skipped {result.instrumentation.candidates_skipped_strategy1}",
    )
    # The shortlist solver never does more validation work than PIN.
    assert (
        result.instrumentation.pairs_validated
        <= reference.instrumentation.pairs_validated
    )
