"""Microbenchmarks of the hot kernels (not tied to a paper figure).

These are true pytest-benchmark microbenches: they time the inner
loops the algorithms are built from, so kernel regressions show up
independently of experiment-level noise.
"""

import numpy as np
import pytest

from repro.core.influence import (
    batch_log_non_influence,
    batch_validate_objects,
    influence_threshold_log,
    validate_pair,
)
from repro.core.object_table import ObjectTable
from repro.core.pruning import classify_chunk
from repro.geo.mbr import MBR
from repro.index import RTree, UniformGrid
from repro.model import MovingObject
from repro.prob import PowerLawPF


def make_objects(rng, count, extent=30.0, n_range=(1, 40), spread=4.0):
    objects = []
    for oid in range(count):
        n = int(rng.integers(n_range[0], n_range[1] + 1))
        anchor = rng.uniform(0.0, extent, size=2)
        objects.append(
            MovingObject(oid, anchor + rng.normal(0.0, spread, size=(n, 2)))
        )
    return objects


PF = PowerLawPF()
LOG_THR = influence_threshold_log(0.7)


@pytest.fixture(scope="module")
def positions():
    rng = np.random.default_rng(0)
    return rng.uniform(0, 30, size=(72, 2))  # Foursquare's average n


@pytest.fixture(scope="module")
def cand_xy():
    rng = np.random.default_rng(1)
    return rng.uniform(0, 30, size=(600, 2))


def test_kernel_validate_pair_scalar(benchmark, positions):
    benchmark(
        validate_pair, PF, positions, 15.0, 15.0, LOG_THR, kernel="scalar"
    )


def test_kernel_validate_pair_vector(benchmark, positions):
    benchmark(
        validate_pair, PF, positions, 15.0, 15.0, LOG_THR, kernel="vector"
    )


def test_kernel_batch_log_non_influence(benchmark, positions, cand_xy):
    benchmark(batch_log_non_influence, PF, positions, cand_xy)


def test_kernel_batch_validate_objects(benchmark):
    rng = np.random.default_rng(2)
    objects = [rng.uniform(0, 30, size=(40, 2)) for _ in range(128)]
    benchmark(batch_validate_objects, PF, objects, 15.0, 15.0, LOG_THR)


def test_kernel_classification_chunk(benchmark, cand_xy):
    rng = np.random.default_rng(3)
    table = ObjectTable(make_objects(rng, 256, extent=30.0), PF, 0.7)
    benchmark(classify_chunk, table.entries, cand_xy)


def test_kernel_rtree_bulk_load(benchmark, cand_xy):
    benchmark(RTree.bulk_load, cand_xy)


def test_kernel_rtree_rect_query(benchmark, cand_xy):
    tree = RTree.bulk_load(cand_xy)
    rect = MBR(5, 5, 20, 20)
    benchmark(tree.query_rect, rect)


def test_kernel_rtree_nearest(benchmark, cand_xy):
    tree = RTree.bulk_load(cand_xy)
    benchmark(tree.nearest, 15.0, 15.0)


def test_kernel_grid_rect_query(benchmark, cand_xy):
    grid = UniformGrid(cell_size=2.0)
    for i, (x, y) in enumerate(cand_xy):
        grid.insert(i, float(x), float(y))
    rect = MBR(5, 5, 20, 20)
    benchmark(grid.query_rect, rect)
