"""All exact solvers on one workload: the cross-algorithm matrix.

NA, PIN, PIN-VO, PIN-VO* (paper) plus GRID (extension) on the default
F-like workload — agreement asserted, work counters recorded.
"""

import numpy as np
import pytest

from repro import ALGORITHMS
from repro.experiments.datasets import timing_world
from repro.prob import PowerLawPF

from conftest import run_once

PF = PowerLawPF()
TAU = 0.7
EXACT = ("NA", "PIN", "PIN-VO", "PIN-VO*", "GRID")


@pytest.fixture(scope="module")
def workload():
    world = timing_world("F")
    ds = world.dataset
    rng = np.random.default_rng(13)
    candidates, _ = ds.sample_candidates(300, rng)
    reference = ALGORITHMS["NA"]().select(ds.objects, candidates, PF, TAU)
    return ds, candidates, reference


@pytest.mark.parametrize("name", EXACT)
def test_exact_solver_matrix(benchmark, record, workload, name):
    ds, candidates, reference = workload
    result = run_once(
        benchmark,
        lambda: ALGORITHMS[name]().select(ds.objects, candidates, PF, TAU),
    )
    assert result.best_influence == reference.best_influence
    inst = result.instrumentation
    record(
        f"matrix_{name.replace('*', 'star').replace('-', '_')}",
        f"{name}: best={result.best_influence} "
        f"positions={inst.positions_evaluated:,} "
        f"pruned={inst.pruned_fraction():.2f}",
    )
