"""Fig 10: pruning effect of the IA / NIB rules, varying τ.

Paper shapes to reproduce:

* roughly two thirds of candidate-object pairs are pruned on average;
* on Foursquare the influence arcs dominate; on Gowalla the
  non-influence boundary dominates;
* as τ grows, IA pruning weakens and NIB pruning strengthens.
"""

import numpy as np
import pytest

from repro.experiments import run_pruning_effect

from conftest import run_once

TAUS = (0.1, 0.3, 0.5, 0.7, 0.9)


@pytest.mark.parametrize("dataset", ["F", "G"])
def test_fig10_pruning_effect(benchmark, record, dataset):
    result = run_once(
        benchmark, lambda: run_pruning_effect(dataset, taus=TAUS)
    )
    record(f"fig10_pruning_{dataset}", result.render())

    ia = np.array(result.ia_fraction)
    nib = np.array(result.nib_fraction)
    validated = np.array(result.validated_fraction)
    np.testing.assert_allclose(ia + nib + validated, 1.0, atol=1e-9)

    # IA pruning weakens and NIB pruning strengthens as tau grows.
    assert ia[0] >= ia[-1]
    assert nib[-1] >= nib[0]

    # ~2/3 pruned on average across the sweep (allow a broad band).
    assert float(np.mean(ia + nib)) > 0.5

    if dataset == "F":
        # Dense city: the influence arcs do the heavy lifting.
        assert ia.mean() > nib.mean()
    else:
        # Wide-area data: the non-influence boundary dominates
        # at the default and stricter thresholds.
        assert nib[-2] > ia[-2]
