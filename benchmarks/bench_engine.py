"""Serving-engine benchmarks: warm-vs-cold queries and worker scaling.

Two workloads over one reused fleet Ω (the serving shape the engine
amortises):

* ``test_bench_serve_warm_vs_cold`` — the acceptance benchmark: a
  stream of repeated ``(candidates, PF, τ)`` queries answered cold
  (stateless ``select_location``, fleet materialised per query) and
  warm (primed :class:`~repro.engine.QueryEngine`).  Warm must win.
* ``test_bench_worker_scaling`` — the same stream with candidate-axis
  sharding at several worker counts, confirming the sharded path stays
  bit-identical while reporting its latency.  On single-core runners
  this measures fork overhead, not speedup; the identity check is the
  point.
* ``test_bench_fault_recovery`` — the same stream with 4 workers, once
  fault-free and once with worker 1 crashing on every query's first
  dispatch, recording the cost of supervision (detect + backoff +
  re-fork) against the no-fault path.
"""

from __future__ import annotations

import pytest

from repro.engine import (
    FaultSpec,
    SupervisorPolicy,
    fork_available,
    run_serve_bench,
)
from repro.experiments.tables import TextTable

from conftest import run_once


def test_bench_serve_warm_vs_cold(benchmark, record):
    result = run_once(
        benchmark, lambda: run_serve_bench(n_queries=9, workers=0)
    )
    record("engine_serve_warm_vs_cold", result.render())
    assert result.speedup() > 1.0, (
        f"warm engine must beat cold select_location, got "
        f"{result.speedup():.2f}x"
    )
    assert result.cache_hits > 0


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
def test_bench_worker_scaling(benchmark, record):
    def sweep():
        return [
            (workers, run_serve_bench(n_queries=6, workers=workers))
            for workers in (0, 2, 4)
        ]

    results = run_once(benchmark, sweep)
    table = TextTable(
        ["workers", "cold ms", "warm ms", "speedup", "cache hits"]
    )
    baseline = results[0][1]
    for workers, result in results:
        # Sharding must never change the answer (also asserted, with
        # full influence tables, in tests/test_engine.py).
        assert result.cache_hits == baseline.cache_hits
        assert result.cache_misses == baseline.cache_misses
        table.add_row(
            [
                workers,
                sum(result.cold_ms),
                sum(result.warm_ms),
                result.speedup(),
                result.cache_hits,
            ],
            float_fmt="{:.2f}",
        )
    record(
        "engine_worker_scaling",
        table.render(title="serve-bench worker scaling (PIN-VO)"),
    )


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
def test_bench_fault_recovery(benchmark, record):
    """Supervision overhead with 1 of 4 workers crashing per query."""
    crash = FaultSpec(kind="crash", worker=1, times=1)

    # PIN shards every query (PIN-VO's warm queries would serve the
    # sharded pruning phase from the cache and never fork), so the
    # crash fires on each measured query, not just the priming pass.
    def sweep():
        clean = run_serve_bench(n_queries=6, workers=4, algorithm="PIN")
        faulted = run_serve_bench(
            n_queries=6, workers=4, algorithm="PIN", faults=[crash]
        )
        return clean, faulted

    clean, faulted = run_once(benchmark, sweep)
    # Recovery must be invisible in the answers: the faulted run does
    # the same logical work, so its cache traffic matches exactly.
    assert faulted.cache_hits == clean.cache_hits
    assert faulted.cache_misses == clean.cache_misses
    assert faulted.worker_failures > 0
    assert faulted.retries == faulted.worker_failures
    assert faulted.degraded == 0 and faulted.deadline_exceeded == 0
    assert clean.worker_failures == 0

    clean_ms = sum(clean.warm_ms)
    faulted_ms = sum(faulted.warm_ms)
    backoff = SupervisorPolicy()
    table = TextTable(
        ["scenario", "warm ms", "failures", "retries", "overhead"]
    )
    table.add_row(["no faults", clean_ms, 0, 0, 1.0], float_fmt="{:.2f}")
    table.add_row(
        [
            "crash 1/4 workers",
            faulted_ms,
            faulted.worker_failures,
            faulted.retries,
            faulted_ms / clean_ms if clean_ms else float("inf"),
        ],
        float_fmt="{:.2f}",
    )
    record(
        "engine_fault_recovery",
        table.render(
            title=(
                "serve-bench fault recovery (PIN, 4 workers, "
                f"{backoff.backoff_seconds * 1000:.0f} ms base backoff)"
            )
        ),
    )
