"""Serving-engine benchmarks: warm-vs-cold queries and worker scaling.

Two workloads over one reused fleet Ω (the serving shape the engine
amortises):

* ``test_bench_serve_warm_vs_cold`` — the acceptance benchmark: a
  stream of repeated ``(candidates, PF, τ)`` queries answered cold
  (stateless ``select_location``, fleet materialised per query) and
  warm (primed :class:`~repro.engine.QueryEngine`).  Warm must win.
* ``test_bench_worker_scaling`` — the same stream with candidate-axis
  sharding at several worker counts, confirming the sharded path stays
  bit-identical while reporting its latency.  On single-core runners
  this measures fork overhead, not speedup; the identity check is the
  point.
"""

from __future__ import annotations

import pytest

from repro.engine import fork_available, run_serve_bench
from repro.experiments.tables import TextTable

from conftest import run_once


def test_bench_serve_warm_vs_cold(benchmark, record):
    result = run_once(
        benchmark, lambda: run_serve_bench(n_queries=9, workers=0)
    )
    record("engine_serve_warm_vs_cold", result.render())
    assert result.speedup() > 1.0, (
        f"warm engine must beat cold select_location, got "
        f"{result.speedup():.2f}x"
    )
    assert result.cache_hits > 0


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
def test_bench_worker_scaling(benchmark, record):
    def sweep():
        return [
            (workers, run_serve_bench(n_queries=6, workers=workers))
            for workers in (0, 2, 4)
        ]

    results = run_once(benchmark, sweep)
    table = TextTable(
        ["workers", "cold ms", "warm ms", "speedup", "cache hits"]
    )
    baseline = results[0][1]
    for workers, result in results:
        # Sharding must never change the answer (also asserted, with
        # full influence tables, in tests/test_engine.py).
        assert result.cache_hits == baseline.cache_hits
        assert result.cache_misses == baseline.cache_misses
        table.add_row(
            [
                workers,
                sum(result.cold_ms),
                sum(result.warm_ms),
                result.speedup(),
                result.cache_hits,
            ],
            float_fmt="{:.2f}",
        )
    record(
        "engine_worker_scaling",
        table.render(title="serve-bench worker scaling (PIN-VO)"),
    )
