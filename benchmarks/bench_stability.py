"""Location-stability extension: bootstrap + noise robustness."""

import numpy as np

from repro.experiments import run_location_stability

from conftest import run_once


def test_location_stability(benchmark, record):
    result = run_once(benchmark, run_location_stability)
    record("stability", result.render())

    # Winners of resampled populations stay within a few km of the
    # baseline in a ~40 km city (the paper's "locations barely move").
    assert float(np.mean(result.bootstrap_distances_km)) < 10.0
    # Realistic GPS noise (<= 200 m) does not move the winner at all.
    by_level = dict(zip(result.noise_levels_km, result.noise_distances_km))
    assert by_level[0.05] < 1.0
    assert by_level[0.2] < 2.0
