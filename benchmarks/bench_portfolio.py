"""Multi-location (portfolio) selection: greedy coverage quality.

Extension after Xu et al.'s group location selection: the greedy
(1−1/e) algorithm on exact PRIME-LS influence sets.  Asserts the
approximation bound against the exhaustive optimum on a small slice
and records the coverage curve on the full workload.
"""

import numpy as np

from repro.core.portfolio import exact_portfolio, greedy_portfolio
from repro.experiments.datasets import timing_world
from repro.prob import PowerLawPF

from conftest import run_once

PF = PowerLawPF()
TAU = 0.9


def test_portfolio_selection(benchmark, record):
    world = timing_world("G")
    ds = world.dataset
    rng = np.random.default_rng(17)
    candidates, _ = ds.sample_candidates(150, rng)
    objects = ds.subset_objects(400, rng)

    def sweep():
        return [
            greedy_portfolio(objects, candidates, PF, TAU, k=k)[1]
            for k in (1, 2, 4, 8)
        ]

    coverages = run_once(benchmark, sweep)
    assert coverages == sorted(coverages)  # monotone in k
    record(
        "portfolio_coverage",
        "greedy k-location coverage (of 400 objects): "
        + ", ".join(f"k={k}: {c}" for k, c in zip((1, 2, 4, 8), coverages)),
    )

    # Approximation-bound spot check against the exact optimum.
    small_objects = objects[:80]
    small_cands = candidates[:10]
    __, greedy_cov = greedy_portfolio(small_objects, small_cands, PF, TAU, k=3)
    __, exact_cov = exact_portfolio(small_objects, small_cands, PF, TAU, k=3)
    assert greedy_cov >= (1 - 1 / np.e) * exact_cov - 1e-9
