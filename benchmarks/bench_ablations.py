"""Ablations of the design choices called out in DESIGN.md §5.

* candidate classification: R-tree range queries (the paper's design)
  vs chunked broadcast scan (our NumPy default) — identical split,
  different constants;
* object-side indexing: the paper argues (§4.3) that indexing object
  MBRs cannot help because activity regions overlap heavily — measured
  here as the fraction of R-tree leaves a typical NIB query touches;
* the fail-fast rejection bound (extension) on the scalar kernel;
* PIN-VO batch size for the vectorised validation.
"""

import numpy as np
import pytest

from repro.core.naive import NaiveAlgorithm
from repro.core.pinocchio import Pinocchio
from repro.core.pinocchio_vo import PinocchioVO
from repro.experiments.datasets import timing_world
from repro.prob import PowerLawPF

from conftest import run_once

PF = PowerLawPF()
TAU = 0.7


@pytest.fixture(scope="module")
def workload():
    world = timing_world("F")
    ds = world.dataset
    rng = np.random.default_rng(5)
    candidates, _ = ds.sample_candidates(400, rng)
    return ds, candidates


def test_ablation_classification_rtree(benchmark, workload):
    ds, candidates = workload
    result = run_once(
        benchmark,
        lambda: Pinocchio(use_rtree=True).select(ds.objects, candidates, PF, TAU),
    )
    assert result.best_influence > 0


def test_ablation_classification_scan(benchmark, workload):
    ds, candidates = workload
    result = run_once(
        benchmark,
        lambda: Pinocchio(use_rtree=False).select(ds.objects, candidates, PF, TAU),
    )
    assert result.best_influence > 0


def test_ablation_rtree_and_scan_agree(benchmark, workload):
    ds, candidates = workload

    def both():
        a = Pinocchio(use_rtree=True).select(ds.objects, candidates, PF, TAU)
        b = Pinocchio(use_rtree=False).select(ds.objects, candidates, PF, TAU)
        return a, b

    a, b = run_once(benchmark, both)
    assert a.influences == b.influences


def test_ablation_object_mbr_overlap(benchmark, record, workload):
    """§4.3: object MBRs overlap so much that an object-side R-tree
    degenerates — most leaves intersect a typical query region."""
    ds, _ = workload
    mbrs = [o.mbr for o in ds.objects]
    # A typical NIB-sized query box around a random candidate.
    rng = np.random.default_rng(0)
    probe = rng.uniform([5, 5], [30, 20])
    from repro.geo.mbr import MBR

    query = MBR(probe[0] - 10, probe[1] - 10, probe[0] + 10, probe[1] + 10)
    overlapping = run_once(
        benchmark, lambda: sum(1 for m in mbrs if m.intersects(query))
    )
    fraction = overlapping / len(mbrs)
    record(
        "ablation_object_mbr_overlap",
        f"objects whose activity MBR intersects a 20x20 km probe: "
        f"{overlapping}/{len(mbrs)} ({fraction:.0%}) — grouping by object "
        "MBRs cannot prune (paper S4.3)",
    )
    assert fraction > 0.5


def test_ablation_fail_fast_scalar(benchmark, record, workload):
    ds, candidates = workload
    subset = ds.objects[:120]
    plain = PinocchioVO(kernel="scalar").select(subset, candidates, PF, TAU)
    fast = run_once(
        benchmark,
        lambda: PinocchioVO(kernel="scalar", fail_fast=True).select(
            subset, candidates, PF, TAU
        ),
    )
    assert plain.best_influence == fast.best_influence
    record(
        "ablation_fail_fast",
        "fail-fast rejection bound (scalar kernel): "
        f"positions {plain.instrumentation.positions_evaluated:,} -> "
        f"{fast.instrumentation.positions_evaluated:,} "
        f"({fast.instrumentation.fail_fast_stops} early rejections)",
    )
    assert (
        fast.instrumentation.positions_evaluated
        <= plain.instrumentation.positions_evaluated
    )


@pytest.mark.parametrize("batch", [16, 128, 1024])
def test_ablation_vo_batch_size(benchmark, workload, batch):
    ds, candidates = workload

    def run():
        algo = PinocchioVO()
        algo.BATCH_OBJECTS = batch
        return algo.select(ds.objects, candidates, PF, TAU)

    result = run_once(benchmark, run)
    reference = NaiveAlgorithm().select(ds.objects, candidates, PF, TAU)
    assert result.best_influence == reference.best_influence
