"""Fig 14: effect of the power-law exponent λ ∈ {0.75, 1.0, 1.25}.

Shape: steeper decay (larger λ) lowers cumulative probabilities and
with them the maximum influence; PIN-VO's advantage over NA persists
across the sweep.
"""

import pytest

from repro.experiments import run_effect_lambda

from conftest import run_once


@pytest.mark.parametrize("dataset", ["F", "G"])
def test_fig14_effect_lambda(benchmark, record, dataset):
    result = run_once(benchmark, lambda: run_effect_lambda(dataset))
    record(f"fig14_effect_lambda_{dataset}", result.render())

    # Max influence decreases as lambda grows.
    for earlier, later in zip(result.max_influence, result.max_influence[1:]):
        assert later <= earlier
    for na_s, vo_s in zip(result.na_seconds, result.vo_seconds):
        assert vo_s < na_s
