"""Docs health checker: links, API coverage, metric-catalog coverage.

Four checks, all cheap enough for every CI run:

1. every relative link in ``README.md`` and ``docs/**/*.md`` resolves
   to a file that exists (external ``http(s)``/``mailto`` links and
   pure ``#fragment`` anchors are skipped, fragments are stripped
   before resolving);
2. every public method and property of ``repro.engine.QueryEngine``
   is mentioned in ``docs/api.md`` — the API reference must not
   silently fall behind the engine surface;
3. every public *class* exported by ``repro.engine`` (its ``__all__``)
   is mentioned in ``docs/api.md`` — new serving-layer types must
   land in the reference with the code that adds them;
4. every ``pinls_*`` Prometheus series name that appears as a literal
   anywhere under ``src/`` is cataloged in ``docs/observability.md``
   — the metric catalog must be the complete scrape surface.

Exit status 0 when all pass, 1 with one line per problem otherwise.
Run as ``PYTHONPATH=src python tools/check_docs.py`` from the repo
root (CI's "Docs health" step).
"""

from __future__ import annotations

import inspect
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# [text](target) — target captured up to the first unescaped ")".
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# Fenced code blocks: links inside them are examples, not navigation.
_FENCE = re.compile(r"^\s*(```|~~~)")


def iter_links(path: Path):
    """Yield ``(line_number, target)`` for every markdown link in *path*."""
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            yield lineno, match.group(1)


def check_links() -> list[str]:
    """Return one problem string per broken relative link."""
    problems = []
    files = [REPO / "README.md", *sorted((REPO / "docs").rglob("*.md"))]
    for md in files:
        for lineno, target in iter_links(md):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):
                continue
            bare = target.split("#", 1)[0]
            if not bare:
                continue
            resolved = (md.parent / bare).resolve()
            if not resolved.exists():
                rel = md.relative_to(REPO)
                problems.append(f"{rel}:{lineno}: broken link -> {target}")
    return problems


def public_engine_api() -> list[str]:
    """Public method/property names on ``repro.engine.QueryEngine``."""
    sys.path.insert(0, str(REPO / "src"))
    from repro.engine import QueryEngine

    names = []
    for name, member in inspect.getmembers(QueryEngine):
        if name.startswith("_"):
            continue
        if callable(member) or isinstance(member, property):
            names.append(name)
    return sorted(names)


def check_api_coverage() -> list[str]:
    """Return one problem string per engine method missing from api.md."""
    api_md = (REPO / "docs" / "api.md").read_text()
    problems = []
    for name in public_engine_api():
        if name not in api_md:
            problems.append(
                f"docs/api.md: public QueryEngine.{name} is undocumented"
            )
    return problems


def public_engine_classes() -> list[str]:
    """Class names exported via ``repro.engine.__all__``."""
    sys.path.insert(0, str(REPO / "src"))
    import repro.engine as engine

    return sorted(
        name for name in engine.__all__
        if inspect.isclass(getattr(engine, name))
    )


def check_class_coverage() -> list[str]:
    """Return one problem string per engine class missing from api.md."""
    api_md = (REPO / "docs" / "api.md").read_text()
    problems = []
    for name in public_engine_classes():
        if name not in api_md:
            problems.append(
                f"docs/api.md: public repro.engine class {name} "
                f"is undocumented"
            )
    return problems


# A Prometheus series literal: the repo-wide pinls_ prefix followed by
# the metric name proper.  Matching quoted literals only keeps derived
# strings (f-strings building label lines, render output) out of scope.
_SERIES = re.compile(r"""["'](pinls_[a-z][a-z0-9_]*)["']""")


def source_metric_series() -> list[str]:
    """Every ``pinls_*`` series name appearing as a literal in src/."""
    names: set[str] = set()
    for py in sorted((REPO / "src").rglob("*.py")):
        for match in _SERIES.finditer(py.read_text()):
            names.add(match.group(1))
    return sorted(names)


def check_metric_catalog() -> list[str]:
    """Return one problem string per series missing from observability.md."""
    catalog = (REPO / "docs" / "observability.md").read_text()
    problems = []
    for name in source_metric_series():
        if name not in catalog:
            problems.append(
                f"docs/observability.md: series {name} is not cataloged"
            )
    return problems


def main() -> int:
    """Run all checks; print problems; return a process exit code."""
    problems = (
        check_links()
        + check_api_coverage()
        + check_class_coverage()
        + check_metric_catalog()
    )
    for problem in problems:
        print(problem)
    if problems:
        print(f"docs health: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("docs health: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
