"""Docs health checker: relative links and API-reference coverage.

Two checks, both cheap enough for every CI run:

1. every relative link in ``README.md`` and ``docs/**/*.md`` resolves
   to a file that exists (external ``http(s)``/``mailto`` links and
   pure ``#fragment`` anchors are skipped, fragments are stripped
   before resolving);
2. every public method and property of ``repro.engine.QueryEngine``
   is mentioned in ``docs/api.md`` — the API reference must not
   silently fall behind the engine surface.

Exit status 0 when both pass, 1 with one line per problem otherwise.
Run as ``PYTHONPATH=src python tools/check_docs.py`` from the repo
root (CI's "Docs health" step).
"""

from __future__ import annotations

import inspect
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# [text](target) — target captured up to the first unescaped ")".
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# Fenced code blocks: links inside them are examples, not navigation.
_FENCE = re.compile(r"^\s*(```|~~~)")


def iter_links(path: Path):
    """Yield ``(line_number, target)`` for every markdown link in *path*."""
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            yield lineno, match.group(1)


def check_links() -> list[str]:
    """Return one problem string per broken relative link."""
    problems = []
    files = [REPO / "README.md", *sorted((REPO / "docs").rglob("*.md"))]
    for md in files:
        for lineno, target in iter_links(md):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):
                continue
            bare = target.split("#", 1)[0]
            if not bare:
                continue
            resolved = (md.parent / bare).resolve()
            if not resolved.exists():
                rel = md.relative_to(REPO)
                problems.append(f"{rel}:{lineno}: broken link -> {target}")
    return problems


def public_engine_api() -> list[str]:
    """Public method/property names on ``repro.engine.QueryEngine``."""
    sys.path.insert(0, str(REPO / "src"))
    from repro.engine import QueryEngine

    names = []
    for name, member in inspect.getmembers(QueryEngine):
        if name.startswith("_"):
            continue
        if callable(member) or isinstance(member, property):
            names.append(name)
    return sorted(names)


def check_api_coverage() -> list[str]:
    """Return one problem string per engine method missing from api.md."""
    api_md = (REPO / "docs" / "api.md").read_text()
    problems = []
    for name in public_engine_api():
        if name not in api_md:
            problems.append(
                f"docs/api.md: public QueryEngine.{name} is undocumented"
            )
    return problems


def main() -> int:
    """Run both checks; print problems; return a process exit code."""
    problems = check_links() + check_api_coverage()
    for problem in problems:
        print(problem)
    if problems:
        print(f"docs health: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("docs health: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
