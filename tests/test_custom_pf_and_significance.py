"""Tests for CallablePF and the paired-bootstrap significance helper."""

import numpy as np
import pytest

from repro.core.naive import NaiveAlgorithm
from repro.core.pinocchio_vo import PinocchioVO
from repro.eval import paired_bootstrap
from repro.prob import CallablePF, PowerLawPF

from tests.helpers import make_candidates, make_objects


class TestCallablePF:
    def test_wraps_powerlaw_equivalently(self):
        reference = PowerLawPF()
        wrapped = CallablePF(lambda d: 0.9 * (1.0 + d) ** -1.0, max_dist=1e6)
        ds = np.linspace(0, 100, 50)
        np.testing.assert_allclose(wrapped(ds), reference(ds))

    def test_numeric_inverse_matches_closed_form(self):
        reference = PowerLawPF()
        wrapped = CallablePF(lambda d: 0.9 * (1.0 + d) ** -1.0, max_dist=1e6)
        for p in (0.8, 0.45, 0.1, 0.01):
            assert wrapped.inverse(p) == pytest.approx(
                reference.inverse(p), abs=1e-6
            )

    def test_scalar_output_is_float(self):
        wrapped = CallablePF(lambda d: np.exp(-d) * 0.5)
        assert isinstance(wrapped(2.0), float)

    def test_rejects_non_monotone(self):
        with pytest.raises(ValueError):
            CallablePF(lambda d: np.abs(np.sin(d)))

    def test_rejects_out_of_range_values(self):
        with pytest.raises(ValueError):
            CallablePF(lambda d: 2.0 / (1.0 + d))

    def test_inverse_beyond_support_raises(self):
        wrapped = CallablePF(lambda d: 0.9 * (1.0 + d) ** -1.0, max_dist=10.0)
        # PF(10) ≈ 0.082; asking for 0.01 needs distance 89 > max_dist.
        with pytest.raises(ValueError, match="beyond max_dist"):
            wrapped.inverse(0.01)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CallablePF(lambda d: 0.5 * np.exp(-d), max_dist=0.0)
        with pytest.raises(ValueError):
            CallablePF(lambda d: 0.5 * np.exp(-d), tolerance=0.0)

    def test_algorithms_accept_custom_pf(self, rng):
        # The whole pipeline must work on a user-defined PF: a Gaussian
        # kernel, which has no library implementation.
        pf = CallablePF(lambda d: 0.8 * np.exp(-(d**2) / 8.0), max_dist=100.0)
        objects = make_objects(rng, 10)
        candidates = make_candidates(rng, 10)
        na = NaiveAlgorithm().select(objects, candidates, pf, 0.6)
        vo = PinocchioVO().select(objects, candidates, pf, 0.6)
        assert vo.best_influence == na.best_influence


class TestPairedBootstrap:
    def test_clear_winner(self):
        a = [0.5, 0.6, 0.55, 0.62, 0.58] * 4
        b = [0.3, 0.35, 0.32, 0.31, 0.36] * 4
        result = paired_bootstrap(a, b, samples=2_000, seed=1)
        assert result.mean_difference > 0.2
        assert result.win_probability > 0.99
        assert result.significant()

    def test_no_difference(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.5, 0.05, 40)
        result = paired_bootstrap(a, a, samples=500)
        assert result.mean_difference == 0.0
        assert not result.significant()

    def test_sign_symmetry(self):
        a = [0.6, 0.7, 0.65]
        b = [0.4, 0.5, 0.45]
        ab = paired_bootstrap(a, b, samples=1_000, seed=3)
        ba = paired_bootstrap(b, a, samples=1_000, seed=3)
        assert ab.mean_difference == pytest.approx(-ba.mean_difference)
        assert ab.ci_low == pytest.approx(-ba.ci_high)

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_bootstrap([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            paired_bootstrap([], [])
        with pytest.raises(ValueError):
            paired_bootstrap([1.0], [1.0], confidence=1.0)
        with pytest.raises(ValueError):
            paired_bootstrap([1.0], [1.0], samples=0)

    def test_ci_contains_mean(self):
        rng = np.random.default_rng(5)
        a = rng.normal(0.6, 0.1, 30)
        b = rng.normal(0.5, 0.1, 30)
        result = paired_bootstrap(a, b, samples=3_000, seed=7)
        assert result.ci_low <= result.mean_difference <= result.ci_high
