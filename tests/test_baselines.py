"""Tests for the BRNN* and RANGE baselines."""

import numpy as np
import pytest

from repro.baselines import BRNNStar, RangeBaseline, range_parameter_grid
from repro.baselines.range_based import averaged_range_scores
from repro.model import Candidate, MovingObject

from tests.helpers import make_candidates, make_objects


class TestBRNNStar:
    def test_hand_instance(self, pf):
        # Object with 3 positions near c0 and 1 near c1 endorses c0.
        obj = MovingObject(
            0,
            np.array([[0.0, 0.0], [0.1, 0.0], [0.0, 0.1], [10.0, 10.0]]),
        )
        candidates = [Candidate(0, 0.0, 0.0), Candidate(1, 10.0, 10.0)]
        result = BRNNStar().select([obj], candidates, pf, 0.5)
        assert result.influences == {0: 1, 1: 0}
        assert result.best_candidate.candidate_id == 0

    def test_votes_sum_to_object_count(self, pf, rng):
        objects = make_objects(rng, 20)
        candidates = make_candidates(rng, 10)
        result = BRNNStar().select(objects, candidates, pf, 0.5)
        assert sum(result.influences.values()) == len(objects)

    def test_each_object_votes_once(self, pf, rng):
        objects = make_objects(rng, 1)
        candidates = make_candidates(rng, 15)
        result = BRNNStar().select(objects, candidates, pf, 0.5)
        assert sum(result.influences.values()) == 1

    def test_tau_and_pf_ignored(self, pf, rng):
        # BRNN* is probability-free: results identical across tau.
        objects = make_objects(rng, 10)
        candidates = make_candidates(rng, 8)
        a = BRNNStar().select(objects, candidates, pf, 0.1)
        b = BRNNStar().select(objects, candidates, pf, 0.9)
        assert a.influences == b.influences

    def test_nn_tie_breaks_to_lower_index(self, pf):
        # Position equidistant from both candidates: argmin picks index 0.
        obj = MovingObject(0, np.array([[5.0, 0.0]]))
        candidates = [Candidate(0, 0.0, 0.0), Candidate(1, 10.0, 0.0)]
        result = BRNNStar().select([obj], candidates, pf, 0.5)
        assert result.influences[0] == 1


class TestRangeBaseline:
    def test_hand_instance(self, pf):
        # 3 of 4 positions within 1 km of c0 => influenced at 50% but
        # not at 80% proportion.
        obj = MovingObject(
            0,
            np.array([[0.0, 0.0], [0.5, 0.0], [0.0, 0.5], [10.0, 10.0]]),
        )
        candidates = [Candidate(0, 0.0, 0.0)]
        fifty = RangeBaseline(proportion=0.5, range_km=1.0).select(
            [obj], candidates, pf, 0.5
        )
        eighty = RangeBaseline(proportion=0.8, range_km=1.0).select(
            [obj], candidates, pf, 0.5
        )
        assert fifty.influences[0] == 1
        assert eighty.influences[0] == 0

    def test_range_boundary_inclusive(self, pf):
        obj = MovingObject(0, np.array([[1.0, 0.0]]))
        candidates = [Candidate(0, 0.0, 0.0)]
        result = RangeBaseline(proportion=1.0, range_km=1.0).select(
            [obj], candidates, pf, 0.5
        )
        assert result.influences[0] == 1

    def test_monotone_in_range(self, pf, rng):
        objects = make_objects(rng, 15)
        candidates = make_candidates(rng, 10)
        small = RangeBaseline(0.5, 0.5).select(objects, candidates, pf, 0.5)
        large = RangeBaseline(0.5, 5.0).select(objects, candidates, pf, 0.5)
        for j in range(10):
            assert large.influences[j] >= small.influences[j]

    def test_monotone_in_proportion(self, pf, rng):
        objects = make_objects(rng, 15)
        candidates = make_candidates(rng, 10)
        lenient = RangeBaseline(0.25, 2.0).select(objects, candidates, pf, 0.5)
        strict = RangeBaseline(0.75, 2.0).select(objects, candidates, pf, 0.5)
        for j in range(10):
            assert lenient.influences[j] >= strict.influences[j]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RangeBaseline(proportion=0.0)
        with pytest.raises(ValueError):
            RangeBaseline(proportion=1.5)
        with pytest.raises(ValueError):
            RangeBaseline(range_km=0.0)


class TestRangeGrid:
    def test_nine_combinations(self):
        grid = range_parameter_grid(40.0)
        assert len(grid) == 9
        proportions = {p for p, _ in grid}
        assert proportions == {0.25, 0.50, 0.75}

    def test_base_is_5_permille(self):
        grid = range_parameter_grid(40.0)
        ranges = sorted({r for _, r in grid})
        assert ranges == [pytest.approx(0.1), pytest.approx(0.2), pytest.approx(0.4)]

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            range_parameter_grid(0.0)

    def test_averaged_scores(self, pf, rng):
        objects = make_objects(rng, 10)
        candidates = make_candidates(rng, 6)
        scores = averaged_range_scores(objects, candidates, 30.0, pf, 0.5)
        assert set(scores) == set(range(6))
        # The average of 9 integer influences is within [0, r].
        for value in scores.values():
            assert 0.0 <= value <= 10.0
