"""Exactness must be invariant to every batching/tuning knob.

Chunk sizes, batch sizes and classification chunking are performance
knobs; none of them may change any answer.  These tests sweep the knobs
over shared random instances.
"""

import numpy as np
import pytest

from repro.core.influence import (
    influence_threshold_log,
    batch_validate_objects,
    validate_pair,
)
from repro.core.naive import NaiveAlgorithm
from repro.core.pinocchio import Pinocchio
from repro.core.pinocchio_vo import PinocchioVO
from repro.core.pruning import classify_chunks
from repro.core.object_table import ObjectTable
from repro.prob import PowerLawPF

from tests.helpers import make_candidates, make_objects

PF = PowerLawPF()


@pytest.fixture(scope="module")
def instance():
    rng = np.random.default_rng(77)
    return (
        make_objects(rng, 25, extent=30.0, n_range=(1, 50)),
        make_candidates(rng, 20, extent=30.0),
    )


class TestChunkInvariance:
    @pytest.mark.parametrize("chunk", [1, 2, 7, 32, 1000])
    def test_validate_pair_chunk_size(self, instance, chunk):
        objects, candidates = instance
        log_thr = influence_threshold_log(0.65)
        for obj in objects[:10]:
            for cand in candidates[:5]:
                base = validate_pair(
                    PF, obj.positions, cand.x, cand.y, log_thr,
                    kernel="vector", chunk=32,
                )
                got = validate_pair(
                    PF, obj.positions, cand.x, cand.y, log_thr,
                    kernel="vector", chunk=chunk,
                )
                assert got == base

    @pytest.mark.parametrize("head", [1, 4, 16, 64, 10_000])
    def test_batch_validate_head_size(self, instance, head):
        objects, __ = instance
        log_thr = influence_threshold_log(0.65)
        positions = [o.positions for o in objects]
        base = batch_validate_objects(PF, positions, 15.0, 15.0, log_thr)
        got = batch_validate_objects(
            PF, positions, 15.0, 15.0, log_thr, head=head
        )
        np.testing.assert_array_equal(got, base)

    @pytest.mark.parametrize("chunk_size", [1, 3, 8, 4096])
    def test_classification_chunk_size(self, instance, chunk_size):
        objects, candidates = instance
        cand_xy = np.array([(c.x, c.y) for c in candidates])
        table = ObjectTable(objects, PF, 0.7)
        base_ia, base_band = [], []
        for __, ia, band in classify_chunks(table.entries, cand_xy):
            base_ia.append(ia)
            base_band.append(band)
        got_ia, got_band = [], []
        for __, ia, band in classify_chunks(
            table.entries, cand_xy, chunk_size=chunk_size
        ):
            got_ia.append(ia)
            got_band.append(band)
        np.testing.assert_array_equal(np.vstack(got_ia), np.vstack(base_ia))
        np.testing.assert_array_equal(np.vstack(got_band), np.vstack(base_band))

    @pytest.mark.parametrize("batch", [1, 5, 64, 100_000])
    def test_pinvo_batch_objects(self, instance, batch):
        objects, candidates = instance
        reference = NaiveAlgorithm().select(objects, candidates, PF, 0.7)
        solver = PinocchioVO()
        solver.BATCH_OBJECTS = batch
        result = solver.select(objects, candidates, PF, 0.7)
        assert result.best_influence == reference.best_influence

    @pytest.mark.parametrize("max_entries", [2, 4, 8, 32])
    def test_rtree_node_capacity(self, instance, max_entries):
        objects, candidates = instance
        reference = NaiveAlgorithm().select(objects, candidates, PF, 0.7)
        result = Pinocchio(
            use_rtree=True, rtree_max_entries=max_entries
        ).select(objects, candidates, PF, 0.7)
        assert result.influences == reference.influences
