"""Tests for repro.geo.mbr — including the minDist/maxDist bounds the
pruning rules rely on."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo import MBR, Point

coord = st.floats(-100, 100, allow_nan=False, allow_infinity=False)


def random_mbr_and_point(data):
    x1, x2 = sorted((data.draw(coord), data.draw(coord)))
    y1, y2 = sorted((data.draw(coord), data.draw(coord)))
    return MBR(x1, y1, x2, y2), data.draw(coord), data.draw(coord)


class TestConstruction:
    def test_from_points(self):
        mbr = MBR.from_points([Point(1, 5), Point(3, 2), Point(-1, 4)])
        assert mbr.as_tuple() == (-1, 2, 3, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            MBR.from_points([])

    def test_from_array(self):
        mbr = MBR.from_array(np.array([[0.0, 1.0], [2.0, -1.0]]))
        assert mbr.as_tuple() == (0.0, -1.0, 2.0, 1.0)

    def test_from_array_empty_raises(self):
        with pytest.raises(ValueError):
            MBR.from_array(np.empty((0, 2)))

    def test_from_point_degenerate(self):
        mbr = MBR.from_point(Point(2, 3))
        assert mbr.is_point()
        assert mbr.area == 0.0

    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            MBR(5, 0, 1, 2)

    def test_properties(self):
        mbr = MBR(0, 0, 4, 2)
        assert mbr.width == 4
        assert mbr.height == 2
        assert mbr.area == 8
        assert mbr.center == Point(2, 1)
        assert mbr.half_diagonal == pytest.approx(math.hypot(4, 2) / 2)

    def test_corners_order(self):
        corners = MBR(0, 0, 2, 1).corners()
        assert corners == [Point(0, 0), Point(2, 0), Point(2, 1), Point(0, 1)]


class TestPredicates:
    def test_contains_point_boundary(self):
        mbr = MBR(0, 0, 1, 1)
        assert mbr.contains_point(0, 0)
        assert mbr.contains_point(1, 1)
        assert not mbr.contains_point(1.0001, 0.5)

    def test_contains_mbr(self):
        outer = MBR(0, 0, 10, 10)
        assert outer.contains_mbr(MBR(1, 1, 9, 9))
        assert outer.contains_mbr(outer)
        assert not outer.contains_mbr(MBR(5, 5, 11, 6))

    def test_intersects(self):
        a = MBR(0, 0, 2, 2)
        assert a.intersects(MBR(1, 1, 3, 3))
        assert a.intersects(MBR(2, 2, 3, 3))  # touching counts
        assert not a.intersects(MBR(2.1, 0, 3, 1))

    def test_union(self):
        u = MBR(0, 0, 1, 1).union(MBR(2, -1, 3, 0.5))
        assert u.as_tuple() == (0, -1, 3, 1)

    def test_expanded(self):
        e = MBR(1, 1, 2, 2).expanded(0.5)
        assert e.as_tuple() == (0.5, 0.5, 2.5, 2.5)

    def test_expanded_negative_raises(self):
        with pytest.raises(ValueError):
            MBR(0, 0, 1, 1).expanded(-0.1)

    def test_enlargement(self):
        base = MBR(0, 0, 1, 1)
        assert base.enlargement(MBR(0.2, 0.2, 0.8, 0.8)) == 0.0
        assert base.enlargement(MBR(0, 0, 2, 1)) == pytest.approx(1.0)


class TestDistances:
    def test_min_dist_inside_is_zero(self):
        assert MBR(0, 0, 2, 2).min_dist(1, 1) == 0.0

    def test_min_dist_side(self):
        assert MBR(0, 0, 2, 2).min_dist(3, 1) == 1.0

    def test_min_dist_corner(self):
        assert MBR(0, 0, 2, 2).min_dist(5, 6) == pytest.approx(5.0)

    def test_max_dist_center(self):
        mbr = MBR(0, 0, 4, 2)
        assert mbr.max_dist(2, 1) == pytest.approx(mbr.half_diagonal)

    def test_max_dist_from_corner(self):
        assert MBR(0, 0, 3, 4).max_dist(0, 0) == pytest.approx(5.0)

    def test_vectorised_match_scalar(self):
        mbr = MBR(-1, -2, 3, 4)
        rng = np.random.default_rng(1)
        xy = rng.uniform(-10, 10, size=(100, 2))
        min_many = mbr.min_dist_many(xy)
        max_many = mbr.max_dist_many(xy)
        for i in range(100):
            assert min_many[i] == pytest.approx(mbr.min_dist(*xy[i]))
            assert max_many[i] == pytest.approx(mbr.max_dist(*xy[i]))

    @given(st.data())
    def test_min_dist_is_lower_bound(self, data):
        mbr, qx, qy = random_mbr_and_point(data)
        # Any point inside the MBR is at least min_dist away.
        inner = data.draw(st.floats(0, 1)), data.draw(st.floats(0, 1))
        px = mbr.min_x + inner[0] * mbr.width
        py = mbr.min_y + inner[1] * mbr.height
        d = math.hypot(px - qx, py - qy)
        assert d >= mbr.min_dist(qx, qy) - 1e-9

    @given(st.data())
    def test_max_dist_is_upper_bound(self, data):
        mbr, qx, qy = random_mbr_and_point(data)
        inner = data.draw(st.floats(0, 1)), data.draw(st.floats(0, 1))
        px = mbr.min_x + inner[0] * mbr.width
        py = mbr.min_y + inner[1] * mbr.height
        d = math.hypot(px - qx, py - qy)
        assert d <= mbr.max_dist(qx, qy) + 1e-9

    @given(st.data())
    def test_min_le_max(self, data):
        mbr, qx, qy = random_mbr_and_point(data)
        assert mbr.min_dist(qx, qy) <= mbr.max_dist(qx, qy) + 1e-12

    def test_degenerate_point_mbr_distances(self):
        mbr = MBR(2, 3, 2, 3)
        assert mbr.min_dist(2, 3) == 0.0
        assert mbr.min_dist(5, 7) == pytest.approx(5.0)
        assert mbr.max_dist(5, 7) == pytest.approx(5.0)
