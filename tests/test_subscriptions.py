"""Tests for the standing-query subscription engine.

The load-bearing property is **bit-identity**: after any interleaving
of ingests, subscribes, and unsubscribes, every subscription's
maintained snapshot equals a from-scratch one-shot
:meth:`QueryEngine.query` over the same fleet state.  The Hypothesis
property drives random interleavings against exactly that oracle; the
unit tests pin the serving behaviours around it (admission sheds,
update-storm faults, events, metrics, JSONL records).
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.faults import FaultInjector, FaultSpec
from repro.engine.session import QueryEngine
from repro.engine.subscriptions import (
    SUBSCRIPTION_ALGORITHMS,
    SubscriptionEngine,
    SubscriptionEvent,
    SubscriptionSnapshot,
    UpdateShed,
)
from repro.model import Candidate
from repro.prob import LinearPF, PowerLawPF


def oracle_influences(engine, cand_pairs, tau, pf):
    """Fresh one-shot full influence table over the engine's fleet."""
    fleet = engine.fleet()
    q = QueryEngine(fleet, workers=1, default_pf=pf)
    res = q.query(
        [Candidate(j, x, y) for j, (x, y) in enumerate(cand_pairs)],
        tau=tau,
        algorithm="PIN",
    )
    return tuple(res.influences[j] for j in range(len(cand_pairs))), res


class TestSubscribeBasics:
    def test_first_snapshot_matches_oracle(self, pf, rng):
        eng = SubscriptionEngine(window=4, default_pf=pf)
        for _ in range(120):
            eng.ingest(int(rng.integers(0, 15)), *rng.uniform(0, 25, 2))
        cands = [tuple(map(float, xy)) for xy in rng.uniform(0, 25, (6, 2))]
        sid = eng.subscribe(cands, tau=0.4)
        snap = eng.snapshot(sid)
        expected, res = oracle_influences(eng, cands, 0.4, pf)
        assert snap.influences == expected
        assert snap.best_candidate.candidate_id == res.best_candidate.candidate_id
        assert snap.best_influence == res.best_influence
        assert snap.version == 1

    def test_maintained_snapshot_matches_oracle(self, pf, rng):
        eng = SubscriptionEngine(window=3, default_pf=pf)
        cands = [tuple(map(float, xy)) for xy in rng.uniform(0, 25, (5, 2))]
        sid = eng.subscribe(cands, tau=0.4)
        for _ in range(300):
            eng.ingest(int(rng.integers(0, 12)), *rng.uniform(0, 25, 2))
        snap = eng.snapshot(sid)
        expected, res = oracle_influences(eng, cands, 0.4, pf)
        assert snap.influences == expected
        assert snap.best_candidate.candidate_id == res.best_candidate.candidate_id

    def test_tie_break_matches_one_shot(self, pf):
        # Two equally influenced candidates: the lower index wins, on
        # both the one-shot and the maintained path.
        eng = SubscriptionEngine(window=2, default_pf=pf)
        cands = [(0.0, 0.0), (0.1, 0.0)]
        sid = eng.subscribe(cands, tau=0.3)
        eng.ingest(0, 0.05, 0.0)
        snap = eng.snapshot(sid)
        expected, res = oracle_influences(eng, cands, 0.3, pf)
        assert snap.influences == expected
        assert snap.best_candidate.candidate_id == res.best_candidate.candidate_id

    def test_validation_errors(self, pf):
        eng = SubscriptionEngine(default_pf=pf)
        with pytest.raises(ValueError, match="tau"):
            eng.subscribe([(0, 0)], tau=1.5)
        with pytest.raises(ValueError, match="algorithm"):
            eng.subscribe([(0, 0)], algorithm="MAGIC")
        with pytest.raises(ValueError, match="at least one candidate"):
            eng.subscribe([])
        with pytest.raises(ValueError, match="window"):
            SubscriptionEngine(window=0, default_pf=pf)
        with pytest.raises(ValueError, match="shed policy"):
            SubscriptionEngine(default_pf=pf, max_updates_per_round=4,
                               shed_policy="nope")
        with pytest.raises(ValueError, match="default_pf"):
            SubscriptionEngine().subscribe([(0, 0)])

    def test_unknown_ids_raise(self, pf):
        eng = SubscriptionEngine(default_pf=pf)
        with pytest.raises(KeyError):
            eng.snapshot(42)
        with pytest.raises(KeyError):
            eng.unsubscribe(42)
        with pytest.raises(KeyError):
            eng.forget_object(42)

    def test_algorithms_all_accepted(self, pf):
        eng = SubscriptionEngine(default_pf=pf)
        eng.ingest(0, 1.0, 1.0)
        for alg in SUBSCRIPTION_ALGORITHMS:
            sid = eng.subscribe([(1.0, 1.0)], tau=0.3, algorithm=alg)
            assert eng.snapshot(sid).algorithm == alg

    def test_groups_shared_by_pf_and_tau(self, pf):
        eng = SubscriptionEngine(default_pf=pf)
        eng.subscribe([(0, 0)], tau=0.3)
        eng.subscribe([(1, 1)], tau=0.3)       # same (pf, tau): same group
        eng.subscribe([(2, 2)], tau=0.5)       # different tau: new group
        eng.subscribe([(3, 3)], tau=0.3, pf=LinearPF())
        assert eng.stats()["groups"] == 3
        assert eng.stats()["subscriptions"] == 4


class TestUnsubscribeAndForget:
    def test_unsubscribe_removes_and_keeps_others_exact(self, pf, rng):
        eng = SubscriptionEngine(window=3, default_pf=pf)
        cands_a = [tuple(map(float, xy)) for xy in rng.uniform(0, 20, (4, 2))]
        cands_b = [tuple(map(float, xy)) for xy in rng.uniform(0, 20, (3, 2))]
        sid_a = eng.subscribe(cands_a, tau=0.4)
        sid_b = eng.subscribe(cands_b, tau=0.4)
        for _ in range(150):
            eng.ingest(int(rng.integers(0, 10)), *rng.uniform(0, 20, 2))
        eng.unsubscribe(sid_b)
        assert eng.subscriptions() == [sid_a]
        for _ in range(150):
            eng.ingest(int(rng.integers(0, 10)), *rng.uniform(0, 20, 2))
        snap = eng.snapshot(sid_a)
        expected, _ = oracle_influences(eng, cands_a, 0.4, pf)
        assert snap.influences == expected

    def test_unsubscribing_last_sub_drops_group(self, pf):
        eng = SubscriptionEngine(default_pf=pf)
        sid = eng.subscribe([(0, 0)], tau=0.3)
        assert eng.stats()["groups"] == 1
        eng.unsubscribe(sid)
        assert eng.stats()["groups"] == 0
        assert eng.stats()["subscriptions"] == 0

    def test_forget_object_rolls_back(self, pf, rng):
        eng = SubscriptionEngine(window=4, default_pf=pf)
        cands = [tuple(map(float, xy)) for xy in rng.uniform(0, 15, (4, 2))]
        sid = eng.subscribe(cands, tau=0.4)
        for _ in range(100):
            eng.ingest(int(rng.integers(0, 8)), *rng.uniform(0, 15, 2))
        for oid in [0, 3, 5]:
            eng.forget_object(oid)
        assert eng.n_objects == 5
        snap = eng.snapshot(sid)
        expected, _ = oracle_influences(eng, cands, 0.4, pf)
        assert snap.influences == expected

    def test_slot_reuse_after_forget(self, pf, rng):
        eng = SubscriptionEngine(window=2, default_pf=pf)
        sid = eng.subscribe([(5.0, 5.0)], tau=0.3)
        for oid in range(6):
            eng.ingest(oid, *rng.uniform(0, 10, 2))
        eng.forget_object(2)
        eng.ingest(99, 5.0, 5.0)        # reuses object 2's slot
        snap = eng.snapshot(sid)
        expected, _ = oracle_influences(eng, [(5.0, 5.0)], 0.3, pf)
        assert snap.influences == expected


class TestSafeRegions:
    def test_off_boundary_update_touches_zero_candidates(self, pf):
        # The regression the safe-region index exists for: an object
        # far from every candidate absorbs repeat updates with zero
        # candidate work after the first recompute.
        eng = SubscriptionEngine(window=4, default_pf=pf)
        eng.subscribe([(0.0, 0.0)], tau=0.5)
        eng.ingest(0, 500.0, 500.0)
        r = eng.ingest(0, 500.1, 500.1)     # tiny move, far off boundary
        assert r.safe_region_hits == 1
        assert r.crossings == 0
        assert r.validations == 0

    def test_crossing_light_workload_mostly_hits(self, pf, rng):
        eng = SubscriptionEngine(window=4, default_pf=pf)
        eng.subscribe([(0.0, 0.0)], tau=0.5)
        # Objects jitter in place, far from the candidate.
        anchors = rng.uniform(200.0, 300.0, (10, 2))
        for _ in range(30):
            for oid in range(10):
                x, y = anchors[oid] + rng.normal(0, 0.01, 2)
                eng.ingest(oid, float(x), float(y))
        stats = eng.stats()
        assert stats["safe_region_hits"] > stats["crossings"]

    def test_exact_ia_boundary_never_caches(self, pf):
        # maxDist == radius is IA by Lemma 2 (inclusive), but its
        # margin is 0 — the safe region must not absorb the next
        # update on a slack-0 object.
        from repro.core.minmax_radius import MinMaxRadiusCache

        radius = MinMaxRadiusCache(pf, 0.5).radius(1)
        assert radius is not None
        eng = SubscriptionEngine(window=1, default_pf=pf)
        sid = eng.subscribe([(float(radius), 0.0)], tau=0.5)
        r1 = eng.ingest(7, 0.0, 0.0)        # point MBR exactly on boundary
        assert eng.snapshot(sid).influences == (1,)
        assert r1.crossings == 1
        r2 = eng.ingest(7, 0.0, 0.0)        # same spot: still not safe
        assert r2.safe_region_hits == 0
        assert r2.crossings == 1
        assert eng.snapshot(sid).influences == (1,)


class TestEventsAndCallbacks:
    def test_versions_and_events(self, pf):
        eng = SubscriptionEngine(window=2, default_pf=pf)
        sid = eng.subscribe([(0.0, 0.0)], tau=0.3)
        assert eng.snapshot(sid).version == 1
        eng.ingest(0, 0.0, 0.0)             # gains influence: version 2
        assert eng.snapshot(sid).version == 2
        events = eng.drain_events()
        assert [e.version for e in events] == [2]
        assert isinstance(events[0], SubscriptionEvent)
        assert events[0].best_influence == 1
        assert eng.drain_events() == []

    def test_no_event_without_change(self, pf):
        eng = SubscriptionEngine(window=4, default_pf=pf)
        sid = eng.subscribe([(0.0, 0.0)], tau=0.5)
        eng.ingest(0, 900.0, 900.0)         # far away: no influence change
        assert eng.snapshot(sid).version == 1
        assert eng.drain_events() == []

    def test_callback_receives_snapshot(self, pf):
        seen: list[SubscriptionSnapshot] = []
        eng = SubscriptionEngine(window=2, default_pf=pf)
        sid = eng.subscribe([(1.0, 1.0)], tau=0.3, callback=seen.append)
        eng.ingest(0, 1.0, 1.0)
        assert len(seen) == 1
        assert seen[0].subscription_id == sid
        assert seen[0].influences == (1,)

    def test_event_queue_bounded(self, pf):
        eng = SubscriptionEngine(window=1, default_pf=pf, max_events=3)
        eng.subscribe([(0.0, 0.0)], tau=0.3)
        for i in range(6):
            # alternate near/far so every ingest changes the result
            eng.ingest(0, 0.0 if i % 2 == 0 else 900.0, 0.0)
        assert len(eng.drain_events()) == 3
        assert eng.events_dropped == 3


class TestAdmissionAndFaults:
    def test_round_cap_sheds_excess(self, pf):
        eng = SubscriptionEngine(
            window=2, default_pf=pf,
            max_updates_per_round=2, shed_policy="reject",
        )
        sid = eng.subscribe([(0.0, 0.0)], tau=0.3)
        r = eng.ingest_batch([(i, 0.0, 0.0) for i in range(5)])
        assert r.applied == 2
        assert len(r.shed) == 3
        assert all(isinstance(s, UpdateShed) for s in r.shed)
        assert all(s.reason == "queue-full" for s in r.shed)
        # Shed updates were never applied: the fleet has 2 objects and
        # the snapshot stays bit-identical to the oracle over them.
        assert eng.n_objects == 2
        expected, _ = oracle_influences(eng, [(0.0, 0.0)], 0.3, pf)
        assert eng.snapshot(sid).influences == expected

    def test_update_storm_fault_sheds_whole_round(self, pf):
        inj = FaultInjector([FaultSpec(kind="update-storm", times=1)])
        eng = SubscriptionEngine(
            window=2, default_pf=pf,
            max_updates_per_round=8, fault_injector=inj,
        )
        r1 = eng.ingest_batch([(i, 1.0, 1.0) for i in range(4)])
        assert r1.applied == 0 and len(r1.shed) == 4
        r2 = eng.ingest_batch([(i, 1.0, 1.0) for i in range(4)])
        assert r2.applied == 4 and not r2.shed    # storm consumed

    def test_batch_coalesces_per_object(self, pf):
        eng = SubscriptionEngine(window=4, default_pf=pf)
        eng.subscribe([(0.0, 0.0)], tau=0.3)
        r = eng.ingest_batch([(0, 0.0, 0.0), (0, 0.1, 0.0), (0, 0.2, 0.0)])
        assert r.applied == 3
        # one object touched: at most one recompute for it
        assert r.crossings + r.safe_region_hits == 1


class TestObservability:
    def test_metrics_registered_and_counting(self, pf):
        eng = SubscriptionEngine(window=2, default_pf=pf)
        eng.subscribe([(0.0, 0.0)], tau=0.3)
        eng.ingest(0, 0.0, 0.0)
        reg = eng.metrics
        for name in (
            "pinls_sub_updates_total",
            "pinls_sub_safe_region_hits_total",
            "pinls_sub_crossings_total",
            "pinls_sub_validations_total",
            "pinls_sub_notifications_total",
            "pinls_sub_ingest_seconds",
            "pinls_sub_recompute_seconds",
            "pinls_sub_subscriptions",
            "pinls_sub_objects",
            "pinls_sub_groups",
            "pinls_sub_pending_events",
        ):
            assert reg.get(name) is not None, name
        page = reg.render()
        assert 'pinls_sub_updates_total{result="applied"} 1' in page
        assert "pinls_sub_objects 1" in page

    def test_jsonl_records(self, pf, tmp_path):
        path = tmp_path / "sub.jsonl"
        eng = SubscriptionEngine(window=2, default_pf=pf,
                                 metrics_path=path,
                                 max_updates_per_round=1)
        eng.subscribe([(0.0, 0.0)], tau=0.3)
        eng.ingest_batch([(0, 0.0, 0.0), (1, 5.0, 5.0)])
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        kinds = {l["kind"] for l in lines}
        assert "ingest" in kinds
        assert "recompute" in kinds
        assert "ingest-shed" in kinds
        assert all(l["schema"] == 1 for l in lines)

    def test_trace_spans(self, pf, tmp_path):
        from repro.engine.trace import Tracer

        tracer = Tracer(enabled=True)
        eng = SubscriptionEngine(window=2, default_pf=pf, tracer=tracer)
        eng.subscribe([(0.0, 0.0)], tau=0.3)
        eng.ingest(0, 0.0, 0.0)
        assert tracer.exported == 1
        tree = tracer.traces[0]
        assert tree["name"] == "ingest"
        child_names = [c["name"] for c in tree.get("children", ())]
        assert "recompute" in child_names


# ----------------------------------------------------------------------
# The bit-identity property
# ----------------------------------------------------------------------
coord = st.integers(min_value=0, max_value=12).map(float)
op = st.one_of(
    st.tuples(st.just("ingest"),
              st.integers(min_value=0, max_value=5), coord, coord),
    st.tuples(st.just("subscribe"),
              st.lists(st.tuples(coord, coord), min_size=1, max_size=3),
              st.sampled_from([0.3, 0.6])),
    st.tuples(st.just("unsubscribe")),
    st.tuples(st.just("forget"), st.integers(min_value=0, max_value=5)),
)


class TestBitIdentityProperty:
    @settings(max_examples=40, deadline=None)
    @given(ops=st.lists(op, min_size=1, max_size=25))
    def test_snapshots_match_fresh_one_shot(self, ops):
        pf = PowerLawPF(rho=0.9, lam=1.0)
        eng = SubscriptionEngine(window=3, default_pf=pf)
        live: dict[int, tuple[list, float]] = {}
        for entry in ops:
            if entry[0] == "ingest":
                _, oid, x, y = entry
                eng.ingest(oid, x, y)
            elif entry[0] == "subscribe":
                _, cands, tau = entry
                sid = eng.subscribe(cands, tau=tau)
                live[sid] = (cands, tau)
            elif entry[0] == "unsubscribe" and live:
                sid = next(iter(live))
                eng.unsubscribe(sid)
                del live[sid]
            elif entry[0] == "forget" and eng.n_objects:
                oid = sorted(eng._windows)[0]
                eng.forget_object(oid)
        for sid, (cands, tau) in live.items():
            snap = eng.snapshot(sid)
            if eng.n_objects == 0:
                # the one-shot engine refuses an empty fleet; influence
                # over nothing is zero everywhere
                assert snap.influences == (0,) * len(cands)
                continue
            expected, res = oracle_influences(eng, cands, tau, pf)
            assert snap.influences == expected
            assert snap.best_candidate.candidate_id == \
                res.best_candidate.candidate_id
            assert snap.best_influence == res.best_influence
