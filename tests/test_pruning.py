"""Tests for candidate classification (IA / band / NIB split)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.object_table import ObjectTable
from repro.core.pruning import (
    classify_candidates,
    classify_chunk,
    classify_chunks,
    classify_span,
    classify_table_chunks,
)
from repro.index import RTree
from repro.model import MovingObject
from repro.prob import PowerLawPF

from tests.helpers import make_candidates, make_objects


def brute_split(entry, cand_xy):
    """The three-way split computed straight from the definitions."""
    certain, maybe, pruned = [], [], []
    for j, (x, y) in enumerate(cand_xy):
        if entry.mbr.max_dist(x, y) <= entry.radius:
            certain.append(j)
        elif entry.mbr.min_dist(x, y) > entry.radius:
            pruned.append(j)
        else:
            maybe.append(j)
    return certain, maybe, pruned


@pytest.fixture()
def table_and_candidates(pf, rng):
    objects = make_objects(rng, 15, extent=50.0, n_range=(1, 30))
    candidates = make_candidates(rng, 80, extent=50.0)
    cand_xy = np.array([(c.x, c.y) for c in candidates])
    table = ObjectTable(objects, pf, 0.7)
    return table, cand_xy


class TestClassifyCandidates:
    def test_matches_brute_force_with_rtree(self, table_and_candidates):
        table, cand_xy = table_and_candidates
        rtree = RTree.bulk_load(cand_xy)
        for entry in table:
            outcome = classify_candidates(entry, cand_xy, rtree)
            certain, maybe, pruned = brute_split(entry, cand_xy)
            assert sorted(outcome.certain.tolist()) == certain
            assert sorted(outcome.maybe.tolist()) == maybe
            assert outcome.pruned_nib == len(pruned)

    def test_matches_brute_force_without_rtree(self, table_and_candidates):
        table, cand_xy = table_and_candidates
        for entry in table:
            outcome = classify_candidates(entry, cand_xy, None)
            certain, maybe, pruned = brute_split(entry, cand_xy)
            assert sorted(outcome.certain.tolist()) == certain
            assert sorted(outcome.maybe.tolist()) == maybe
            assert outcome.pruned_nib == len(pruned)

    def test_partition_is_complete(self, table_and_candidates):
        table, cand_xy = table_and_candidates
        m = cand_xy.shape[0]
        rtree = RTree.bulk_load(cand_xy)
        for entry in table:
            outcome = classify_candidates(entry, cand_xy, rtree)
            assert (
                outcome.certain.size + outcome.maybe.size + outcome.pruned_nib == m
            )
            overlap = set(outcome.certain.tolist()) & set(outcome.maybe.tolist())
            assert not overlap


class TestClassifyChunk:
    def test_matches_per_object_classification(self, table_and_candidates):
        table, cand_xy = table_and_candidates
        ia, band = classify_chunk(table.entries, cand_xy)
        for i, entry in enumerate(table.entries):
            certain, maybe, _ = brute_split(entry, cand_xy)
            assert sorted(np.nonzero(ia[i])[0].tolist()) == certain
            assert sorted(np.nonzero(band[i])[0].tolist()) == maybe

    def test_ia_and_band_disjoint(self, table_and_candidates):
        table, cand_xy = table_and_candidates
        ia, band = classify_chunk(table.entries, cand_xy)
        assert not np.any(ia & band)

    def test_chunks_cover_all_entries(self, table_and_candidates):
        table, cand_xy = table_and_candidates
        seen = 0
        for chunk, ia, band in classify_chunks(table.entries, cand_xy, chunk_size=4):
            assert ia.shape == (len(chunk), cand_xy.shape[0])
            assert band.shape == ia.shape
            seen += len(chunk)
        assert seen == len(table.entries)

    def test_chunking_invariant_to_chunk_size(self, table_and_candidates):
        table, cand_xy = table_and_candidates
        full_ia, full_band = classify_chunk(table.entries, cand_xy)
        rows_ia, rows_band = [], []
        for chunk, ia, band in classify_chunks(table.entries, cand_xy, chunk_size=3):
            rows_ia.append(ia)
            rows_band.append(band)
        np.testing.assert_array_equal(np.vstack(rows_ia), full_ia)
        np.testing.assert_array_equal(np.vstack(rows_band), full_band)


class TestChunkSizeValidation:
    """Regression: bad chunk sizes must fail loudly, not yield nothing.

    ``range(0, n, -k)`` is empty, so a negative ``chunk_size`` used to
    silently produce zero chunks — an all-zero influence table — and
    ``chunk_size=0`` raised a bare ``ValueError`` from ``range``.
    """

    @pytest.mark.parametrize("bad", [0, -1, -1024])
    def test_classify_chunks_rejects_bad_chunk_size(
        self, table_and_candidates, bad
    ):
        table, cand_xy = table_and_candidates
        with pytest.raises(ValueError, match="chunk_size must be >= 1"):
            classify_chunks(table.entries, cand_xy, chunk_size=bad)

    @pytest.mark.parametrize("bad", [0, -1, -1024])
    def test_classify_table_chunks_rejects_bad_chunk_size(
        self, table_and_candidates, bad
    ):
        table, cand_xy = table_and_candidates
        with pytest.raises(ValueError, match="chunk_size must be >= 1"):
            classify_table_chunks(table, cand_xy, chunk_size=bad)

    def test_rejects_eagerly_without_iteration(self, table_and_candidates):
        # The error must fire at the call site even if the caller never
        # consumes the generator.
        table, cand_xy = table_and_candidates
        with pytest.raises(ValueError):
            classify_chunks(table.entries, cand_xy, chunk_size=-4)
        with pytest.raises(ValueError):
            classify_table_chunks(table, cand_xy, chunk_size=-4)


def stacked_table_chunks(table, cand_xy, chunk_size):
    """Full (ia, band) matrices from the columnar chunk iterator."""
    rows_ia, rows_band = [], []
    covered = 0
    for start, stop, ia, band in classify_table_chunks(
        table, cand_xy, chunk_size=chunk_size
    ):
        assert start == covered
        covered = stop
        rows_ia.append(ia)
        rows_band.append(band)
    assert covered == table.live_count
    m = cand_xy.shape[0]
    if not rows_ia:
        return np.zeros((0, m), dtype=bool), np.zeros((0, m), dtype=bool)
    return np.vstack(rows_ia), np.vstack(rows_band)


class TestColumnarIdentity:
    """The columnar kernels split exactly like every legacy path."""

    def test_classify_span_matches_classify_chunk(
        self, table_and_candidates
    ):
        table, cand_xy = table_and_candidates
        legacy_ia, legacy_band = classify_chunk(table.entries, cand_xy)
        mbrs, radii = table.mbr_radius_arrays()
        ia, band = classify_span(mbrs, radii, cand_xy)
        np.testing.assert_array_equal(ia, legacy_ia)
        np.testing.assert_array_equal(band, legacy_band)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n_objects=st.integers(0, 30),
        m=st.integers(1, 40),
        tau=st.sampled_from([0.5, 0.7, 0.9]),
        chunk_size=st.integers(1, 33),
    )
    def test_property_columnar_matches_rtree_and_legacy(
        self, seed, n_objects, m, tau, chunk_size
    ):
        # Random fleets with every other object degenerate (a single
        # position, so a zero-area MBR), including the empty fleet.
        rng = np.random.default_rng(seed)
        objects = make_objects(rng, n_objects, n_range=(1, 12))
        objects = [
            MovingObject(obj.object_id, obj.positions[:1])
            if i % 2 == 0
            else obj
            for i, obj in enumerate(objects)
        ]
        candidates = make_candidates(rng, m)
        cand_xy = np.array([(c.x, c.y) for c in candidates])
        pf = PowerLawPF(rho=0.9, lam=1.0)
        table = ObjectTable(objects, pf, tau)

        ia, band = stacked_table_chunks(table, cand_xy, chunk_size)
        assert not np.any(ia & band)

        # Legacy chunked-scan path on the same entries.
        legacy_ia, legacy_band = classify_chunk(table.entries, cand_xy)
        if table.live_count == 0:
            legacy_ia = legacy_ia.reshape(0, m)
            legacy_band = legacy_band.reshape(0, m)
        np.testing.assert_array_equal(ia, legacy_ia.astype(bool))
        np.testing.assert_array_equal(band, legacy_band.astype(bool))

        # Per-object R-tree path.
        rtree = RTree.bulk_load(cand_xy)
        for i, entry in enumerate(table.entries):
            outcome = classify_candidates(entry, cand_xy, rtree)
            assert sorted(np.nonzero(ia[i])[0].tolist()) == sorted(
                outcome.certain.tolist()
            )
            assert sorted(np.nonzero(band[i])[0].tolist()) == sorted(
                outcome.maybe.tolist()
            )


class TestEdgeCases:
    def test_all_candidates_far_away(self, pf, rng):
        objects = make_objects(rng, 3, extent=5.0, n_range=(2, 4))
        table = ObjectTable(objects, pf, 0.9)
        cand_xy = np.array([[1e5, 1e5], [-1e5, -1e5]])
        for entry in table:
            outcome = classify_candidates(entry, cand_xy, None)
            assert outcome.certain.size == 0
            assert outcome.maybe.size == 0
            assert outcome.pruned_nib == 2

    def test_candidate_in_mbr_is_never_nib_pruned(self, pf, rng):
        # minDist is zero inside the MBR, so the NIB rule can't fire.
        objects = make_objects(rng, 5, extent=20.0, n_range=(5, 30))
        table = ObjectTable(objects, pf, 0.9)
        for entry in table:
            center = entry.mbr.center
            cand_xy = np.array([[center.x, center.y]])
            outcome = classify_candidates(entry, cand_xy, None)
            assert outcome.pruned_nib == 0

    def test_empty_rtree_query_result(self, pf, rng):
        objects = make_objects(rng, 2, extent=5.0)
        table = ObjectTable(objects, pf, 0.9)
        cand_xy = np.array([[1e4, 1e4]])
        rtree = RTree.bulk_load(cand_xy)
        outcome = classify_candidates(table.entries[0], cand_xy, rtree)
        assert outcome.pruned_nib == 1
