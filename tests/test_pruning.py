"""Tests for candidate classification (IA / band / NIB split)."""

import numpy as np
import pytest

from repro.core.object_table import ObjectTable
from repro.core.pruning import (
    classify_candidates,
    classify_chunk,
    classify_chunks,
)
from repro.index import RTree
from repro.prob import PowerLawPF

from tests.helpers import make_candidates, make_objects


def brute_split(entry, cand_xy):
    """The three-way split computed straight from the definitions."""
    certain, maybe, pruned = [], [], []
    for j, (x, y) in enumerate(cand_xy):
        if entry.mbr.max_dist(x, y) <= entry.radius:
            certain.append(j)
        elif entry.mbr.min_dist(x, y) > entry.radius:
            pruned.append(j)
        else:
            maybe.append(j)
    return certain, maybe, pruned


@pytest.fixture()
def table_and_candidates(pf, rng):
    objects = make_objects(rng, 15, extent=50.0, n_range=(1, 30))
    candidates = make_candidates(rng, 80, extent=50.0)
    cand_xy = np.array([(c.x, c.y) for c in candidates])
    table = ObjectTable(objects, pf, 0.7)
    return table, cand_xy


class TestClassifyCandidates:
    def test_matches_brute_force_with_rtree(self, table_and_candidates):
        table, cand_xy = table_and_candidates
        rtree = RTree.bulk_load(cand_xy)
        for entry in table:
            outcome = classify_candidates(entry, cand_xy, rtree)
            certain, maybe, pruned = brute_split(entry, cand_xy)
            assert sorted(outcome.certain.tolist()) == certain
            assert sorted(outcome.maybe.tolist()) == maybe
            assert outcome.pruned_nib == len(pruned)

    def test_matches_brute_force_without_rtree(self, table_and_candidates):
        table, cand_xy = table_and_candidates
        for entry in table:
            outcome = classify_candidates(entry, cand_xy, None)
            certain, maybe, pruned = brute_split(entry, cand_xy)
            assert sorted(outcome.certain.tolist()) == certain
            assert sorted(outcome.maybe.tolist()) == maybe
            assert outcome.pruned_nib == len(pruned)

    def test_partition_is_complete(self, table_and_candidates):
        table, cand_xy = table_and_candidates
        m = cand_xy.shape[0]
        rtree = RTree.bulk_load(cand_xy)
        for entry in table:
            outcome = classify_candidates(entry, cand_xy, rtree)
            assert (
                outcome.certain.size + outcome.maybe.size + outcome.pruned_nib == m
            )
            overlap = set(outcome.certain.tolist()) & set(outcome.maybe.tolist())
            assert not overlap


class TestClassifyChunk:
    def test_matches_per_object_classification(self, table_and_candidates):
        table, cand_xy = table_and_candidates
        ia, band = classify_chunk(table.entries, cand_xy)
        for i, entry in enumerate(table.entries):
            certain, maybe, _ = brute_split(entry, cand_xy)
            assert sorted(np.nonzero(ia[i])[0].tolist()) == certain
            assert sorted(np.nonzero(band[i])[0].tolist()) == maybe

    def test_ia_and_band_disjoint(self, table_and_candidates):
        table, cand_xy = table_and_candidates
        ia, band = classify_chunk(table.entries, cand_xy)
        assert not np.any(ia & band)

    def test_chunks_cover_all_entries(self, table_and_candidates):
        table, cand_xy = table_and_candidates
        seen = 0
        for chunk, ia, band in classify_chunks(table.entries, cand_xy, chunk_size=4):
            assert ia.shape == (len(chunk), cand_xy.shape[0])
            assert band.shape == ia.shape
            seen += len(chunk)
        assert seen == len(table.entries)

    def test_chunking_invariant_to_chunk_size(self, table_and_candidates):
        table, cand_xy = table_and_candidates
        full_ia, full_band = classify_chunk(table.entries, cand_xy)
        rows_ia, rows_band = [], []
        for chunk, ia, band in classify_chunks(table.entries, cand_xy, chunk_size=3):
            rows_ia.append(ia)
            rows_band.append(band)
        np.testing.assert_array_equal(np.vstack(rows_ia), full_ia)
        np.testing.assert_array_equal(np.vstack(rows_band), full_band)


class TestEdgeCases:
    def test_all_candidates_far_away(self, pf, rng):
        objects = make_objects(rng, 3, extent=5.0, n_range=(2, 4))
        table = ObjectTable(objects, pf, 0.9)
        cand_xy = np.array([[1e5, 1e5], [-1e5, -1e5]])
        for entry in table:
            outcome = classify_candidates(entry, cand_xy, None)
            assert outcome.certain.size == 0
            assert outcome.maybe.size == 0
            assert outcome.pruned_nib == 2

    def test_candidate_in_mbr_is_never_nib_pruned(self, pf, rng):
        # minDist is zero inside the MBR, so the NIB rule can't fire.
        objects = make_objects(rng, 5, extent=20.0, n_range=(5, 30))
        table = ObjectTable(objects, pf, 0.9)
        for entry in table:
            center = entry.mbr.center
            cand_xy = np.array([[center.x, center.y]])
            outcome = classify_candidates(entry, cand_xy, None)
            assert outcome.pruned_nib == 0

    def test_empty_rtree_query_result(self, pf, rng):
        objects = make_objects(rng, 2, extent=5.0)
        table = ObjectTable(objects, pf, 0.9)
        cand_xy = np.array([[1e4, 1e4]])
        rtree = RTree.bulk_load(cand_xy)
        outcome = classify_candidates(table.entries[0], cand_xy, rtree)
        assert outcome.pruned_nib == 1
