"""Random-instance builders shared across test modules."""

from __future__ import annotations

import numpy as np

from repro.model import Candidate, MovingObject


def make_objects(
    rng: np.random.Generator,
    count: int,
    extent: float = 30.0,
    n_range: tuple[int, int] = (1, 40),
    spread: float = 4.0,
) -> list[MovingObject]:
    """Random moving objects with anchored position clouds."""
    objects = []
    for oid in range(count):
        n = int(rng.integers(n_range[0], n_range[1] + 1))
        anchor = rng.uniform(0.0, extent, size=2)
        positions = anchor + rng.normal(0.0, spread, size=(n, 2))
        objects.append(MovingObject(oid, positions))
    return objects


def make_candidates(
    rng: np.random.Generator, count: int, extent: float = 30.0
) -> list[Candidate]:
    """Random candidate locations, uniform over the extent."""
    return [
        Candidate(j, float(x), float(y))
        for j, (x, y) in enumerate(rng.uniform(0.0, extent, size=(count, 2)))
    ]
