"""Tests for PRIME-LS over uncertain positions."""

import numpy as np
import pytest

from repro.core.naive import NaiveAlgorithm
from repro.core.uncertain import UncertainPrimeLS
from repro.prob import PowerLawPF

from tests.helpers import make_candidates, make_objects


class TestUncertainPrimeLS:
    def test_zero_sigma_reduces_to_exact(self, pf, rng):
        objects = make_objects(rng, 10)
        candidates = make_candidates(rng, 8)
        exact = NaiveAlgorithm().select(objects, candidates, pf, 0.6)
        uncertain = UncertainPrimeLS(sigma_km=0.0, worlds=4).select(
            objects, candidates, pf, 0.6
        )
        for j in range(8):
            assert uncertain.expected_influence[j] == pytest.approx(
                float(exact.influences[j])
            )
            # Every per-object probability is 0 or 1 in the zero-noise case.
            p = uncertain.influence_probability[j]
            assert set(np.unique(p)).issubset({0.0, 1.0})

    def test_deterministic_given_seed(self, pf, rng):
        objects = make_objects(rng, 6)
        candidates = make_candidates(rng, 5)
        a = UncertainPrimeLS(0.5, worlds=16, seed=3).select(
            objects, candidates, pf, 0.6
        )
        b = UncertainPrimeLS(0.5, worlds=16, seed=3).select(
            objects, candidates, pf, 0.6
        )
        assert a.expected_influence == b.expected_influence

    def test_probabilities_are_valid(self, pf, rng):
        objects = make_objects(rng, 8)
        candidates = make_candidates(rng, 6)
        result = UncertainPrimeLS(0.3, worlds=32).select(
            objects, candidates, pf, 0.5
        )
        for p in result.influence_probability:
            assert np.all(p >= 0.0) and np.all(p <= 1.0)

    def test_small_noise_close_to_exact(self, pf, rng):
        objects = make_objects(rng, 12)
        candidates = make_candidates(rng, 6)
        exact = NaiveAlgorithm().select(objects, candidates, pf, 0.6)
        result = UncertainPrimeLS(0.01, worlds=32, seed=1).select(
            objects, candidates, pf, 0.6
        )
        for j in range(6):
            assert result.expected_influence[j] == pytest.approx(
                float(exact.influences[j]), abs=1.0
            )

    def test_confidence_halfwidth(self, pf, rng):
        objects = make_objects(rng, 10)
        candidates = make_candidates(rng, 4)
        result = UncertainPrimeLS(0.5, worlds=32, seed=2).select(
            objects, candidates, pf, 0.6
        )
        hw = result.confidence_halfwidth(result.best_index)
        assert hw >= 0.0
        # More worlds shrink the half-width.
        result_more = UncertainPrimeLS(0.5, worlds=128, seed=2).select(
            objects, candidates, pf, 0.6
        )
        assert result_more.confidence_halfwidth(result_more.best_index) <= hw + 1e-9

    def test_validation(self, pf, rng):
        objects = make_objects(rng, 2)
        candidates = make_candidates(rng, 2)
        with pytest.raises(ValueError):
            UncertainPrimeLS(-0.1)
        with pytest.raises(ValueError):
            UncertainPrimeLS(0.1, worlds=0)
        solver = UncertainPrimeLS(0.1)
        with pytest.raises(ValueError):
            solver.select([], candidates, pf, 0.5)
        with pytest.raises(ValueError):
            solver.select(objects, candidates, pf, 1.0)

    def test_heavy_noise_blurs_boundary_objects(self):
        # An object exactly at the influence boundary becomes a coin
        # flip under symmetric noise.
        pf = PowerLawPF()
        tau = 0.5
        from repro.model import Candidate, MovingObject

        boundary_d = pf.inverse(tau)  # single position at this distance
        obj = MovingObject(0, np.array([[boundary_d, 0.0]]))
        cand = Candidate(0, 0.0, 0.0)
        result = UncertainPrimeLS(0.5, worlds=400, seed=5).select(
            [obj], [cand], pf, tau
        )
        p = float(result.influence_probability[0][0])
        assert 0.2 < p < 0.8
