"""Tests for the road-network substrate and network PRIME-LS."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.model import Candidate, MovingObject
from repro.network import NetworkPrimeLS, RoadNetwork, grid_road_network
from repro.network.prime_ls import network_influence_of
from repro.prob import ExponentialPF, PowerLawPF


@pytest.fixture(scope="module")
def city_grid():
    rng = np.random.default_rng(7)
    return grid_road_network(8, 10, spacing_km=1.0, rng=rng, jitter_km=0.05)


class TestRoadNetwork:
    def test_grid_shape(self, city_grid):
        assert city_grid.n_nodes == 80
        # Full grid: (rows-1)*cols + rows*(cols-1) edges.
        assert city_grid.n_edges == 7 * 10 + 8 * 9

    def test_validation_rejects_missing_coordinates(self):
        g = nx.Graph()
        g.add_node(0)
        with pytest.raises(ValueError, match="coordinates"):
            RoadNetwork(g)

    def test_validation_rejects_missing_length(self):
        g = nx.Graph()
        g.add_node(0, x=0.0, y=0.0)
        g.add_node(1, x=1.0, y=0.0)
        g.add_edge(0, 1)
        with pytest.raises(ValueError, match="length"):
            RoadNetwork(g)

    def test_grid_parameter_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            grid_road_network(1, 5)
        with pytest.raises(ValueError):
            grid_road_network(3, 3, detour_factor=0.5)
        with pytest.raises(ValueError):
            grid_road_network(3, 3, removal_prob=1.0)
        with pytest.raises(ValueError):
            grid_road_network(3, 3, jitter_km=0.1)  # needs rng
        del rng

    def test_snap_returns_closest_node(self, city_grid):
        node = city_grid.snap(3.02, 4.01)
        nx_, xy = city_grid.coordinates_array()
        d = np.hypot(xy[:, 0] - 3.02, xy[:, 1] - 4.01)
        best = int(nx_[int(np.argmin(d))])
        assert node == best

    def test_network_distance_at_least_euclidean(self, city_grid):
        rng = np.random.default_rng(1)
        nodes, xy = city_grid.coordinates_array()
        for _ in range(25):
            a, b = rng.choice(len(nodes), 2, replace=False)
            net = city_grid.network_distance(int(nodes[a]), int(nodes[b]))
            euclid = float(np.hypot(*(xy[a] - xy[b])))
            assert net >= euclid - 1e-9

    def test_removal_keeps_connectivity(self):
        rng = np.random.default_rng(3)
        net = grid_road_network(6, 6, rng=rng, removal_prob=0.4)
        assert nx.is_connected(net.graph)

    def test_detour_factor_scales_lengths(self):
        plain = grid_road_network(3, 3)
        slow = grid_road_network(3, 3, detour_factor=2.0)
        assert slow.network_distance(0, 8) == pytest.approx(
            2.0 * plain.network_distance(0, 8)
        )

    def test_disconnected_distance_is_inf(self):
        g = nx.Graph()
        g.add_node(0, x=0.0, y=0.0)
        g.add_node(1, x=5.0, y=0.0)
        net = RoadNetwork(g)
        assert math.isinf(net.network_distance(0, 1))


class TestNetworkPrimeLS:
    def _objects_on_grid(self, network, rng, count=8, positions=6):
        nodes, xy = network.coordinates_array()
        objects = []
        for oid in range(count):
            anchor = rng.integers(0, len(nodes))
            picks = rng.integers(0, len(nodes), size=positions)
            # bias half the positions near the anchor row
            pts = xy[picks] + rng.normal(0, 0.01, size=(positions, 2))
            del anchor
            objects.append(MovingObject(oid, pts))
        return objects

    def test_matches_reference_predicate(self, city_grid):
        rng = np.random.default_rng(11)
        objects = self._objects_on_grid(city_grid, rng)
        nodes, xy = city_grid.coordinates_array()
        cands = [
            Candidate(j, float(xy[i, 0]), float(xy[i, 1]))
            for j, i in enumerate(rng.choice(len(nodes), 6, replace=False))
        ]
        pf = ExponentialPF(rho=0.9, length=2.0)
        tau = 0.55
        result = NetworkPrimeLS(city_grid).select(objects, cands, pf, tau)
        for j, cand in enumerate(cands):
            expected = sum(
                1
                for obj in objects
                if network_influence_of(city_grid, obj, cand, pf) >= tau
            )
            assert result.influences[j] == expected

    def test_network_influence_never_exceeds_euclidean(self, city_grid):
        # spdist >= dist ⇒ network influence counts <= Euclidean counts.
        from repro.core.naive import NaiveAlgorithm

        rng = np.random.default_rng(12)
        objects = self._objects_on_grid(city_grid, rng)
        nodes, xy = city_grid.coordinates_array()
        cands = [
            Candidate(j, float(xy[i, 0]), float(xy[i, 1]))
            for j, i in enumerate(rng.choice(len(nodes), 5, replace=False))
        ]
        pf = PowerLawPF()
        tau = 0.6
        net = NetworkPrimeLS(city_grid).select(objects, cands, pf, tau)
        euclid = NaiveAlgorithm().select(objects, cands, pf, tau)
        for j in range(len(cands)):
            assert net.influences[j] <= euclid.influences[j]

    def test_bounded_mode_is_conservative(self, city_grid):
        rng = np.random.default_rng(13)
        objects = self._objects_on_grid(city_grid, rng)
        nodes, xy = city_grid.coordinates_array()
        cands = [
            Candidate(j, float(xy[i, 0]), float(xy[i, 1]))
            for j, i in enumerate(rng.choice(len(nodes), 5, replace=False))
        ]
        pf = PowerLawPF()
        exact = NetworkPrimeLS(city_grid, exact=True).select(
            objects, cands, pf, 0.6
        )
        bounded = NetworkPrimeLS(city_grid, exact=False).select(
            objects, cands, pf, 0.6
        )
        for j in range(len(cands)):
            assert bounded.influences[j] <= exact.influences[j]

    def test_detours_reduce_influence(self):
        # Same layout, slower roads: influence can only drop.
        rng = np.random.default_rng(14)
        fast = grid_road_network(6, 6)
        slow = grid_road_network(6, 6, detour_factor=3.0)
        objects = self._objects_on_grid(fast, rng, count=6)
        nodes, xy = fast.coordinates_array()
        cands = [Candidate(0, float(xy[17, 0]), float(xy[17, 1]))]
        pf = ExponentialPF(rho=0.9, length=2.0)
        f = NetworkPrimeLS(fast).select(objects, cands, pf, 0.5)
        s = NetworkPrimeLS(slow).select(objects, cands, pf, 0.5)
        assert s.influences[0] <= f.influences[0]

    def test_nib_pruning_counts(self, city_grid):
        rng = np.random.default_rng(15)
        objects = self._objects_on_grid(city_grid, rng, count=5, positions=3)
        # A candidate far off the grid: everything NIB-pruned.
        cands = [Candidate(0, 1_000.0, 1_000.0)]
        pf = ExponentialPF(rho=0.9, length=1.0)
        result = NetworkPrimeLS(city_grid).select(objects, cands, pf, 0.5)
        assert result.best_influence == 0
        assert result.instrumentation.pairs_pruned_nib == 5
