"""Tests for the synthetic dataset substrate."""

import numpy as np
import pytest

from repro.datasets import (
    CityModel,
    Hotspot,
    SyntheticConfig,
    foursquare_like,
    generate_checkin_dataset,
    gowalla_like,
    sample_checkin_counts,
    tiny_demo,
)


class TestCityModel:
    def test_samples_within_extent(self, rng):
        city = CityModel.random(20.0, 10.0, 4, rng)
        pts = city.sample_points(500, rng)
        assert np.all(pts[:, 0] >= 0) and np.all(pts[:, 0] <= 20)
        assert np.all(pts[:, 1] >= 0) and np.all(pts[:, 1] <= 10)

    def test_hotspots_attract_mass(self, rng):
        hotspot = Hotspot(5.0, 5.0, 0.5, weight=10.0)
        city = CityModel(10.0, 10.0, [hotspot], background_weight=0.01)
        pts = city.sample_points(1000, rng)
        near = np.hypot(pts[:, 0] - 5, pts[:, 1] - 5) < 2.0
        assert near.mean() > 0.9

    def test_zero_count(self, rng):
        city = CityModel.random(10, 10, 2, rng)
        assert city.sample_points(0, rng).shape == (0, 2)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            CityModel(0.0, 10.0, [Hotspot(1, 1, 1)])
        with pytest.raises(ValueError):
            CityModel(10.0, 10.0, [])
        with pytest.raises(ValueError):
            Hotspot(0, 0, sigma=0.0)
        with pytest.raises(ValueError):
            CityModel.random(10, 10, 0, rng)


class TestCheckinCounts:
    def test_respects_bounds(self, rng):
        counts = sample_checkin_counts(500, 40.0, 3, 400, rng)
        assert counts.min() == 3
        assert counts.max() == 400

    def test_mean_close_to_target(self, rng):
        counts = sample_checkin_counts(5_000, 72.0, 3, 661, rng)
        assert counts.mean() == pytest.approx(72.0, rel=0.15)

    def test_skewed_right(self, rng):
        counts = sample_checkin_counts(5_000, 37.0, 2, 780, rng)
        assert np.median(counts) < counts.mean()

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            sample_checkin_counts(0, 10, 1, 100, rng)
        with pytest.raises(ValueError):
            sample_checkin_counts(10, 200, 1, 100, rng)
        with pytest.raises(ValueError):
            sample_checkin_counts(10, 10, 1, 100, rng, sigma=0.0)


class TestGenerator:
    def test_deterministic_given_seed(self):
        a = generate_checkin_dataset(SyntheticConfig(seed=5)).dataset
        b = generate_checkin_dataset(SyntheticConfig(seed=5)).dataset
        assert a.n_objects == b.n_objects
        np.testing.assert_array_equal(a.venue_checkins, b.venue_checkins)
        np.testing.assert_allclose(
            a.objects[0].positions, b.objects[0].positions
        )

    def test_different_seeds_differ(self):
        a = generate_checkin_dataset(SyntheticConfig(seed=5)).dataset
        b = generate_checkin_dataset(SyntheticConfig(seed=6)).dataset
        assert not np.array_equal(a.venue_checkins, b.venue_checkins)

    def test_ground_truth_totals_match_checkins(self):
        world = generate_checkin_dataset(SyntheticConfig(seed=9))
        ds = world.dataset
        assert ds.venue_checkins.sum() == sum(o.n_positions for o in ds.objects)

    def test_world_exposes_latents(self):
        world = generate_checkin_dataset(SyntheticConfig(seed=1))
        assert len(world.user_anchors) == world.dataset.n_objects
        assert world.venue_attractiveness.shape == (world.dataset.n_venues,)

    def test_anchor_spread_localises_users(self):
        wide = SyntheticConfig(seed=2, width_km=200, height_km=200,
                               anchor_spread_km=None)
        local = SyntheticConfig(seed=2, width_km=200, height_km=200,
                                anchor_spread_km=5.0)
        w_wide = generate_checkin_dataset(wide).dataset
        w_local = generate_checkin_dataset(local).dataset
        mbr_wide = np.mean([o.mbr.width for o in w_wide.objects])
        mbr_local = np.mean([o.mbr.width for o in w_local.objects])
        assert mbr_local < mbr_wide

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticConfig(n_users=0)
        with pytest.raises(ValueError):
            SyntheticConfig(anchors_per_user=(3, 2))
        with pytest.raises(ValueError):
            SyntheticConfig(gravity_gamma=0.0)
        with pytest.raises(ValueError):
            SyntheticConfig(gps_noise_km=-1.0)
        with pytest.raises(ValueError):
            SyntheticConfig(anchor_spread_km=0.0)


class TestPresets:
    def test_tiny_demo_shape(self):
        ds = tiny_demo().dataset
        assert ds.n_objects == 60
        assert ds.n_venues == 150

    def test_foursquare_like_scaled_stats(self):
        ds = foursquare_like(scale=0.1).dataset
        stats = ds.stats()
        assert stats.user_count == pytest.approx(232, abs=2)
        assert stats.venue_count == pytest.approx(559, abs=2)
        # Check-in distribution matches Table 2's shape.
        assert stats.min_checkins == 3
        assert stats.max_checkins == 661
        assert stats.avg_checkins == pytest.approx(72, rel=0.25)

    def test_gowalla_like_scaled_stats(self):
        ds = gowalla_like(scale=0.05).dataset
        stats = ds.stats()
        assert stats.user_count == pytest.approx(508, abs=2)
        assert stats.min_checkins == 2
        assert stats.max_checkins == 780
        assert stats.avg_checkins == pytest.approx(37, rel=0.3)

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            foursquare_like(scale=0.0)
        with pytest.raises(ValueError):
            gowalla_like(scale=1.5)
