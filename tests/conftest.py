"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import tiny_demo
from repro.prob import PowerLawPF


@pytest.fixture(scope="session")
def demo_world():
    """The small deterministic demo world (60 users, 150 venues)."""
    return tiny_demo(seed=7)


@pytest.fixture(scope="session")
def demo_dataset(demo_world):
    return demo_world.dataset


@pytest.fixture(scope="session")
def demo_candidates(demo_dataset):
    rng = np.random.default_rng(123)
    candidates, venue_idx = demo_dataset.sample_candidates(40, rng)
    return candidates, venue_idx


@pytest.fixture()
def pf():
    """The paper-default probability function."""
    return PowerLawPF(rho=0.9, lam=1.0)


@pytest.fixture()
def rng():
    return np.random.default_rng(2024)
