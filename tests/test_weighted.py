"""Tests for weighted PRIME-LS."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.naive import NaiveAlgorithm, exact_probability
from repro.core.weighted import WeightedPrimeLS
from repro.prob import PowerLawPF

from tests.helpers import make_candidates, make_objects


def brute_weighted(objects, weights, candidates, pf, tau):
    return {
        j: sum(
            w
            for obj, w in zip(objects, weights)
            if exact_probability(obj, cand.x, cand.y, pf) >= tau - 1e-12
        )
        for j, cand in enumerate(candidates)
    }


class TestWeighted:
    def test_unit_weights_reduce_to_plain(self, pf, rng):
        objects = make_objects(rng, 15)
        candidates = make_candidates(rng, 12)
        plain = NaiveAlgorithm().select(objects, candidates, pf, 0.6)
        weighted = WeightedPrimeLS([1.0] * 15).select(objects, candidates, pf, 0.6)
        for j in range(12):
            assert weighted.influences[j] == pytest.approx(plain.influences[j])

    def test_matches_brute_force(self, pf, rng):
        objects = make_objects(rng, 12)
        weights = rng.uniform(0.1, 5.0, 12).tolist()
        candidates = make_candidates(rng, 10)
        result = WeightedPrimeLS(weights).select(objects, candidates, pf, 0.5)
        expected = brute_weighted(objects, weights, candidates, pf, 0.5)
        for j in range(10):
            assert result.influences[j] == pytest.approx(expected[j])

    def test_dict_weights_by_object_id(self, pf, rng):
        objects = make_objects(rng, 8)
        weights = {obj.object_id: float(obj.object_id + 1) for obj in objects}
        candidates = make_candidates(rng, 6)
        by_dict = WeightedPrimeLS(weights).select(objects, candidates, pf, 0.5)
        by_list = WeightedPrimeLS(
            [weights[o.object_id] for o in objects]
        ).select(objects, candidates, pf, 0.5)
        for j in range(6):
            assert by_dict.influences[j] == pytest.approx(by_list.influences[j])

    def test_missing_dict_weight_defaults_to_one(self, pf, rng):
        objects = make_objects(rng, 5)
        candidates = make_candidates(rng, 4)
        partial = WeightedPrimeLS({}).select(objects, candidates, pf, 0.5)
        plain = NaiveAlgorithm().select(objects, candidates, pf, 0.5)
        for j in range(4):
            assert partial.influences[j] == pytest.approx(plain.influences[j])

    def test_zero_weight_object_is_ignored(self, pf, rng):
        objects = make_objects(rng, 6)
        candidates = make_candidates(rng, 5)
        weights = [1.0] * 6
        weights[2] = 0.0
        weighted = WeightedPrimeLS(weights).select(objects, candidates, pf, 0.5)
        without = NaiveAlgorithm().select(
            objects[:2] + objects[3:], candidates, pf, 0.5
        )
        for j in range(5):
            assert weighted.influences[j] == pytest.approx(without.influences[j])

    def test_negative_weight_rejected(self, pf, rng):
        objects = make_objects(rng, 3)
        candidates = make_candidates(rng, 3)
        with pytest.raises(ValueError, match="non-negative"):
            WeightedPrimeLS([1.0, -0.5, 1.0]).select(objects, candidates, pf, 0.5)

    def test_length_mismatch_rejected(self, pf, rng):
        objects = make_objects(rng, 3)
        candidates = make_candidates(rng, 3)
        with pytest.raises(ValueError, match="weights for"):
            WeightedPrimeLS([1.0]).select(objects, candidates, pf, 0.5)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1_000), tau=st.floats(0.1, 0.9))
    def test_random_instances_property(self, seed, tau):
        pf = PowerLawPF()
        rng = np.random.default_rng(seed)
        objects = make_objects(rng, 8, extent=20.0, n_range=(1, 15))
        weights = rng.uniform(0.0, 3.0, 8).tolist()
        candidates = make_candidates(rng, 8, extent=20.0)
        result = WeightedPrimeLS(weights).select(objects, candidates, pf, tau)
        expected = brute_weighted(objects, weights, candidates, pf, tau)
        for j in range(8):
            assert result.influences[j] == pytest.approx(expected[j])
