"""Tests for the influence kernels (Definition 1, Lemma 4, Strategy 2)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.influence import (
    batch_log_non_influence,
    batch_validate_objects,
    batch_validate_spans,
    cumulative_probability,
    influence_threshold_log,
    log1m_safe,
    log_non_influence,
    validate_pair,
)
from repro.core.result import Instrumentation
from repro.prob import PowerLawPF


def direct_cumulative(pf, positions, cx, cy):
    """Definition 1 computed literally (product form)."""
    product = 1.0
    for px, py in positions:
        product *= 1.0 - float(pf(math.hypot(px - cx, py - cy)))
    return 1.0 - product


class TestCumulativeProbability:
    def test_matches_direct_product(self, pf, rng):
        positions = rng.uniform(0, 10, size=(25, 2))
        got = cumulative_probability(pf, positions, 5.0, 5.0)
        assert got == pytest.approx(direct_cumulative(pf, positions, 5.0, 5.0))

    def test_single_position(self, pf):
        positions = np.array([[3.0, 4.0]])
        expected = float(pf(5.0))
        assert cumulative_probability(pf, positions, 0.0, 0.0) == pytest.approx(expected)

    def test_example1_of_the_paper(self):
        # Example 1 hard-codes probabilities 0.5, 0.1, 0.2, 0.15, 0.12
        # => cumulative 0.73.  Emulate with a lookup PF.
        probs = [0.5, 0.1, 0.2, 0.15, 0.12]
        cumulative = 1 - np.prod([1 - p for p in probs])
        assert cumulative == pytest.approx(0.73, abs=5e-3)  # paper rounds to 0.73

    def test_no_underflow_with_many_positions(self, pf):
        # 100k far positions: the plain product would underflow to 0
        # and report influence 1.0; log-space must stay accurate.
        positions = np.full((100_000, 2), 500.0)
        p = cumulative_probability(pf, positions, 0.0, 0.0)
        per_position = float(pf(math.hypot(500, 500)))
        expected = -math.expm1(100_000 * math.log1p(-per_position))
        assert p == pytest.approx(expected, rel=1e-9)

    def test_probability_one_with_zero_distance_rho1(self):
        # A PF reaching exactly 1 at distance 0 forces influence 1.
        pf = PowerLawPF(rho=1.0, lam=1.0)
        positions = np.array([[0.0, 0.0], [9.0, 9.0]])
        assert cumulative_probability(pf, positions, 0.0, 0.0) == pytest.approx(1.0)

    def test_monotone_in_positions(self, pf, rng):
        # Adding a position can only increase the cumulative probability.
        positions = rng.uniform(0, 10, size=(10, 2))
        base = cumulative_probability(pf, positions[:5], 5.0, 5.0)
        more = cumulative_probability(pf, positions, 5.0, 5.0)
        assert more >= base - 1e-12


class TestLogHelpers:
    def test_log1m_safe_clips_at_one(self):
        assert log1m_safe(1.0) == -np.inf
        assert log1m_safe(2.0) == -np.inf

    def test_log1m_safe_matches_log1p(self):
        assert log1m_safe(0.3) == pytest.approx(math.log1p(-0.3))

    def test_threshold_log(self):
        assert influence_threshold_log(0.7) == pytest.approx(math.log(0.3))

    def test_threshold_rejects_degenerate_tau(self):
        with pytest.raises(ValueError):
            influence_threshold_log(0.0)
        with pytest.raises(ValueError):
            influence_threshold_log(1.0)

    def test_log_non_influence(self, pf, rng):
        positions = rng.uniform(0, 5, size=(8, 2))
        s = log_non_influence(pf, positions, 1.0, 1.0)
        assert s == pytest.approx(
            sum(
                math.log1p(-float(pf(math.hypot(px - 1, py - 1))))
                for px, py in positions
            )
        )


class TestValidatePair:
    @pytest.mark.parametrize("kernel", ["scalar", "vector"])
    def test_matches_threshold_test(self, kernel, pf, rng):
        tau = 0.6
        log_thr = influence_threshold_log(tau)
        for _ in range(30):
            positions = rng.uniform(0, 30, size=(int(rng.integers(1, 60)), 2))
            cx, cy = rng.uniform(0, 30, size=2)
            expected = cumulative_probability(pf, positions, cx, cy) >= tau
            got = validate_pair(pf, positions, cx, cy, log_thr, kernel=kernel)
            assert got == expected

    def test_scalar_and_vector_agree(self, pf, rng):
        log_thr = influence_threshold_log(0.7)
        for _ in range(50):
            positions = rng.uniform(0, 40, size=(int(rng.integers(1, 80)), 2))
            cx, cy = rng.uniform(0, 40, size=2)
            s = validate_pair(pf, positions, cx, cy, log_thr, kernel="scalar")
            v = validate_pair(pf, positions, cx, cy, log_thr, kernel="vector")
            assert s == v

    def test_unknown_kernel_raises(self, pf):
        with pytest.raises(ValueError):
            validate_pair(pf, np.zeros((1, 2)), 0, 0, -1.0, kernel="gpu")

    def test_early_stop_counts_positions(self, pf):
        # All positions at distance 0 (p = 0.9): one position suffices
        # for tau = 0.5, so the scalar kernel must stop after 1.
        positions = np.zeros((50, 2))
        counters = Instrumentation()
        got = validate_pair(
            pf, positions, 0.0, 0.0, influence_threshold_log(0.5),
            counters=counters, kernel="scalar", early_stop=True,
        )
        assert got is True
        assert counters.positions_evaluated == 1
        assert counters.early_stops == 1

    def test_early_stop_disabled_scans_everything(self, pf):
        positions = np.zeros((50, 2))
        counters = Instrumentation()
        validate_pair(
            pf, positions, 0.0, 0.0, influence_threshold_log(0.5),
            counters=counters, kernel="scalar", early_stop=False,
        )
        assert counters.positions_evaluated == 50
        assert counters.early_stops == 0

    def test_vector_early_stop_chunk_granularity(self, pf):
        positions = np.zeros((100, 2))
        counters = Instrumentation()
        validate_pair(
            pf, positions, 0.0, 0.0, influence_threshold_log(0.5),
            counters=counters, kernel="vector", early_stop=True, chunk=16,
        )
        assert counters.positions_evaluated == 16
        assert counters.early_stops == 1

    @pytest.mark.parametrize("kernel", ["scalar", "vector"])
    def test_fail_fast_is_sound(self, kernel, pf, rng):
        # With the fail-fast bound enabled the decision must not change.
        from repro.geo.mbr import MBR

        log_thr = influence_threshold_log(0.7)
        for _ in range(40):
            positions = rng.uniform(0, 30, size=(int(rng.integers(2, 50)), 2))
            cx, cy = rng.uniform(-20, 50, size=2)
            mbr = MBR.from_array(positions)
            p_ub = float(pf(mbr.min_dist(cx, cy)))
            bound = float(log1m_safe(p_ub))
            plain = validate_pair(pf, positions, cx, cy, log_thr, kernel=kernel)
            fast = validate_pair(
                pf, positions, cx, cy, log_thr, kernel=kernel,
                fail_fast_log_bound=bound,
            )
            assert plain == fast

    def test_fail_fast_saves_positions_for_hopeless_pairs(self, pf):
        # A faraway candidate: every position has the same tiny p, the
        # bound proves failure after the first position.
        positions = np.tile([100.0, 100.0], (80, 1))
        from repro.geo.mbr import MBR

        mbr = MBR.from_array(positions)
        p_ub = float(pf(mbr.min_dist(0.0, 0.0)))
        counters = Instrumentation()
        got = validate_pair(
            pf, positions, 0.0, 0.0, influence_threshold_log(0.9),
            counters=counters, kernel="scalar",
            fail_fast_log_bound=float(log1m_safe(p_ub)),
        )
        assert got is False
        assert counters.fail_fast_stops == 1
        assert counters.positions_evaluated < 80


class TestBatchKernels:
    def test_batch_log_non_influence_matches_loop(self, pf, rng):
        positions = rng.uniform(0, 20, size=(30, 2))
        cand_xy = rng.uniform(0, 20, size=(7, 2))
        batch = batch_log_non_influence(pf, positions, cand_xy)
        for j in range(7):
            assert batch[j] == pytest.approx(
                log_non_influence(pf, positions, *cand_xy[j])
            )

    def test_batch_validate_objects_matches_pairwise(self, pf, rng):
        log_thr = influence_threshold_log(0.65)
        objects = [
            rng.uniform(0, 25, size=(int(rng.integers(1, 70)), 2))
            for _ in range(40)
        ]
        cx, cy = 12.0, 8.0
        got = batch_validate_objects(pf, objects, cx, cy, log_thr)
        expected = np.array(
            [validate_pair(pf, o, cx, cy, log_thr, kernel="scalar") for o in objects]
        )
        np.testing.assert_array_equal(got, expected)

    def test_batch_counters_reflect_early_stop(self, pf):
        # Objects hugging the candidate decide within the head chunk.
        log_thr = influence_threshold_log(0.5)
        objects = [np.zeros((60, 2)) for _ in range(10)]
        counters = Instrumentation()
        batch_validate_objects(
            pf, objects, 0.0, 0.0, log_thr, counters=counters, head=16
        )
        assert counters.positions_evaluated == 10 * 16
        assert counters.early_stops == 10
        assert counters.positions_total == 600

    def test_batch_single_object(self, pf):
        log_thr = influence_threshold_log(0.7)
        got = batch_validate_objects(pf, [np.zeros((2, 2))], 0.0, 0.0, log_thr)
        assert got.shape == (1,)
        assert bool(got[0]) is True

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 40), st.floats(0.05, 0.95))
    def test_batch_exactness_property(self, n, tau):
        pf = PowerLawPF()
        rng = np.random.default_rng(n)
        objects = [
            rng.uniform(0, 50, size=(int(rng.integers(1, 3 * n + 1)), 2))
            for _ in range(5)
        ]
        log_thr = influence_threshold_log(tau)
        got = batch_validate_objects(pf, objects, 25.0, 25.0, log_thr)
        for k, obj in enumerate(objects):
            assert bool(got[k]) == (
                cumulative_probability(pf, obj, 25.0, 25.0) >= tau
            )


class TestBatchValidateSpans:
    """The columnar span kernel is bit-identical to the list kernel."""

    @staticmethod
    def flat_block(objects):
        positions = np.concatenate(objects, axis=0)
        lengths = np.array([o.shape[0] for o in objects], dtype=np.int64)
        offsets = np.zeros(lengths.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        return positions, offsets

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        tau=st.floats(0.05, 0.95),
        k=st.integers(1, 25),
        head=st.sampled_from([1, 4, 16]),
    )
    def test_property_matches_list_kernel(self, seed, tau, k, head):
        pf = PowerLawPF()
        rng = np.random.default_rng(seed)
        objects = [
            rng.uniform(0, 40, size=(int(rng.integers(1, 50)), 2))
            for _ in range(30)
        ]
        positions, offsets = self.flat_block(objects)
        idx = rng.choice(len(objects), size=k, replace=False)
        cx, cy = float(rng.uniform(0, 40)), float(rng.uniform(0, 40))
        log_thr = influence_threshold_log(tau)

        want_counters = Instrumentation()
        want = batch_validate_objects(
            pf, [objects[i] for i in idx.tolist()], cx, cy, log_thr,
            counters=want_counters, head=head,
        )
        got_counters = Instrumentation()
        got = batch_validate_spans(
            pf, positions, offsets, idx, cx, cy, log_thr,
            counters=got_counters, head=head,
        )
        np.testing.assert_array_equal(got, want)
        assert got_counters == want_counters

    def test_empty_span(self, pf):
        objects = [np.zeros((3, 2))]
        positions, offsets = self.flat_block(objects)
        got = batch_validate_spans(
            pf, positions, offsets, np.empty(0, dtype=int),
            0.0, 0.0, influence_threshold_log(0.5),
        )
        assert got.shape == (0,)
