"""Tests for the uniform grid index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import MBR
from repro.index import UniformGrid
from repro.index.protocol import SpatialIndex


@pytest.fixture(scope="module")
def point_cloud():
    rng = np.random.default_rng(5)
    return rng.uniform(-50, 50, size=(300, 2))


@pytest.fixture(scope="module")
def grid(point_cloud):
    g = UniformGrid(cell_size=7.0)
    for i, (x, y) in enumerate(point_cloud):
        g.insert(i, float(x), float(y))
    return g


class TestGrid:
    def test_protocol_conformance(self, grid):
        assert isinstance(grid, SpatialIndex)

    def test_len(self, grid, point_cloud):
        assert len(grid) == len(point_cloud)

    def test_cell_size_validation(self):
        with pytest.raises(ValueError):
            UniformGrid(cell_size=0.0)

    def test_insert_non_finite_raises(self):
        g = UniformGrid()
        with pytest.raises(ValueError):
            g.insert(0, float("nan"), 0.0)

    def test_rect_query_matches_brute(self, grid, point_cloud):
        rng = np.random.default_rng(11)
        for _ in range(20):
            x1, x2 = sorted(rng.uniform(-50, 50, 2))
            y1, y2 = sorted(rng.uniform(-50, 50, 2))
            rect = MBR(x1, y1, x2, y2)
            expected = sorted(
                i for i, (x, y) in enumerate(point_cloud) if rect.contains_point(x, y)
            )
            assert sorted(grid.query_rect(rect)) == expected

    def test_circle_query_matches_brute(self, grid, point_cloud):
        rng = np.random.default_rng(12)
        for _ in range(20):
            cx, cy = rng.uniform(-50, 50, 2)
            r = rng.uniform(0, 30)
            expected = sorted(
                i
                for i, (x, y) in enumerate(point_cloud)
                if (x - cx) ** 2 + (y - cy) ** 2 <= r * r
            )
            assert sorted(grid.query_circle(cx, cy, r)) == expected

    def test_negative_radius_empty(self, grid):
        assert grid.query_circle(0, 0, -0.5) == []

    def test_nearest_matches_brute(self, grid, point_cloud):
        rng = np.random.default_rng(13)
        for _ in range(20):
            qx, qy = rng.uniform(-80, 80, 2)
            nid, nd = grid.nearest(qx, qy)
            d = np.hypot(point_cloud[:, 0] - qx, point_cloud[:, 1] - qy)
            assert nd == pytest.approx(d.min())
            assert d[nid] == pytest.approx(d.min())

    def test_nearest_empty_raises(self):
        with pytest.raises(ValueError):
            UniformGrid().nearest(0, 0)

    def test_nearest_far_query(self, grid, point_cloud):
        nid, nd = grid.nearest(500.0, 500.0)
        d = np.hypot(point_cloud[:, 0] - 500, point_cloud[:, 1] - 500)
        assert nd == pytest.approx(d.min())

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 500),
        cell=st.floats(0.5, 20.0),
        count=st.integers(1, 80),
    )
    def test_grid_vs_rtree_agreement(self, seed, cell, count):
        from repro.index import RTree

        rng = np.random.default_rng(seed)
        xy = rng.uniform(-30, 30, size=(count, 2))
        g = UniformGrid(cell_size=cell)
        t = RTree.bulk_load(xy)
        for i, (x, y) in enumerate(xy):
            g.insert(i, float(x), float(y))
        rect = MBR(-10, -5, 12, 18)
        assert sorted(g.query_rect(rect)) == sorted(t.query_rect(rect))
        assert sorted(g.query_circle(0, 0, 15)) == sorted(t.query_circle(0, 0, 15))
        gn = g.nearest(3.3, -2.2)
        tn = t.nearest(3.3, -2.2)
        assert gn[1] == pytest.approx(tn[1])
