"""Tests for competitive PRIME-LS (existing facilities)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.competitive import CompetitivePrimeLS, marginal_influence
from repro.core.naive import NaiveAlgorithm
from repro.model import Candidate, MovingObject
from repro.prob import PowerLawPF

from tests.helpers import make_candidates, make_objects


def brute_marginal_influences(objects, candidates, facilities, pf, tau):
    return {
        j: sum(
            1
            for obj in objects
            if marginal_influence(obj, cand, facilities, pf, tau)
        )
        for j, cand in enumerate(candidates)
    }


class TestCompetitive:
    def test_no_facilities_reduces_to_prime_ls(self, pf, rng):
        objects = make_objects(rng, 12)
        candidates = make_candidates(rng, 10)
        plain = NaiveAlgorithm().select(objects, candidates, pf, 0.6)
        competitive = CompetitivePrimeLS([]).select(objects, candidates, pf, 0.6)
        assert competitive.influences == plain.influences

    def test_matches_reference_predicate(self, pf, rng):
        objects = make_objects(rng, 12, extent=20.0)
        candidates = make_candidates(rng, 10, extent=20.0)
        facilities = make_candidates(rng, 3, extent=20.0)
        facilities = [Candidate(900 + j, f.x, f.y) for j, f in enumerate(facilities)]
        result = CompetitivePrimeLS(facilities).select(objects, candidates, pf, 0.5)
        expected = brute_marginal_influences(objects, candidates, facilities, pf, 0.5)
        assert result.influences == expected

    def test_facility_on_candidate_ties_count_for_newcomer(self, pf):
        obj = MovingObject(0, np.array([[0.0, 0.0], [0.5, 0.5]]))
        spot = Candidate(0, 0.2, 0.2)
        facility = Candidate(900, 0.2, 0.2)  # same place
        result = CompetitivePrimeLS([facility]).select([obj], [spot], pf, 0.3)
        # Equal probability: tie counts for the newcomer by definition.
        assert result.influences[0] == 1

    def test_strong_incumbent_blocks_distant_candidates(self, pf, rng):
        # Objects cluster near the incumbent; a candidate across town
        # wins nothing even though it would meet tau on its own.
        objects = [
            MovingObject(i, rng.normal([2.0, 2.0], 0.3, size=(20, 2)))
            for i in range(10)
        ]
        incumbent = Candidate(900, 2.0, 2.0)
        far = Candidate(0, 9.0, 9.0)
        plain = NaiveAlgorithm().select(objects, [far], pf, 0.5)
        assert plain.best_influence == 10  # tau alone is satisfied
        competitive = CompetitivePrimeLS([incumbent]).select(
            objects, [far], pf, 0.5
        )
        assert competitive.best_influence == 0

    def test_incumbent_with_certainty_kills_object(self, rng):
        pf = PowerLawPF(rho=1.0, lam=1.0)  # PF(0) = 1
        obj = MovingObject(0, np.array([[1.0, 1.0]]))
        incumbent = Candidate(900, 1.0, 1.0)  # distance 0 => Pr = 1
        cand = Candidate(0, 1.0, 1.0)
        result = CompetitivePrimeLS([incumbent]).select([obj], [cand], pf, 0.5)
        assert result.best_influence == 0
        assert result.instrumentation.dead_objects == 1

    def test_marginal_influence_monotone_in_facilities(self, pf, rng):
        objects = make_objects(rng, 10)
        candidates = make_candidates(rng, 8)
        f1 = [Candidate(900, 5.0, 5.0)]
        f2 = f1 + [Candidate(901, 20.0, 20.0)]
        one = CompetitivePrimeLS(f1).select(objects, candidates, pf, 0.5)
        two = CompetitivePrimeLS(f2).select(objects, candidates, pf, 0.5)
        for j in range(8):
            assert two.influences[j] <= one.influences[j]

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 1_000),
        tau=st.floats(0.1, 0.9),
        n_facilities=st.integers(0, 4),
    )
    def test_random_instances_property(self, seed, tau, n_facilities):
        pf = PowerLawPF()
        rng = np.random.default_rng(seed)
        objects = make_objects(rng, 8, extent=20.0, n_range=(1, 15))
        candidates = make_candidates(rng, 8, extent=20.0)
        facilities = [
            Candidate(900 + j, float(x), float(y))
            for j, (x, y) in enumerate(rng.uniform(0, 20, size=(n_facilities, 2)))
        ]
        result = CompetitivePrimeLS(facilities).select(objects, candidates, pf, tau)
        expected = brute_marginal_influences(
            objects, candidates, facilities, pf, tau
        )
        assert result.influences == expected
