"""The persistent shared-memory worker pool: identity, lifecycle, faults.

The claims under test, matching ``docs/architecture.md``'s pool
semantics:

* a pool-served query (``QueryEngine(..., pool=True)``) returns the
  bit-identical answer of a fresh serial ``select_location`` call —
  full influence table and logical work counters — for every
  algorithm, and ``query_batch`` is bit-identical to issuing the same
  ``query`` calls sequentially (property-tested over random worlds),
* a worker killed mid-batch is respawned (visible as
  ``EngineStats.pool_respawns``) and the batch still completes with
  bit-identical answers,
* shared-memory segments never leak: ``close()`` unlinks every
  ``/dev/shm`` entry the pool created, and an engine abandoned without
  ``close()`` is cleaned up at interpreter exit,
* no orphan worker processes survive any of the above.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import QueryEngine, select_location
from repro.engine import FaultInjector, FaultSpec, QueryRequest, pool_segments
from repro.engine.parallel import fork_available
from repro.prob import PowerLawPF

from .helpers import make_candidates, make_objects
from .test_engine import ALGORITHMS, assert_same_result
from .test_faults import assert_no_orphans, fast_policy

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="needs fork start method"
)


@pytest.fixture(scope="module")
def world():
    rng = np.random.default_rng(7)
    return make_objects(rng, 25, n_range=(1, 10))


@pytest.fixture(scope="module")
def candidates():
    # 16 candidates across 4 workers -> 4 shards of 4 columns each.
    return make_candidates(np.random.default_rng(8), 16)


def pooled_engine(objects, faults=(), **kwargs):
    kwargs.setdefault("workers", 4)
    kwargs.setdefault("supervisor_policy", fast_policy())
    injector = FaultInjector(list(faults)) if faults else None
    return QueryEngine(objects, pool=True, fault_injector=injector, **kwargs)


class TestBitIdentity:
    """Pool answers == serial answers, down to the work counters."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_pooled_query_matches_fresh_solver(
        self, world, candidates, pf, algorithm
    ):
        with pooled_engine(world) as engine:
            got = engine.query(
                candidates, pf=pf, tau=0.7, algorithm=algorithm
            )
            assert engine.stats.spans_dispatched > 0
        want = select_location(
            world, candidates, pf=pf, tau=0.7, algorithm=algorithm
        )
        assert_same_result(got, want, counters=True)
        assert_no_orphans()

    def test_query_batch_matches_sequential_queries(self, world, pf):
        rng = np.random.default_rng(9)
        requests = [
            QueryRequest(make_candidates(rng, 12), pf, tau, "PIN-VO")
            for tau in (0.5, 0.7, 0.8, 0.7)
        ]
        with pooled_engine(world) as engine:
            batched = engine.query_batch(requests)
            assert engine.stats.batch_sizes == [len(requests)]
        sequential_engine = QueryEngine(world)
        for got, req in zip(batched, requests):
            want = sequential_engine.query(
                req.candidates, pf=req.pf, tau=req.tau,
                algorithm=req.algorithm,
            )
            assert_same_result(got, want, counters=True)
        assert_no_orphans()

    def test_batch_repeated_pruning_key_is_a_hit(self, world, candidates, pf):
        # Two requests sharing (candidates, pf, tau) inside one batch:
        # the second must reuse the first's pruning output.
        requests = [
            QueryRequest(candidates, pf, 0.7, "PIN-VO"),
            QueryRequest(candidates, pf, 0.7, "PIN-VO"),
        ]
        with pooled_engine(world) as engine:
            first, second = engine.query_batch(requests)
            assert engine.stats.pruning_hits >= 1
        assert_same_result(second, first, counters=True)

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        tau=st.sampled_from([0.5, 0.7, 0.9]),
        algorithm=st.sampled_from(["PIN", "PIN-VO"]),
    )
    def test_property_batch_equals_serial(self, seed, tau, algorithm):
        rng = np.random.default_rng(seed)
        objects = make_objects(rng, 12, n_range=(1, 6))
        cand_sets = [make_candidates(rng, 9) for _ in range(3)]
        pf = PowerLawPF(rho=0.9, lam=1.0)
        with pooled_engine(objects, workers=2) as engine:
            batched = engine.query_batch(
                [QueryRequest(c, pf, tau, algorithm) for c in cand_sets]
            )
        for got, cands in zip(batched, cand_sets):
            want = select_location(
                objects, cands, pf=pf, tau=tau, algorithm=algorithm
            )
            assert_same_result(got, want, counters=True)


class TestSupervision:
    """Worker death mid-batch: respawn, re-dispatch, same answers."""

    def test_crash_mid_batch_respawns_and_completes(self, world, pf):
        rng = np.random.default_rng(10)
        cand_sets = [make_candidates(rng, 12) for _ in range(3)]
        faults = [FaultSpec(kind="crash", worker=1, times=1)]
        with pooled_engine(world, faults=faults) as engine:
            batched = engine.query_batch(
                [QueryRequest(c, pf, 0.7, "PIN-VO") for c in cand_sets]
            )
            assert engine.stats.pool_respawns >= 1
            assert engine.stats.worker_failures >= 1
        for got, cands in zip(batched, cand_sets):
            want = select_location(
                world, cands, pf=pf, tau=0.7, algorithm="PIN-VO"
            )
            assert_same_result(got, want, counters=True)
        assert_no_orphans()

    @pytest.mark.parametrize("kind", ["exception", "delay"])
    def test_soft_faults_keep_identity(self, world, candidates, pf, kind):
        faults = [FaultSpec(kind=kind, worker=0, times=1)]
        with pooled_engine(world, faults=faults) as engine:
            got = engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
            if kind == "exception":
                assert engine.stats.worker_failures >= 1
        want = select_location(
            world, candidates, pf=pf, tau=0.7, algorithm="PIN"
        )
        assert_same_result(got, want, counters=True)
        assert_no_orphans()

    def test_crash_single_query_respawns(self, world, candidates, pf):
        faults = [FaultSpec(kind="crash", worker=0, times=1)]
        with pooled_engine(world, faults=faults) as engine:
            got = engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
            assert engine.stats.pool_respawns >= 1
        want = select_location(
            world, candidates, pf=pf, tau=0.7, algorithm="PIN"
        )
        assert_same_result(got, want, counters=True)
        assert_no_orphans()


class TestWorkerRebuild:
    """The worker-side table rebuild is dead weight no more.

    Workers attach a shared segment and serve columnar spans straight
    off its arrays — no per-object ``ObjectEntry`` wrappers and no
    fresh ``MinMaxRadiusCache`` are built any more.  These tests run
    the exact span code path on a table rebuilt from a columnar export
    and assert both the laziness and the unchanged answers, then check
    a real pooled engine still leaves ``/dev/shm`` spotless.
    """

    def test_columnar_spans_never_materialise_entries(self, world, candidates, pf):
        from repro.core.base import candidates_to_array
        from repro.core.object_table import ObjectTable
        from repro.core.pinocchio import Pinocchio
        from repro.core.pinocchio_vo import PinocchioVO
        from repro.core.result import Instrumentation

        cand_xy = candidates_to_array(candidates)
        table = ObjectTable(world, pf, 0.7)
        rebuilt = ObjectTable.from_columnar(table.to_columnar(), pf, 0.7)
        assert not rebuilt.entries_materialised
        assert rebuilt._radius_cache is None

        # "pin" span: full influence table on the rebuilt table.
        got_counters, want_counters = Instrumentation(), Instrumentation()
        got = Pinocchio().compute_influence(
            rebuilt, cand_xy, pf, 0.7, got_counters
        )
        want = Pinocchio().compute_influence(
            table, cand_xy, pf, 0.7, want_counters
        )
        np.testing.assert_array_equal(got, want)
        assert got_counters.pairs_validated == want_counters.pairs_validated

        # "vo_prune" span: minInf and verification sets.
        got_counters, want_counters = Instrumentation(), Instrumentation()
        got_inf, got_vs = PinocchioVO().pruning_phase(
            rebuilt, cand_xy, got_counters
        )
        want_inf, want_vs = PinocchioVO().pruning_phase(
            table, cand_xy, want_counters
        )
        np.testing.assert_array_equal(got_inf, want_inf)
        for g, w in zip(got_vs, want_vs):
            np.testing.assert_array_equal(g, w)

        # Neither span kind woke the per-object wrappers or the memo.
        assert not rebuilt.entries_materialised
        assert rebuilt._radius_cache is None

    def test_columnar_spans_keep_shm_clean(self, world, candidates, pf):
        with pooled_engine(world) as engine:
            for algorithm in ("PIN", "PIN-VO"):
                engine.query(
                    candidates, pf=pf, tau=0.7, algorithm=algorithm
                )
            assert pool_segments(), "queries must publish segments"
        assert pool_segments() == []
        assert_no_orphans()


class TestLifecycle:
    """Segments and workers are released on close() and at exit."""

    def test_close_unlinks_segments_and_joins_workers(
        self, world, candidates, pf
    ):
        engine = pooled_engine(world)
        engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
        assert pool_segments(), "a pooled query must publish a segment"
        engine.close()
        assert pool_segments() == []
        assert_no_orphans()
        # close() is idempotent, and a closed engine refuses queries
        # instead of silently serving them (see tests/test_overload.py
        # for the full lifecycle contract).
        engine.close()
        assert engine.closed
        with pytest.raises(RuntimeError, match="closed"):
            engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
        assert pool_segments() == []
        assert_no_orphans()

    def test_interpreter_exit_unlinks_segments(self, tmp_path):
        # An engine abandoned without close(): the pool's finalizer must
        # still unlink every /dev/shm segment when the process exits.
        script = textwrap.dedent(
            """
            import numpy as np
            from repro import QueryEngine
            from repro.engine import pool_segments
            from repro.model import Candidate, MovingObject
            from repro.prob import PowerLawPF

            rng = np.random.default_rng(3)
            objects = [
                MovingObject(i, rng.uniform(0, 20, size=(4, 2)))
                for i in range(10)
            ]
            candidates = [
                Candidate(j, float(x), float(y))
                for j, (x, y) in enumerate(rng.uniform(0, 20, size=(8, 2)))
            ]
            engine = QueryEngine(objects, workers=2, pool=True)
            engine.query(candidates, pf=PowerLawPF(), tau=0.7,
                         algorithm="PIN")
            assert pool_segments(), "segment should be live before exit"
            # exit WITHOUT engine.close()
            """
        )
        src = Path(__file__).resolve().parents[1] / "src"
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert pool_segments() == []
