"""Tests for the from-scratch R-tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import MBR
from repro.index import RTree


def brute_rect(xy, rect):
    return sorted(
        i for i, (x, y) in enumerate(xy) if rect.contains_point(x, y)
    )


def brute_circle(xy, cx, cy, r):
    return sorted(
        i
        for i, (x, y) in enumerate(xy)
        if (x - cx) ** 2 + (y - cy) ** 2 <= r * r
    )


@pytest.fixture(scope="module")
def point_cloud():
    rng = np.random.default_rng(42)
    return rng.uniform(0, 100, size=(400, 2))


@pytest.fixture(scope="module", params=["bulk", "incremental"])
def tree(request, point_cloud):
    if request.param == "bulk":
        return RTree.bulk_load(point_cloud)
    t = RTree()
    for i, (x, y) in enumerate(point_cloud):
        t.insert(i, float(x), float(y))
    return t


class TestConstruction:
    def test_len(self, tree, point_cloud):
        assert len(tree) == len(point_cloud)

    def test_invariants(self, tree):
        tree.check_invariants()

    def test_all_ids_complete(self, tree, point_cloud):
        assert sorted(tree.all_ids()) == list(range(len(point_cloud)))

    def test_bulk_load_empty(self):
        t = RTree.bulk_load(np.empty((0, 2)))
        assert len(t) == 0
        assert t.query_rect(MBR(0, 0, 1, 1)) == []

    def test_bulk_load_custom_ids(self):
        xy = np.array([[0.0, 0.0], [1.0, 1.0]])
        t = RTree.bulk_load(xy, ids=np.array([7, 9]))
        assert sorted(t.all_ids()) == [7, 9]

    def test_bulk_load_misaligned_ids_raise(self):
        with pytest.raises(ValueError):
            RTree.bulk_load(np.zeros((3, 2)), ids=np.array([1, 2]))

    def test_bulk_load_bad_shape_raises(self):
        with pytest.raises(ValueError):
            RTree.bulk_load(np.zeros((3, 3)))

    def test_insert_non_finite_raises(self):
        t = RTree()
        with pytest.raises(ValueError):
            t.insert(0, float("nan"), 1.0)
        with pytest.raises(ValueError):
            t.insert(0, 1.0, float("inf"))

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            RTree(max_entries=1)

    def test_height_grows(self):
        t = RTree(max_entries=4)
        for i in range(100):
            t.insert(i, float(i % 10), float(i // 10))
        assert t.height() >= 3
        t.check_invariants()


class TestQueries:
    def test_rect_query_matches_brute(self, tree, point_cloud):
        rng = np.random.default_rng(7)
        for _ in range(25):
            x1, x2 = sorted(rng.uniform(0, 100, 2))
            y1, y2 = sorted(rng.uniform(0, 100, 2))
            rect = MBR(x1, y1, x2, y2)
            assert sorted(tree.query_rect(rect)) == brute_rect(point_cloud, rect)

    def test_circle_query_matches_brute(self, tree, point_cloud):
        rng = np.random.default_rng(8)
        for _ in range(25):
            cx, cy = rng.uniform(0, 100, 2)
            r = rng.uniform(0, 40)
            assert sorted(tree.query_circle(cx, cy, r)) == brute_circle(
                point_cloud, cx, cy, r
            )

    def test_negative_radius_empty(self, tree):
        assert tree.query_circle(50, 50, -1.0) == []

    def test_zero_radius_hits_exact_point(self, point_cloud, tree):
        x, y = point_cloud[13]
        assert 13 in tree.query_circle(float(x), float(y), 0.0)

    def test_query_outside_extent(self, tree):
        assert tree.query_rect(MBR(200, 200, 300, 300)) == []

    def test_nearest_matches_brute(self, tree, point_cloud):
        rng = np.random.default_rng(9)
        for _ in range(25):
            qx, qy = rng.uniform(-20, 120, 2)
            nid, nd = tree.nearest(qx, qy)
            d = np.hypot(point_cloud[:, 0] - qx, point_cloud[:, 1] - qy)
            assert nd == pytest.approx(d.min())
            assert d[nid] == pytest.approx(d.min())

    def test_nearest_on_empty_raises(self):
        with pytest.raises(ValueError):
            RTree().nearest(0, 0)

    def test_stats_counters_increase(self, tree):
        tree.stats.reset()
        tree.query_rect(MBR(0, 0, 100, 100))
        assert tree.stats.node_accesses > 0
        assert tree.stats.leaf_accesses > 0


class TestDeletion:
    def test_delete_removes_entry(self):
        t = RTree(max_entries=4)
        pts = [(i, float(i), float(i % 3)) for i in range(30)]
        for i, x, y in pts:
            t.insert(i, x, y)
        t.delete(5, 5.0, 2.0)
        assert len(t) == 29
        assert 5 not in t.all_ids()
        t.check_invariants()

    def test_delete_unknown_raises(self):
        t = RTree()
        t.insert(0, 1.0, 1.0)
        with pytest.raises(KeyError):
            t.delete(0, 2.0, 2.0)  # right id, wrong coordinates
        with pytest.raises(KeyError):
            t.delete(9, 1.0, 1.0)

    def test_delete_all_then_reuse(self):
        rng = np.random.default_rng(3)
        xy = rng.uniform(0, 20, size=(50, 2))
        t = RTree(max_entries=4)
        for i, (x, y) in enumerate(xy):
            t.insert(i, float(x), float(y))
        for i, (x, y) in enumerate(xy):
            t.delete(i, float(x), float(y))
            t.check_invariants()
        assert len(t) == 0
        t.insert(99, 1.0, 1.0)
        assert t.nearest(0.0, 0.0)[0] == 99

    def test_queries_consistent_after_random_deletes(self):
        rng = np.random.default_rng(4)
        xy = rng.uniform(0, 50, size=(120, 2))
        t = RTree(max_entries=5)
        for i, (x, y) in enumerate(xy):
            t.insert(i, float(x), float(y))
        removed = set(rng.choice(120, size=60, replace=False).tolist())
        for i in removed:
            t.delete(i, float(xy[i, 0]), float(xy[i, 1]))
        t.check_invariants()
        rect = MBR(10, 10, 40, 40)
        expected = [i for i in brute_rect(xy, rect) if i not in removed]
        assert sorted(t.query_rect(rect)) == expected

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 500), max_entries=st.integers(2, 10))
    def test_delete_property(self, seed, max_entries):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 60))
        xy = rng.uniform(-20, 20, size=(n, 2))
        t = RTree(max_entries=max_entries)
        for i, (x, y) in enumerate(xy):
            t.insert(i, float(x), float(y))
        keep = set(range(n))
        for i in rng.permutation(n)[: n // 2]:
            t.delete(int(i), float(xy[i, 0]), float(xy[i, 1]))
            keep.discard(int(i))
        t.check_invariants()
        assert sorted(t.all_ids()) == sorted(keep)
        assert len(t) == len(keep)


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        count=st.integers(1, 120),
        max_entries=st.integers(2, 12),
    )
    def test_random_trees_consistent(self, seed, count, max_entries):
        rng = np.random.default_rng(seed)
        xy = rng.uniform(-50, 50, size=(count, 2))
        bulk = RTree.bulk_load(xy, max_entries=max_entries)
        incr = RTree(max_entries=max_entries)
        for i, (x, y) in enumerate(xy):
            incr.insert(i, float(x), float(y))
        bulk.check_invariants()
        incr.check_invariants()
        rect = MBR(-20, -20, 20, 20)
        expected = brute_rect(xy, rect)
        assert sorted(bulk.query_rect(rect)) == expected
        assert sorted(incr.query_rect(rect)) == expected

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_duplicate_points_supported(self, seed):
        rng = np.random.default_rng(seed)
        xy = np.repeat(rng.uniform(0, 10, size=(5, 2)), 8, axis=0)
        t = RTree.bulk_load(xy, max_entries=4)
        t.check_invariants()
        assert sorted(t.all_ids()) == list(range(40))
        hits = t.query_circle(*xy[0], 1e-9)
        assert len(hits) >= 8
