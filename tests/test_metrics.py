"""Tests for P@K / AP@K and ground-truth ranking."""

import numpy as np
import pytest

from repro.eval import average_precision_at_k, precision_at_k, relevant_top_k


class TestPrecisionAtK:
    def test_perfect(self):
        assert precision_at_k([1, 2, 3], [1, 2, 3], 3) == 1.0

    def test_zero(self):
        assert precision_at_k([4, 5, 6], [1, 2, 3], 3) == 0.0

    def test_partial(self):
        assert precision_at_k([1, 9, 2, 8], [1, 2, 3, 4], 4) == 0.5

    def test_only_first_k_counted(self):
        assert precision_at_k([9, 9, 1], [1], 2) == 0.0

    def test_short_recommendation_list(self):
        # Fewer recommendations than k: missing slots are misses.
        assert precision_at_k([1], [1, 2], 2) == 0.5

    def test_k_validation(self):
        with pytest.raises(ValueError):
            precision_at_k([1], [1], 0)

    def test_order_within_topk_irrelevant(self):
        a = precision_at_k([1, 2, 9], [1, 2], 3)
        b = precision_at_k([2, 9, 1], [1, 2], 3)
        assert a == b


class TestAveragePrecisionAtK:
    def test_perfect(self):
        # hits at every rank: (1/1 + 2/2 + 3/3) / 3 = 1
        assert average_precision_at_k([1, 2, 3], [1, 2, 3], 3) == 1.0

    def test_zero(self):
        assert average_precision_at_k([7, 8], [1], 2) == 0.0

    def test_rank_sensitivity(self):
        # Earlier hits score higher.
        early = average_precision_at_k([1, 9, 8], [1], 3)
        late = average_precision_at_k([9, 8, 1], [1], 3)
        assert early > late

    def test_hand_computed(self):
        # recommended [1, 9, 2], relevant {1, 2}, k = 3:
        # hits at ranks 1 (P=1/1) and 3 (P=2/3) => (1 + 2/3) / 3
        expected = (1.0 + 2.0 / 3.0) / 3.0
        assert average_precision_at_k([1, 9, 2], [1, 2], 3) == pytest.approx(expected)

    def test_leq_precision(self):
        # AP@K normalised by k is never above P@K.
        rec, rel = [1, 9, 2, 8, 3], [1, 2, 3]
        for k in (1, 2, 3, 4, 5):
            assert average_precision_at_k(rec, rel, k) <= precision_at_k(
                rec, rel, k
            ) + 1e-12

    def test_k_validation(self):
        with pytest.raises(ValueError):
            average_precision_at_k([1], [1], -1)


class TestRelevantTopK:
    def test_ranks_by_checkins(self):
        checkins = np.array([5, 100, 20, 7])
        venue_idx = np.array([0, 1, 2, 3])  # candidate i -> venue i
        assert relevant_top_k(checkins, venue_idx, 2) == [1, 2]

    def test_indirection(self):
        checkins = np.array([5, 100, 20])
        venue_idx = np.array([2, 0])  # candidate 0 -> venue 2 (20 visits)
        assert relevant_top_k(checkins, venue_idx, 1) == [0]

    def test_ties_break_by_candidate_position(self):
        checkins = np.array([10, 10, 10])
        venue_idx = np.array([0, 1, 2])
        assert relevant_top_k(checkins, venue_idx, 3) == [0, 1, 2]

    def test_k_validation(self):
        with pytest.raises(ValueError):
            relevant_top_k(np.array([1]), np.array([0]), 0)
