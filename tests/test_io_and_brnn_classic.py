"""Tests for raw check-in log I/O and the classic BRNN substrate."""

import numpy as np
import pytest

from repro.baselines.brnn_classic import (
    influence_sets,
    max_influence_location,
    nearest_candidate_assignment,
    nearest_candidate_assignment_rtree,
)
from repro.index import RTree
from repro.model.io import read_checkin_log, write_checkin_log


class TestCheckinLogIO:
    def _write_sample(self, tmp_path):
        rows = [
            ("alice", "2010-07-24T13:45", 1.350, 103.80, "v1"),
            ("alice", "2010-07-25T09:00", 1.352, 103.81, "v2"),
            ("alice", "2010-07-26T18:30", 1.351, 103.80, "v1"),
            ("bob", "2010-07-24T10:00", 1.300, 103.90, "v3"),
            ("bob", "2010-07-27T20:00", 1.301, 103.91, "v3"),
            ("carol", "2010-07-28T11:00", 1.320, 103.85, "v2"),
        ]
        path = tmp_path / "checkins.csv"
        write_checkin_log(path, rows)
        return path

    def test_round_trip_structure(self, tmp_path):
        path = self._write_sample(tmp_path)
        ds = read_checkin_log(path)
        assert ds.n_objects == 3
        assert ds.n_venues == 3
        # v1 has 2 check-ins, v2 has 2, v3 has 2.
        assert sorted(ds.venue_checkins.tolist()) == [2, 2, 2]
        assert sum(o.n_positions for o in ds.objects) == 6

    def test_min_checkins_filter(self, tmp_path):
        path = self._write_sample(tmp_path)
        ds = read_checkin_log(path, min_checkins_per_user=2)
        assert ds.n_objects == 2  # carol dropped

    def test_projection_produces_city_scale_km(self, tmp_path):
        path = self._write_sample(tmp_path)
        ds = read_checkin_log(path)
        all_xy = np.concatenate([o.positions for o in ds.objects])
        # Points span ~0.11 degrees of longitude ≈ 12 km.
        assert np.all(np.abs(all_xy) < 50.0)
        assert np.ptp(all_xy[:, 0]) > 5.0

    def test_missing_columns_raise(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("user_id,latitude\na,1.0\n")
        with pytest.raises(ValueError, match="missing"):
            read_checkin_log(path)

    def test_empty_log_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_checkin_log(path, [])
        with pytest.raises(ValueError, match="no check-ins"):
            read_checkin_log(path)

    def test_all_users_filtered_raises(self, tmp_path):
        path = self._write_sample(tmp_path)
        with pytest.raises(ValueError, match="no user"):
            read_checkin_log(path, min_checkins_per_user=10)

    def test_dataset_usable_by_solver(self, tmp_path):
        from repro import select_location

        path = self._write_sample(tmp_path)
        ds = read_checkin_log(path)
        cands, _ = ds.sample_candidates(2, np.random.default_rng(0))
        result = select_location(ds.objects, cands, tau=0.5)
        assert 0 <= result.best_influence <= ds.n_objects


class TestClassicBRNN:
    def test_assignment_matches_brute(self, rng):
        points = rng.uniform(0, 50, size=(200, 2))
        cand_xy = rng.uniform(0, 50, size=(12, 2))
        got = nearest_candidate_assignment(points, cand_xy)
        dx = points[:, 0][:, None] - cand_xy[:, 0][None, :]
        dy = points[:, 1][:, None] - cand_xy[:, 1][None, :]
        expected = np.argmin(np.hypot(dx, dy), axis=1)
        np.testing.assert_array_equal(got, expected)

    def test_assignment_chunking_irrelevant(self, rng):
        points = rng.uniform(0, 10, size=(100, 2))
        cand_xy = rng.uniform(0, 10, size=(7, 2))
        a = nearest_candidate_assignment(points, cand_xy, chunk=8)
        b = nearest_candidate_assignment(points, cand_xy, chunk=4096)
        np.testing.assert_array_equal(a, b)

    def test_rtree_variant_agrees(self, rng):
        points = rng.uniform(0, 30, size=(150, 2))
        cand_xy = rng.uniform(0, 30, size=(10, 2))
        tree = RTree.bulk_load(cand_xy)
        scan = nearest_candidate_assignment(points, cand_xy)
        via_tree = nearest_candidate_assignment_rtree(points, tree)
        # Distances must agree even if tie indexes differ.
        for i in range(150):
            d_scan = np.hypot(*(points[i] - cand_xy[scan[i]]))
            d_tree = np.hypot(*(points[i] - cand_xy[via_tree[i]]))
            assert d_scan == pytest.approx(d_tree)

    def test_influence_sets_partition_points(self, rng):
        points = rng.uniform(0, 20, size=(80, 2))
        cand_xy = rng.uniform(0, 20, size=(6, 2))
        sets = influence_sets(points, cand_xy)
        assert set(sets) == set(range(6))
        all_points = np.concatenate([sets[j] for j in range(6)])
        assert sorted(all_points.tolist()) == list(range(80))

    def test_max_influence_location(self, rng):
        # One candidate sits in a dense cluster, the other far away.
        cluster = rng.normal([5, 5], 0.5, size=(50, 2))
        outliers = rng.normal([50, 50], 0.5, size=(3, 2))
        points = np.concatenate([cluster, outliers])
        cand_xy = np.array([[5.0, 5.0], [50.0, 50.0]])
        best, size = max_influence_location(points, cand_xy)
        assert best == 0
        assert size == 50

    def test_empty_candidates_raise(self, rng):
        with pytest.raises(ValueError):
            nearest_candidate_assignment(rng.uniform(0, 1, (5, 2)), np.empty((0, 2)))


class TestExportRawLog:
    def test_generator_to_raw_round_trip(self, tmp_path):
        from repro.datasets import tiny_demo
        from repro.model.io import export_raw_log, read_checkin_log

        ds = tiny_demo(seed=4).dataset
        path = export_raw_log(ds, tmp_path / "sample.csv")
        loaded = read_checkin_log(path)
        assert loaded.n_objects == ds.n_objects
        # Total check-ins preserved exactly.
        assert sum(o.n_positions for o in loaded.objects) == sum(
            o.n_positions for o in ds.objects
        )
        # Positions survive the lon/lat round trip to within metres
        # (after re-centering: both are projected around their own
        # origin, so compare pairwise distances instead of coordinates).
        import numpy as np

        a = ds.objects[0].positions
        b = loaded.objects[0].positions
        da = np.hypot(*(a[0] - a[-1]))
        db = np.hypot(*(b[0] - b[-1]))
        assert da == pytest.approx(db, abs=0.01)

    def test_exported_log_is_solvable(self, tmp_path):
        from repro import select_location
        from repro.datasets import tiny_demo
        from repro.model.io import export_raw_log, read_checkin_log

        ds = tiny_demo(seed=5).dataset
        loaded = read_checkin_log(export_raw_log(ds, tmp_path / "log.csv"))
        cands, _ = loaded.sample_candidates(15, np.random.default_rng(0))
        result = select_location(loaded.objects, cands, tau=0.7)
        assert 0 < result.best_influence <= loaded.n_objects
