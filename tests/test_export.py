"""Tests for CSV export of experiment results."""

import csv

import pytest

import repro.experiments as ex
from repro.experiments.export import export_result, result_rows


class TestResultRows:
    def test_pruning_effect_result(self):
        r = ex.run_pruning_effect("F", taus=(0.5, 0.7), n_candidates=50)
        header, rows = result_rows(r)
        assert "taus" in header
        assert "ia_fraction" in header
        assert len(rows) == 2
        # scalar field repeated per row
        assert "dataset" in header
        assert rows[0][header.index("dataset")] == rows[1][header.index("dataset")]

    def test_effect_tau_result(self):
        r = ex.run_effect_tau("F", taus=(0.3, 0.8), n_candidates=50)
        header, rows = result_rows(r)
        assert len(rows) == 2
        tau_col = header.index("taus")
        assert [row[tau_col] for row in rows] == [0.3, 0.8]

    def test_rejects_non_dataclass(self):
        with pytest.raises(TypeError):
            result_rows({"not": "a dataclass"})

    def test_rejects_result_without_series(self):
        import dataclasses

        @dataclasses.dataclass
        class Empty:
            name: str = "x"

        with pytest.raises(ValueError):
            result_rows(Empty())


class TestExportResult:
    def test_writes_readable_csv(self, tmp_path):
        r = ex.run_pruning_effect("F", taus=(0.5,), n_candidates=50)
        out = export_result(r, tmp_path / "fig10.csv")
        assert out.exists()
        with open(out, newline="") as f:
            rows = list(csv.DictReader(f))
        assert len(rows) == 1
        assert float(rows[0]["ia_fraction"]) >= 0.0

    def test_creates_parent_directories(self, tmp_path):
        r = ex.run_effect_tau("F", taus=(0.5,), n_candidates=40)
        out = export_result(r, tmp_path / "deep" / "nested" / "fig12.csv")
        assert out.exists()
