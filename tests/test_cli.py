"""Tests for the CLI."""

import pytest

from repro.cli import main


class TestCLI:
    def test_demo_rejects_csv(self, capsys):
        assert main(["demo", "--csv", "out.csv"]) == 2
        err = capsys.readouterr().err
        assert "--csv" in err and "demo" in err

    def test_report_rejects_csv(self, capsys):
        assert main(["report", "--csv", "out.csv"]) == 2
        assert "--csv" in capsys.readouterr().err

    def test_svg_rejected_outside_demo(self, capsys):
        assert main(["table2", "--svg", "out.svg"]) == 2
        assert "--svg" in capsys.readouterr().err

    def test_list_rejects_all_flags(self, capsys):
        assert main(["list", "--svg", "x", "--csv", "y"]) == 2
        err = capsys.readouterr().err
        assert "--csv" in err and "--svg" in err

    def test_serve_bench_rejects_svg(self, capsys):
        assert main(["serve-bench", "--svg", "out.svg"]) == 2
        assert "--svg" in capsys.readouterr().err

    def test_queries_flag_rejected_outside_serve_bench(self, capsys):
        assert main(["demo", "--queries", "3"]) == 2
        assert "--queries" in capsys.readouterr().err

    def test_deadline_flag_rejected_outside_serve_bench(self, capsys):
        assert main(["demo", "--deadline", "1.0"]) == 2
        assert "--deadline" in capsys.readouterr().err

    def test_inject_fault_rejected_outside_serve_bench(self, capsys):
        assert main(["table2", "--inject-fault", "crash:1"]) == 2
        assert "--inject-fault" in capsys.readouterr().err

    def test_serve_bench_rejects_bad_fault_spec(self, capsys):
        assert main(
            ["serve-bench", "--workers", "2", "--inject-fault", "bogus:1"]
        ) == 2
        assert "unknown fault kind" in capsys.readouterr().err

    def test_serve_bench_rejects_faults_without_workers(self, capsys):
        assert main(["serve-bench", "--inject-fault", "crash:1"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_serve_bench_rejects_non_positive_deadline(self, capsys):
        assert main(["serve-bench", "--deadline", "0"]) == 2
        assert "--deadline" in capsys.readouterr().err

    def test_serve_bench_rejects_non_positive_max_inflight(self, capsys):
        assert main(["serve-bench", "--max-inflight", "0"]) == 2
        assert "--max-inflight" in capsys.readouterr().err

    def test_serve_bench_rejects_unknown_shed_policy(self, capsys):
        assert main(
            ["serve-bench", "--max-inflight", "2",
             "--shed-policy", "bogus"]
        ) == 2
        err = capsys.readouterr().err
        assert "--shed-policy" in err and "by-priority" in err

    def test_shed_policy_requires_max_inflight(self, capsys):
        assert main(["serve-bench", "--shed-policy", "oldest"]) == 2
        assert "--max-inflight" in capsys.readouterr().err

    def test_serve_bench_rejects_non_positive_breaker(self, capsys):
        assert main(["serve-bench", "--breaker", "0"]) == 2
        assert "--breaker" in capsys.readouterr().err

    def test_max_inflight_rejected_outside_serve_bench(self, capsys):
        assert main(["demo", "--max-inflight", "2"]) == 2
        assert "--max-inflight" in capsys.readouterr().err

    def test_experiment_csv_export(self, capsys, tmp_path, monkeypatch):
        import dataclasses

        import repro.cli as cli

        @dataclasses.dataclass
        class FakeResult:
            taus: list = dataclasses.field(default_factory=lambda: [0.5, 0.7])
            runtime_ms: list = dataclasses.field(
                default_factory=lambda: [1.0, 2.0]
            )

            def render(self):
                return "fake table"

        monkeypatch.setattr(
            cli, "_registry", lambda: {"fake": ("fake", FakeResult)}
        )
        out = tmp_path / "fake.csv"
        assert main(["fake", "--csv", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "fake table" in stdout
        assert "CSV written" in stdout
        assert "taus" in out.read_text().splitlines()[0]

    def test_serve_bench_runs_and_exports(self, capsys, tmp_path):
        out = tmp_path / "serve.csv"
        assert main(
            ["serve-bench", "--queries", "1", "--workers", "0",
             "--csv", str(out)]
        ) == 0
        stdout = capsys.readouterr().out
        assert "serve-bench" in stdout
        assert "speedup" in stdout
        assert "engine caches" in stdout
        header = out.read_text().splitlines()[0]
        assert "cold_ms" in header and "warm_ms" in header
        assert "supervision" in stdout
        # the shed/degradation summary is printed even when admission
        # control is off, so dashboards always have the line to grep
        assert "overload: 0 queries shed" in stdout
        assert "final tier" in stdout

    def test_serve_bench_overload_summary_reports_sheds(self, capsys):
        # queries 0-2 are the unmeasured priming pass; the injected
        # overload faults hit measured queries 3 and 4, which the
        # admission controller (capacity saturated by phantom load)
        # then sheds
        assert main(
            ["serve-bench", "--queries", "4", "--workers", "0",
             "--max-inflight", "1",
             "--inject-fault", "overload:*:3",
             "--inject-fault", "overload:*:4"]
        ) == 0
        stdout = capsys.readouterr().out
        assert "overload: 2 queries shed" in stdout
        assert "(policy reject, max-inflight 1)" in stdout

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10-f" in out
        assert "precision" in out
        assert "sampling" in out

    def test_default_is_list(self, capsys):
        assert main([]) == 0
        assert "table2" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_remark(self, capsys):
        assert main(["remark"]) == 0
        assert "Remark" in capsys.readouterr().out

    def test_runs_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "user count" in out
