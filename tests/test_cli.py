"""Tests for the CLI."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10-f" in out
        assert "precision" in out
        assert "sampling" in out

    def test_default_is_list(self, capsys):
        assert main([]) == 0
        assert "table2" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_remark(self, capsys):
        assert main(["remark"]) == 0
        assert "Remark" in capsys.readouterr().out

    def test_runs_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "user count" in out
