"""Influence-sketch suite: the approximate tier's accuracy contract.

The claims under test, matching ``src/repro/core/sketch.py``:

* **error within bound** — over random fleets (including degenerate
  single-position MBRs) and random candidate sets, every estimate's
  measured error against the exact influence stays within the sketch's
  advertised per-query bound,
* **exactness** — whenever ``k >= |fleet|`` the sample is exhaustive:
  the estimates equal the exact influence counts and the advertised
  bound is 0,
* **determinism** — a fixed seed fixes the sample and every estimate
  (run-to-run and build-to-build), and different seeds draw different
  samples,
* **degenerate inputs** — an empty fleet sketches to population 0 with
  zero estimates and a zero bound; single-position objects (point
  MBRs) classify and validate like any other.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import select_location
from repro.core.object_table import ObjectTable
from repro.core.sketch import (
    DEFAULT_SKETCH_SEED,
    InfluenceSketch,
    _splitmix64,
)
from repro.prob import PowerLawPF

from .helpers import make_candidates, make_objects

TAU = 0.7


def exact_influences(objects, candidates, pf, tau=TAU) -> np.ndarray:
    """Ground truth via the exhaustive NA algorithm's full table."""
    result = select_location(
        objects, candidates, pf=pf, tau=tau, algorithm="NA"
    )
    return np.array(
        [result.influences[j] for j in range(len(candidates))]
    )


# ----------------------------------------------------------------------
# Accuracy: measured error <= advertised bound
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    n_objects=st.integers(1, 60),
    n_candidates=st.integers(1, 12),
    k=st.integers(1, 80),
)
def test_error_within_bound_random_fleets(seed, n_objects, n_candidates, k):
    rng = np.random.default_rng(seed)
    # n_range starting at 1 exercises single-position (point-MBR)
    # objects alongside full position clouds
    objects = make_objects(rng, n_objects, n_range=(1, 20))
    candidates = make_candidates(rng, n_candidates)
    pf = PowerLawPF()
    table = ObjectTable(objects, pf, TAU)
    sketch = InfluenceSketch.build(table, k=k)
    cand_xy = np.array([(c.x, c.y) for c in candidates])
    estimates = sketch.estimate_many(cand_xy)
    bound = sketch.error_bound(n_candidates)
    exact = exact_influences(objects, candidates, pf)
    assert np.all(np.abs(estimates - exact) <= bound + 1e-9)


def test_error_within_bound_real_sampling():
    """A fleet big enough that k < N forces genuine sampling."""
    rng = np.random.default_rng(42)
    objects = make_objects(rng, 500, n_range=(2, 12))
    candidates = make_candidates(rng, 30)
    pf = PowerLawPF()
    table = ObjectTable(objects, pf, TAU)
    sketch = InfluenceSketch.build(table, k=64)
    assert not sketch.exact
    cand_xy = np.array([(c.x, c.y) for c in candidates])
    estimates = sketch.estimate_many(cand_xy)
    bound = sketch.error_bound(len(candidates))
    assert 0.0 < bound < table.live_count
    exact = exact_influences(objects, candidates, pf)
    assert np.all(np.abs(estimates - exact) <= bound)


def test_single_candidate_estimate_matches_many():
    rng = np.random.default_rng(3)
    objects = make_objects(rng, 200, n_range=(2, 10))
    table = ObjectTable(objects, PowerLawPF(), TAU)
    sketch = InfluenceSketch.build(table, k=32)
    est = sketch.estimate(10.0, 12.0)
    many = sketch.estimate_many(np.array([[10.0, 12.0]]))
    assert est.estimate == pytest.approx(float(many[0]))
    assert est.bound == pytest.approx(sketch.error_bound(1))
    assert est.sample_size == sketch.k
    assert est.population == sketch.population
    assert not est.exact


# ----------------------------------------------------------------------
# Exactness when the sample is exhaustive
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    n_objects=st.integers(1, 40),
    n_candidates=st.integers(1, 10),
)
def test_exhaustive_sample_is_exact(seed, n_objects, n_candidates):
    rng = np.random.default_rng(seed)
    objects = make_objects(rng, n_objects, n_range=(1, 15))
    candidates = make_candidates(rng, n_candidates)
    pf = PowerLawPF()
    table = ObjectTable(objects, pf, TAU)
    sketch = InfluenceSketch.build(table, k=n_objects + 5)
    assert sketch.exact
    assert sketch.error_bound(n_candidates) == 0.0
    cand_xy = np.array([(c.x, c.y) for c in candidates])
    estimates = sketch.estimate_many(cand_xy)
    exact = exact_influences(objects, candidates, pf)
    assert np.array_equal(estimates, exact.astype(float))


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_fixed_seed_is_deterministic():
    rng = np.random.default_rng(9)
    objects = make_objects(rng, 300, n_range=(2, 10))
    table = ObjectTable(objects, PowerLawPF(), TAU)
    a = InfluenceSketch.build(table, k=48, seed=DEFAULT_SKETCH_SEED)
    b = InfluenceSketch.build(table, k=48, seed=DEFAULT_SKETCH_SEED)
    assert np.array_equal(a.sampled_ids, b.sampled_ids)
    cand_xy = np.array([(c.x, c.y) for c in make_candidates(rng, 20)])
    assert np.array_equal(a.estimate_many(cand_xy), b.estimate_many(cand_xy))


def test_different_seeds_draw_different_samples():
    rng = np.random.default_rng(10)
    objects = make_objects(rng, 400, n_range=(1, 6))
    table = ObjectTable(objects, PowerLawPF(), TAU)
    a = InfluenceSketch.build(table, k=32, seed=1)
    b = InfluenceSketch.build(table, k=32, seed=2)
    assert not np.array_equal(a.sampled_ids, b.sampled_ids)


def test_splitmix64_is_injective_on_ids():
    ids = np.arange(100_000, dtype=np.int64)
    hashes = _splitmix64(ids, DEFAULT_SKETCH_SEED)
    assert np.unique(hashes).size == ids.size


# ----------------------------------------------------------------------
# Degenerate inputs and validation
# ----------------------------------------------------------------------
def test_empty_fleet_sketches_to_zero():
    table = ObjectTable([], PowerLawPF(), TAU)
    sketch = InfluenceSketch.build(table, k=16)
    assert sketch.population == 0
    assert sketch.k == 0
    assert sketch.exact
    assert sketch.error_bound(7) == 0.0
    out = sketch.estimate_many(np.array([[0.0, 0.0], [5.0, 5.0]]))
    assert np.array_equal(out, np.zeros(2))


def test_bound_shrinks_with_k_and_grows_with_m():
    rng = np.random.default_rng(11)
    objects = make_objects(rng, 1_000, n_range=(1, 4))
    table = ObjectTable(objects, PowerLawPF(), TAU)
    small = InfluenceSketch.build(table, k=16)
    large = InfluenceSketch.build(table, k=256)
    assert large.error_bound(1) < small.error_bound(1)
    assert small.error_bound(100) > small.error_bound(1)
    # the bound is capped at the population — never vacuous-negative
    assert small.error_bound(10**6) <= table.live_count


def test_build_validates_knobs():
    table = ObjectTable([], PowerLawPF(), TAU)
    with pytest.raises(ValueError):
        InfluenceSketch.build(table, k=0)
    with pytest.raises(ValueError):
        InfluenceSketch.build(table, delta=0.0)
    with pytest.raises(ValueError):
        InfluenceSketch.build(table, delta=1.0)
    sketch = InfluenceSketch.build(table)
    with pytest.raises(ValueError):
        sketch.error_bound(0)


def test_nbytes_prices_the_arrays():
    rng = np.random.default_rng(12)
    objects = make_objects(rng, 100, n_range=(2, 8))
    table = ObjectTable(objects, PowerLawPF(), TAU)
    sketch = InfluenceSketch.build(table, k=32)
    expected = (
        sketch.positions.nbytes + sketch.offsets.nbytes
        + sketch.mbrs.nbytes + sketch.radii.nbytes
        + sketch.sampled_ids.nbytes
    )
    assert sketch.nbytes == expected > 0
