"""Tests for the exact MaxRS substrate (Choi et al. [18])."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.maxrs import (
    _MaxAddSegmentTree,
    max_rs,
    max_rs_brute,
    max_rs_over_objects,
)

from tests.helpers import make_objects


class TestSegmentTree:
    def test_single_slot(self):
        tree = _MaxAddSegmentTree(1)
        tree.add(0, 0, 2.5)
        assert tree.global_max == 2.5
        assert tree.argmax_slot() == 0

    def test_range_adds_stack(self):
        tree = _MaxAddSegmentTree(8)
        tree.add(0, 7, 1.0)
        tree.add(2, 5, 1.0)
        tree.add(4, 4, 3.0)
        assert tree.global_max == 5.0
        assert tree.argmax_slot() == 4

    def test_negative_adds(self):
        tree = _MaxAddSegmentTree(4)
        tree.add(0, 3, 2.0)
        tree.add(1, 2, -2.0)
        assert tree.global_max == 2.0
        assert tree.argmax_slot() in (0, 3)

    def test_matches_array_simulation(self):
        rng = np.random.default_rng(0)
        k = 37
        tree = _MaxAddSegmentTree(k)
        array = np.zeros(k)
        for _ in range(200):
            lo, hi = sorted(rng.integers(0, k, 2))
            value = float(rng.normal())
            tree.add(int(lo), int(hi), value)
            array[lo : hi + 1] += value
            assert tree.global_max == pytest.approx(array.max())
            slot = tree.argmax_slot()
            if slot < k:
                assert array[slot] == pytest.approx(array.max())

    def test_validation(self):
        with pytest.raises(ValueError):
            _MaxAddSegmentTree(0)


class TestMaxRS:
    def test_single_point(self):
        result = max_rs(np.array([[3.0, 4.0]]), 1.0, 1.0)
        assert result.weight == 1.0

    def test_two_clusters(self):
        cluster_a = np.array([[0.0, 0.0], [0.1, 0.1], [0.2, 0.0]])
        cluster_b = np.array([[10.0, 10.0], [10.1, 10.0]])
        result = max_rs(np.concatenate([cluster_a, cluster_b]), 1.0, 1.0)
        assert result.weight == 3.0
        # Best centre covers cluster A.
        assert abs(result.x) < 1.0 and abs(result.y) < 1.0

    def test_weighted(self):
        points = np.array([[0.0, 0.0], [5.0, 5.0]])
        result = max_rs(points, 1.0, 1.0, weights=[1.0, 10.0])
        assert result.weight == 10.0

    def test_matches_brute_force(self):
        rng = np.random.default_rng(4)
        for trial in range(8):
            n = int(rng.integers(3, 25))
            points = rng.uniform(0, 10, size=(n, 2))
            w = rng.uniform(0.1, 2.0, n)
            width = float(rng.uniform(0.5, 4.0))
            height = float(rng.uniform(0.5, 4.0))
            fast = max_rs(points, width, height, weights=w)
            brute = max_rs_brute(points, width, height, weights=w)
            assert fast.weight == pytest.approx(brute), trial

    def test_returned_centre_achieves_weight(self):
        rng = np.random.default_rng(9)
        points = rng.uniform(0, 8, size=(40, 2))
        width, height = 2.0, 1.5
        result = max_rs(points, width, height)
        inside = (
            (np.abs(points[:, 0] - result.x) <= width / 2 + 1e-9)
            & (np.abs(points[:, 1] - result.y) <= height / 2 + 1e-9)
        )
        assert int(inside.sum()) == int(result.weight)

    def test_validation(self):
        with pytest.raises(ValueError):
            max_rs(np.empty((0, 2)), 1.0, 1.0)
        with pytest.raises(ValueError):
            max_rs(np.zeros((2, 2)), 0.0, 1.0)
        with pytest.raises(ValueError):
            max_rs(np.zeros((2, 2)), 1.0, 1.0, weights=[1.0])
        with pytest.raises(ValueError):
            max_rs(np.zeros((2, 2)), 1.0, 1.0, weights=[1.0, -1.0])

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2_000),
        n=st.integers(1, 18),
        width=st.floats(0.2, 5.0),
        height=st.floats(0.2, 5.0),
    )
    def test_sweep_equals_brute_property(self, seed, n, width, height):
        rng = np.random.default_rng(seed)
        points = rng.uniform(0, 10, size=(n, 2))
        fast = max_rs(points, width, height)
        brute = max_rs_brute(points, width, height)
        assert fast.weight == pytest.approx(brute)


class TestMaxRSOverObjects:
    def test_normalised_weights_cap_object_contribution(self, rng):
        objects = make_objects(rng, 5, extent=4.0, n_range=(10, 20), spread=0.5)
        result = max_rs_over_objects(objects, 50.0, 50.0)
        # A rectangle covering everything weighs exactly #objects.
        assert result.weight == pytest.approx(len(objects))

    def test_unnormalised_counts_positions(self, rng):
        objects = make_objects(rng, 3, extent=4.0, n_range=(5, 5), spread=0.5)
        result = max_rs_over_objects(
            objects, 50.0, 50.0, per_object_normalised=False
        )
        assert result.weight == pytest.approx(15.0)
