"""Tests for PINOCCHIO-VO (Algorithm 3) and PIN-VO*."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.naive import NaiveAlgorithm
from repro.core.pinocchio_vo import PinocchioVO, PinocchioVOStar
from repro.prob import PowerLawPF

from tests.helpers import make_candidates, make_objects


class TestExactness:
    @pytest.mark.parametrize("cls", [PinocchioVO, PinocchioVOStar])
    @pytest.mark.parametrize("kernel", ["vector", "scalar"])
    @pytest.mark.parametrize("tau", [0.3, 0.7])
    def test_best_influence_matches_naive(self, pf, rng, cls, kernel, tau):
        objects = make_objects(rng, 20, n_range=(1, 30))
        candidates = make_candidates(rng, 25)
        na = NaiveAlgorithm().select(objects, candidates, pf, tau)
        vo = cls(kernel=kernel).select(objects, candidates, pf, tau)
        assert vo.best_influence == na.best_influence

    def test_winner_influence_is_exact(self, pf, rng):
        objects = make_objects(rng, 25)
        candidates = make_candidates(rng, 20)
        na = NaiveAlgorithm().select(objects, candidates, pf, 0.6)
        vo = PinocchioVO().select(objects, candidates, pf, 0.6)
        best_idx = next(
            j for j, c in enumerate(candidates) if c is vo.best_candidate
        )
        assert na.influences[best_idx] == vo.best_influence

    def test_fully_validated_influences_are_exact(self, pf, rng):
        objects = make_objects(rng, 20)
        candidates = make_candidates(rng, 15)
        na = NaiveAlgorithm().select(objects, candidates, pf, 0.7)
        vo = PinocchioVO().select(objects, candidates, pf, 0.7)
        for j, influence in vo.influences.items():
            assert influence == na.influences[j]

    def test_rtree_variant(self, pf, rng):
        objects = make_objects(rng, 15)
        candidates = make_candidates(rng, 15)
        na = NaiveAlgorithm().select(objects, candidates, pf, 0.5)
        vo = PinocchioVO(use_rtree=True).select(objects, candidates, pf, 0.5)
        assert vo.best_influence == na.best_influence

    def test_fail_fast_scalar(self, pf, rng):
        objects = make_objects(rng, 15)
        candidates = make_candidates(rng, 15)
        na = NaiveAlgorithm().select(objects, candidates, pf, 0.6)
        vo = PinocchioVO(kernel="scalar", fail_fast=True).select(
            objects, candidates, pf, 0.6
        )
        assert vo.best_influence == na.best_influence

    def test_fail_fast_requires_scalar(self):
        with pytest.raises(ValueError):
            PinocchioVO(fail_fast=True)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 3_000),
        tau=st.floats(0.05, 0.95),
        r=st.integers(1, 18),
        m=st.integers(1, 18),
    )
    def test_random_instances_property(self, seed, tau, r, m):
        pf = PowerLawPF()
        rng = np.random.default_rng(seed)
        objects = make_objects(rng, r, extent=25.0, n_range=(1, 25))
        candidates = make_candidates(rng, m, extent=25.0)
        na = NaiveAlgorithm().select(objects, candidates, pf, tau)
        vo = PinocchioVO().select(objects, candidates, pf, tau)
        star = PinocchioVOStar().select(objects, candidates, pf, tau)
        assert vo.best_influence == na.best_influence
        assert star.best_influence == na.best_influence


class TestStrategies:
    def test_strategy1_skips_candidates(self, pf, rng):
        # Plenty of clearly inferior candidates: Strategy 1 must skip some.
        objects = make_objects(rng, 40, extent=20.0, spread=2.0)
        near = make_candidates(rng, 5, extent=20.0)
        far = [
            type(near[0])(100 + j, 1000.0 + j, 1000.0) for j in range(30)
        ]
        vo = PinocchioVO().select(objects, near + far, pf, 0.7)
        assert vo.instrumentation.candidates_skipped_strategy1 > 0

    def test_strategy2_saves_positions(self, pf, rng):
        objects = make_objects(rng, 30, extent=15.0, n_range=(40, 80), spread=2.0)
        candidates = make_candidates(rng, 20, extent=15.0)
        vo = PinocchioVO().select(objects, candidates, pf, 0.4)
        inst = vo.instrumentation
        if inst.positions_total:
            assert inst.positions_evaluated <= inst.positions_total

    def test_vo_validates_fewer_pairs_than_star(self, pf, rng):
        objects = make_objects(rng, 30)
        candidates = make_candidates(rng, 25)
        vo = PinocchioVO().select(objects, candidates, pf, 0.7)
        star = PinocchioVOStar().select(objects, candidates, pf, 0.7)
        assert (
            vo.instrumentation.pairs_validated
            <= star.instrumentation.pairs_validated
        )

    def test_star_has_no_pruning(self, pf, rng):
        objects = make_objects(rng, 10)
        candidates = make_candidates(rng, 10)
        star = PinocchioVOStar().select(objects, candidates, pf, 0.7)
        assert star.instrumentation.pairs_pruned_ia == 0
        assert star.instrumentation.pairs_pruned_nib == 0

    def test_heap_pops_bounded(self, pf, rng):
        objects = make_objects(rng, 15)
        candidates = make_candidates(rng, 20)
        vo = PinocchioVO().select(objects, candidates, pf, 0.6)
        assert vo.instrumentation.heap_pops <= len(candidates)

    def test_unknown_kernel_raises(self):
        with pytest.raises(ValueError):
            PinocchioVO(kernel="fpga")


class TestEdgeCases:
    def test_single_object_single_candidate(self, pf, rng):
        objects = make_objects(rng, 1, n_range=(3, 3))
        candidates = make_candidates(rng, 1)
        vo = PinocchioVO().select(objects, candidates, pf, 0.5)
        na = NaiveAlgorithm().select(objects, candidates, pf, 0.5)
        assert vo.best_influence == na.best_influence

    def test_zero_influence_everywhere(self, pf, rng):
        # Candidates so far away that no object is influenced.
        objects = make_objects(rng, 5, extent=5.0, n_range=(1, 3))
        candidates = [
            type(make_candidates(rng, 1)[0])(j, 1e6, 1e6) for j in range(4)
        ]
        vo = PinocchioVO().select(objects, candidates, pf, 0.9)
        assert vo.best_influence == 0

    def test_all_candidates_certain(self, pf, rng):
        # Tiny extent, low tau: everything in everyone's IA region.
        objects = make_objects(rng, 8, extent=1.0, spread=0.1, n_range=(10, 20))
        candidates = make_candidates(rng, 5, extent=1.0)
        vo = PinocchioVO().select(objects, candidates, pf, 0.1)
        assert vo.best_influence == 8
