"""Tests for top-k PRIME-LS."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.naive import NaiveAlgorithm
from repro.core.topk import TopKPrimeLS, top_k_locations
from repro.prob import PowerLawPF

from tests.helpers import make_candidates, make_objects


def reference_topk(objects, candidates, pf, tau, k):
    na = NaiveAlgorithm().select(objects, candidates, pf, tau)
    return na.ranking()[:k]


class TestTopK:
    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_matches_naive_ranking_values(self, pf, rng, k):
        objects = make_objects(rng, 25)
        candidates = make_candidates(rng, 20)
        solver = TopKPrimeLS(k=k)
        result = solver.select(objects, candidates, pf, 0.6)
        got = solver.top_k_of(result)
        expected = reference_topk(objects, candidates, pf, 0.6, k)
        # Influence values must match exactly; indexes may differ only
        # between tied candidates.
        assert [v for _, v in got] == [v for _, v in expected]

    def test_duplicate_lower_bounds_do_not_inflate_threshold(self, pf):
        # Regression: the Strategy-1 stop threshold used to be the k-th
        # best of a stream of offered values, where one candidate's
        # lower bound could be counted twice (seeding + validation),
        # inflating the threshold and dropping a true top-k member.
        rng = np.random.default_rng(1024)
        objects = make_objects(rng, 12, extent=25.0, n_range=(1, 20))
        candidates = make_candidates(rng, 10, extent=25.0)
        k, tau = 4, 0.375
        solver = TopKPrimeLS(k=k)
        result = solver.select(objects, candidates, pf, tau)
        got = [v for _, v in solver.top_k_of(result)]
        expected = [
            v for _, v in reference_topk(objects, candidates, pf, tau, k)
        ]
        assert got == expected

    def test_k1_equals_pinvo(self, pf, rng):
        from repro.core.pinocchio_vo import PinocchioVO

        objects = make_objects(rng, 20)
        candidates = make_candidates(rng, 15)
        top1 = TopKPrimeLS(k=1).select(objects, candidates, pf, 0.7)
        vo = PinocchioVO().select(objects, candidates, pf, 0.7)
        assert top1.best_influence == vo.best_influence

    def test_k_larger_than_m_returns_all(self, pf, rng):
        objects = make_objects(rng, 10)
        candidates = make_candidates(rng, 5)
        solver = TopKPrimeLS(k=50)
        result = solver.select(objects, candidates, pf, 0.5)
        assert len(result.influences) == 5
        na = NaiveAlgorithm().select(objects, candidates, pf, 0.5)
        assert result.influences == na.influences

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TopKPrimeLS(k=0)

    def test_convenience_wrapper(self, pf, rng):
        objects = make_objects(rng, 15)
        candidates = make_candidates(rng, 12)
        top3 = top_k_locations(objects, candidates, pf, 0.6, k=3)
        assert len(top3) == 3
        values = [v for _, v in top3]
        assert values == sorted(values, reverse=True)

    def test_skips_candidates_when_k_small(self, pf, rng):
        # With many clearly inferior candidates, top-k must not
        # validate everything.
        objects = make_objects(rng, 40, extent=20.0, spread=2.0)
        near = make_candidates(rng, 5, extent=20.0)
        far = [type(near[0])(100 + j, 900.0 + j, 900.0) for j in range(40)]
        result = TopKPrimeLS(k=2).select(objects, near + far, pf, 0.7)
        assert result.instrumentation.candidates_skipped_strategy1 > 0

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2_000),
        k=st.integers(1, 8),
        tau=st.floats(0.1, 0.9),
    )
    def test_random_instances_property(self, seed, k, tau):
        pf = PowerLawPF()
        rng = np.random.default_rng(seed)
        objects = make_objects(rng, 12, extent=25.0, n_range=(1, 20))
        candidates = make_candidates(rng, 10, extent=25.0)
        solver = TopKPrimeLS(k=k)
        result = solver.select(objects, candidates, pf, tau)
        got = [v for _, v in solver.top_k_of(result)]
        expected = [
            v for _, v in reference_topk(objects, candidates, pf, tau, k)
        ]
        assert got == expected
