"""Observability suite: span trees, metrics exposition, and the
trace-summary reader.

The contract under test is ``docs/observability.md``:

* every admitted query produces one span tree (``admission`` → ``plan``
  → ``prune``/``dispatch``/``validate``/``merge``) whose ``trace_id``
  is stamped into the matching JSONL record (schema v2),
* worker-side child spans travel back over the existing fork pipes and
  pool reply queues and appear under the parent's dispatch/prune span,
* ``QueryEngine.metrics_text()`` renders valid Prometheus text
  exposition, and :class:`~repro.engine.MetricsServer` serves the same
  page over HTTP,
* tracing disabled hands out the no-op span singleton (no per-query
  allocation), and tracing *enabled* never changes a query's answer —
  spans observe, they do not steer.
"""

from __future__ import annotations

import json
import re
import time
import urllib.error
import urllib.request

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import QueryEngine, select_location
from repro.cli import main
from repro.engine import (
    NOOP_SPAN,
    FaultInjector,
    FaultSpec,
    MetricsRegistry,
    MetricsServer,
    QueryRequest,
    SupervisorPolicy,
    TraceReadError,
    Tracer,
    phase_seconds,
    read_trace_file,
    summarize_traces,
    worker_spans,
)
from repro.engine.parallel import fork_available
from repro.engine.trace import record_span
from repro.prob import PowerLawPF

from .helpers import make_candidates, make_objects
from .test_engine import assert_same_result

#: one Prometheus text-exposition line: a HELP/TYPE comment or a
#: ``name{labels} value`` sample
_EXPOSITION_LINE = re.compile(
    r"^(?:"
    r"# (?:HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" (?:[+-]?(?:[0-9]*\.)?[0-9]+(?:e[+-]?[0-9]+)?|\+Inf|-Inf|NaN)"
    r")$"
)


def assert_valid_exposition(text: str) -> None:
    """Every non-empty line must match the exposition grammar."""
    assert text.endswith("\n")
    for line in text.splitlines():
        if line:
            assert _EXPOSITION_LINE.match(line), f"bad line: {line!r}"


def span_names(trace: dict) -> list[str]:
    """Names of the root's direct children, in order."""
    return [child["name"] for child in trace.get("children", [])]


def find_span(trace: dict, name: str) -> dict:
    for child in trace.get("children", []):
        if child["name"] == name:
            return child
    raise AssertionError(f"no {name!r} span in {span_names(trace)}")


@pytest.fixture(scope="module")
def world():
    rng = np.random.default_rng(7)
    return make_objects(rng, 25, n_range=(1, 10))


@pytest.fixture(scope="module")
def candidates():
    return make_candidates(np.random.default_rng(8), 12)


# ---------------------------------------------------------------------
# metrics primitives
# ---------------------------------------------------------------------
class TestMetricsPrimitives:
    def test_counter_increments_and_renders(self):
        reg = MetricsRegistry()
        c = reg.counter("t_total", "help", labels=("algo",))
        c.inc(algo="PIN")
        c.inc(2, algo="PIN")
        c.inc(algo="NA")
        assert c.value(algo="PIN") == 3
        assert c.value(algo="NA") == 1
        lines = c.render()
        assert 't_total{algo="NA"} 1' in lines
        assert 't_total{algo="PIN"} 3' in lines

    def test_counter_rejects_decrease(self):
        c = MetricsRegistry().counter("t_total", "help")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_counter_callback_mirrors_source(self):
        source = {"n": 5}
        c = MetricsRegistry().counter("t_total", "help")
        c.set_function(lambda: source["n"])
        assert c.value() == 5
        source["n"] = 9
        assert c.value() == 9
        assert c.render() == ["t_total 9"]

    def test_gauge_set_inc_dec(self):
        g = MetricsRegistry().gauge("t_depth", "help")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value() == 3

    def test_label_mismatch_rejected(self):
        c = MetricsRegistry().counter("t_total", "help", labels=("a",))
        with pytest.raises(ValueError):
            c.inc(b=1)
        with pytest.raises(ValueError):
            c.inc()

    def test_bad_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad-name", "help")
        with pytest.raises(ValueError):
            reg.counter("ok_name", "help", labels=("bad-label",))

    def test_duplicate_registration_rejected(self):
        reg = MetricsRegistry()
        reg.counter("t_total", "help")
        with pytest.raises(ValueError):
            reg.gauge("t_total", "help")

    def test_label_values_escaped(self):
        c = MetricsRegistry().counter("t_total", "help", labels=("p",))
        c.inc(p='a"b\\c\nd')
        (line,) = c.render()
        assert line == 't_total{p="a\\"b\\\\c\\nd"} 1'

    def test_histogram_buckets_are_cumulative(self):
        h = MetricsRegistry().histogram(
            "t_seconds", "help", buckets=(0.1, 1.0)
        )
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        lines = h.render()
        assert 't_seconds_bucket{le="0.1"} 1' in lines
        assert 't_seconds_bucket{le="1"} 2' in lines
        assert 't_seconds_bucket{le="+Inf"} 3' in lines
        assert "t_seconds_count 3" in lines
        assert h.count() == 3
        # +Inf must come after the finite buckets
        assert lines.index('t_seconds_bucket{le="+Inf"} 3') > lines.index(
            't_seconds_bucket{le="1"} 2'
        )

    def test_registry_page_is_valid_exposition(self):
        reg = MetricsRegistry()
        c = reg.counter("t_total", "help text", labels=("algo",))
        c.inc(algo="PIN-VO")
        g = reg.gauge("t_depth", "queue depth")
        g.set(2)
        h = reg.histogram("t_seconds", "latency")
        h.observe(0.02)
        page = reg.render()
        assert_valid_exposition(page)
        assert "# TYPE t_total counter" in page
        assert "# TYPE t_depth gauge" in page
        assert "# TYPE t_seconds histogram" in page

    def test_series_less_metric_renders_nothing(self):
        reg = MetricsRegistry()
        reg.counter("t_total", "help")
        assert "t_total" not in reg.render()


# ---------------------------------------------------------------------
# trace primitives
# ---------------------------------------------------------------------
class TestTracePrimitives:
    def test_span_tree_shape(self):
        tracer = Tracer(enabled=True)
        root = tracer.start("query", algorithm="PIN")
        with root.child("plan", tier="serial"):
            pass
        child = root.child("dispatch", mode="serial")
        child.attach(record_span("shard:na", time.time(),
                                 time.perf_counter(), lo=0, hi=4))
        child.finish()
        tracer.export(root)
        (trace,) = tracer.traces
        assert trace["name"] == "query"
        assert trace["trace_id"]
        assert span_names(trace) == ["plan", "dispatch"]
        shard = find_span(trace, "dispatch")["children"][0]
        assert shard["name"] == "shard:na"
        assert shard["attrs"]["lo"] == 0

    def test_context_manager_records_errors(self):
        tracer = Tracer(enabled=True)
        root = tracer.start("query")
        with pytest.raises(RuntimeError):
            with root.child("validate"):
                raise RuntimeError("boom")
        tracer.export(root)
        child = find_span(tracer.traces[0], "validate")
        assert "RuntimeError" in child["attrs"]["error"]

    def test_disabled_tracer_hands_out_the_noop_singleton(self):
        tracer = Tracer()
        span = tracer.start("query")
        assert span is NOOP_SPAN
        assert span.child("plan") is NOOP_SPAN
        span.finish()  # all no-ops, nothing raised
        tracer.export(span)
        assert tracer.traces == [] and tracer.exported == 0

    def test_noop_span_costs_nearly_nothing(self):
        span = NOOP_SPAN
        started = time.perf_counter()
        for _ in range(100_000):
            child = span.child("plan", tier="serial")
            child.set(x=1)
            child.finish()
        elapsed = time.perf_counter() - started
        # ~3 attr-free method calls per iteration; generous bound so
        # slow CI never flakes, but a real Span allocation would blow it
        assert elapsed < 2.0

    def test_trace_file_roundtrip(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        tracer = Tracer(path)
        assert tracer.enabled
        for q in range(3):
            root = tracer.start("query", algorithm="NA")
            with root.child("plan"):
                pass
            root.set(query=q)
            tracer.export(root)
        traces = read_trace_file(path)
        assert [t["attrs"]["query"] for t in traces] == [0, 1, 2]
        assert len({t["trace_id"] for t in traces}) == 3

    def test_read_errors(self, tmp_path):
        with pytest.raises(TraceReadError):
            read_trace_file(tmp_path / "missing.jsonl")
        with pytest.raises(TraceReadError):
            read_trace_file(tmp_path)  # a directory, not a file
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n")
        with pytest.raises(TraceReadError) as excinfo:
            read_trace_file(bad)
        assert ":1:" in str(excinfo.value)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(TraceReadError):
            read_trace_file(empty)
        scalar = tmp_path / "scalar.jsonl"
        scalar.write_text("42\n")
        with pytest.raises(TraceReadError):
            read_trace_file(scalar)

    def test_phase_seconds_and_summary(self):
        tracer = Tracer(enabled=True)
        root = tracer.start("query", algorithm="PIN-VO")
        with root.child("prune"):
            time.sleep(0.01)
        with root.child("validate"):
            pass
        tracer.export(root)
        phases = phase_seconds(tracer.traces[0])
        assert phases["prune"] >= 0.01
        assert set(phases) == {"prune", "validate"}
        assert worker_spans(tracer.traces[0]) == []
        text = summarize_traces(tracer.traces)
        assert "prune ms" in text and "PIN-VO" in text


# ---------------------------------------------------------------------
# engine integration: span trees per tier, trace_id correlation
# ---------------------------------------------------------------------
class TestEngineTracing:
    def run_engine(self, world, candidates, tmp_path, **kwargs):
        path = tmp_path / "traces.jsonl"
        engine = QueryEngine(
            world, metrics_path=tmp_path / "metrics.jsonl",
            trace_path=path, **kwargs,
        )
        try:
            for algorithm in ("NA", "PIN", "PIN-VO"):
                engine.query(candidates, tau=0.6, algorithm=algorithm)
        finally:
            engine.close()
        return engine, read_trace_file(path)

    def test_serial_span_trees(self, world, candidates, tmp_path):
        engine, traces = self.run_engine(world, candidates, tmp_path)
        assert len(traces) == 3
        for trace in traces[:2]:  # NA, PIN: no prune/validate phases
            assert span_names(trace) == ["admission", "plan", "dispatch"]
            assert find_span(trace, "dispatch")["attrs"]["mode"] == "serial"
        vo = traces[2]
        assert span_names(vo) == ["admission", "plan", "prune", "validate"]
        for trace in traces:
            assert trace["attrs"]["tier"] == "serial"

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_fork_span_trees_carry_worker_spans(
        self, world, candidates, tmp_path
    ):
        engine, traces = self.run_engine(
            world, candidates, tmp_path, workers=2
        )
        na = traces[0]
        assert span_names(na) == ["admission", "plan", "dispatch", "merge"]
        shards = find_span(na, "dispatch")["children"]
        assert [s["name"] for s in shards] == ["shard:na", "shard:na"]
        assert all("pid" in s["attrs"] for s in shards)
        vo = traces[2]
        prunes = find_span(vo, "prune")["children"]
        assert [s["name"] for s in prunes] == ["shard:vo_prune"] * 2
        by_start = sorted(prunes, key=lambda s: s["start"])
        assert worker_spans(vo) == by_start

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_pool_span_trees_carry_worker_spans(
        self, world, candidates, tmp_path
    ):
        engine, traces = self.run_engine(
            world, candidates, tmp_path, workers=2, pool=True
        )
        na = traces[0]
        assert traces[0]["attrs"]["tier"] == "pool"
        spans = find_span(na, "dispatch")["children"]
        assert [s["name"] for s in spans] == ["span:na", "span:na"]
        assert sorted(s["attrs"]["worker"] for s in spans) == [0, 1]

    def test_trace_ids_match_jsonl_records(self, world, candidates, tmp_path):
        engine, traces = self.run_engine(world, candidates, tmp_path)
        records = [
            json.loads(line)
            for line in (tmp_path / "metrics.jsonl").read_text().splitlines()
        ]
        assert len(records) == len(traces) == 3
        for record, trace in zip(records, traces):
            assert record["schema"] == 2
            assert record["trace_id"] == trace["trace_id"]
            assert record["query"] == trace["attrs"]["query"]

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_batch_traces_every_request(self, world, candidates, tmp_path):
        path = tmp_path / "traces.jsonl"
        engine = QueryEngine(
            world, workers=2, pool=True, trace_path=path,
            metrics_path=tmp_path / "metrics.jsonl",
        )
        try:
            engine.query_batch([
                QueryRequest(candidates, None, 0.6, "PIN-VO"),
                QueryRequest(candidates, None, 0.7, "NA"),
            ])
        finally:
            engine.close()
        traces = read_trace_file(path)
        assert len(traces) == 2
        for trace in traces:
            assert trace["attrs"]["batch_size"] == 2
            assert span_names(trace)[0] == "admission"
        records = [
            json.loads(line)
            for line in (tmp_path / "metrics.jsonl").read_text().splitlines()
        ]
        assert {r["trace_id"] for r in records} == {
            t["trace_id"] for t in traces
        }

    def test_trace_summary_covers_every_query(
        self, world, candidates, tmp_path
    ):
        engine, traces = self.run_engine(world, candidates, tmp_path)
        text = summarize_traces(traces)
        for query in range(3):
            assert any(
                line.split()[0] == str(query)
                for line in text.splitlines()
                if line and line.split()[0].isdigit()
            ), f"query {query} missing from summary:\n{text}"


# ---------------------------------------------------------------------
# engine integration: metrics
# ---------------------------------------------------------------------
class TestEngineMetrics:
    def test_metrics_text_is_valid_and_complete(self, world, candidates):
        engine = QueryEngine(world)
        try:
            engine.query(candidates, tau=0.6, algorithm="PIN-VO")
            engine.query(candidates, tau=0.6, algorithm="PIN-VO")
            page = engine.metrics_text()
        finally:
            engine.close()
        assert_valid_exposition(page)
        assert (
            'pinls_queries_total{algorithm="PIN-VO",tier="serial",'
            'status="ok"} 2' in page
        )
        assert 'pinls_cache_hits_total{cache="tables"} 1' in page
        assert "pinls_query_latency_seconds_bucket" in page
        assert 'pinls_breaker_state{tier="pool"} 0' in page

    def test_shed_queries_counted(self, world, candidates):
        engine = QueryEngine(world, max_inflight=1, max_queue_depth=0)
        try:
            engine.query_batch([
                QueryRequest(candidates, None, 0.6, "NA")
                for _ in range(3)
            ])
            shed = engine.metrics.get("pinls_queries_shed_total")
            assert shed.value(reason="queue-full") == 2
            page = engine.metrics_text()
        finally:
            engine.close()
        assert 'status="shed"} 2' in page

    def test_endpoint_serves_the_registry(self, world, candidates):
        engine = QueryEngine(world)
        try:
            engine.query(candidates, tau=0.6, algorithm="NA")
            with MetricsServer(engine.metrics, port=0) as server:
                assert 0 < server.port <= 65535
                with urllib.request.urlopen(server.url, timeout=5) as resp:
                    assert resp.status == 200
                    assert resp.headers["Content-Type"].startswith(
                        "text/plain; version=0.0.4"
                    )
                    body = resp.read().decode("utf-8")
                with pytest.raises(urllib.error.HTTPError):
                    urllib.request.urlopen(
                        server.url.replace("/metrics", "/nope"), timeout=5
                    )
        finally:
            engine.close()
        assert_valid_exposition(body)
        assert body == engine.metrics_text() or "pinls_" in body

    def test_bad_port_rejected(self):
        with pytest.raises(ValueError):
            MetricsServer(MetricsRegistry(), port=70000)


class TestMetricsServerLifecycle:
    def test_close_is_idempotent(self):
        server = MetricsServer(MetricsRegistry(), port=0)
        assert server.started
        server.close()
        assert not server.started
        server.close()  # double close must not raise

    def test_close_without_start_is_safe(self):
        server = MetricsServer(MetricsRegistry(), port=0, start=False)
        assert not server.started
        server.close()  # never bound: still safe

    def test_failed_bind_leaves_instance_closeable(self):
        holder = MetricsServer(MetricsRegistry(), port=0)
        try:
            clash = MetricsServer(
                MetricsRegistry(), port=holder.port, start=False
            )
            with pytest.raises(OSError):
                clash.start()
            assert not clash.started
            clash.close()  # close after a failed bind must not raise
        finally:
            holder.close()

    def test_start_is_idempotent_and_restartable(self):
        server = MetricsServer(MetricsRegistry(), port=0, start=False)
        assert server.port == 0  # requested port until bound
        server.start()
        bound = server.port
        assert bound > 0
        assert server.start() is server  # no-op while serving
        assert server.port == bound
        server.close()
        server.start()  # a fresh ephemeral bind after close
        assert server.started
        server.close()


# ---------------------------------------------------------------------
# tracing never changes answers
# ---------------------------------------------------------------------
class TestBitIdentity:
    @pytest.mark.parametrize("algorithm", ["NA", "PIN", "PIN-VO"])
    def test_traced_serial_equals_untraced(
        self, world, candidates, algorithm, tmp_path
    ):
        want = select_location(
            world, candidates, tau=0.6, algorithm=algorithm
        )
        engine = QueryEngine(world, trace_path=tmp_path / "t.jsonl")
        try:
            got = engine.query(candidates, tau=0.6, algorithm=algorithm)
        finally:
            engine.close()
        assert_same_result(got, want, counters=True)


@pytest.mark.skipif(not fork_available(), reason="needs fork")
@given(
    n_objects=st.integers(min_value=2, max_value=10),
    n_candidates=st.integers(min_value=4, max_value=10),
    algorithm=st.sampled_from(["NA", "PIN", "PIN-VO"]),
    kind=st.sampled_from(["crash", "exception", "delay"]),
    worker=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=8, deadline=None)
def test_property_tracing_preserves_results_under_faults(
    n_objects, n_candidates, algorithm, kind, worker, seed, tmp_path_factory
):
    """With tracing ON and any single-shard fault schedule, the engine's
    answer still equals fault-free serial execution — the span tree
    observes the retry/degrade machinery without steering it."""
    rng = np.random.default_rng(seed)
    objects = make_objects(rng, n_objects, n_range=(1, 8))
    candidates = make_candidates(rng, n_candidates)
    pf = PowerLawPF()
    want = select_location(
        objects, candidates, pf=pf, tau=0.7, algorithm=algorithm
    )
    tmp_path = tmp_path_factory.mktemp("traces")
    engine = QueryEngine(
        objects,
        workers=4,
        trace_path=tmp_path / "t.jsonl",
        supervisor_policy=SupervisorPolicy(
            max_retries=2, backoff_seconds=0.01
        ),
        fault_injector=FaultInjector([
            FaultSpec(kind=kind, worker=worker, times=1,
                      delay_seconds=0.01)
        ]),
    )
    try:
        got = engine.query(candidates, pf=pf, tau=0.7, algorithm=algorithm)
        assert_same_result(got, want, counters=True)
        assert engine.tracer.exported == 1
        trace = engine.tracer.traces[0]
        assert trace["attrs"]["algorithm"] == algorithm
    finally:
        engine.close()


# ---------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------
class TestTraceSummaryCLI:
    def test_missing_path_is_usage_error(self, capsys):
        assert main(["trace-summary"]) == 2
        assert "trace file" in capsys.readouterr().err

    def test_nonexistent_file_exits_2(self, capsys, tmp_path):
        assert main(["trace-summary", str(tmp_path / "no.jsonl")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_corrupt_file_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["trace-summary", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_path_rejected_on_other_commands(self, capsys):
        assert main(["table2", "foo.jsonl"]) == 2
        assert "unexpected argument" in capsys.readouterr().err

    def test_trace_flag_rejected_outside_serve_bench(self, capsys):
        assert main(["demo", "--trace", "x.jsonl"]) == 2
        assert "--trace" in capsys.readouterr().err

    def test_metrics_port_flag_rejected_outside_serve_bench(self, capsys):
        assert main(["demo", "--metrics-port", "0"]) == 2
        assert "--metrics-port" in capsys.readouterr().err

    def test_serve_bench_rejects_bad_metrics_port(self, capsys):
        assert main(["serve-bench", "--metrics-port", "99999"]) == 2
        assert "--metrics-port" in capsys.readouterr().err

    def test_serve_bench_rejects_unwritable_trace(self, capsys):
        assert main(
            ["serve-bench", "--trace", "/proc/nope/t.jsonl"]
        ) == 2
        assert "--trace" in capsys.readouterr().err

    def test_summarises_a_real_trace_file(self, capsys, world, candidates,
                                          tmp_path):
        path = tmp_path / "traces.jsonl"
        engine = QueryEngine(world, trace_path=path)
        try:
            engine.query(candidates, tau=0.6, algorithm="PIN-VO")
        finally:
            engine.close()
        assert main(["trace-summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "PIN-VO" in out and "validate ms" in out
