"""Fault-injection suite for the supervised serving engine.

The claims under test, matching ``docs/architecture.md``'s failure
semantics:

* any single injected worker fault — crash, exception, or delay —
  leaves ``QueryEngine.query()``'s answer bit-identical to fault-free
  serial execution (retry path, and degrade-to-serial once retries are
  exhausted),
* what happened is visible: ``worker_failures``/``retries``/
  ``degraded`` land in the result's ``Instrumentation``, the engine's
  ``EngineStats``, and the per-query JSONL metrics,
* ``deadline_seconds`` is honoured within a small tolerance, raising
  ``DeadlineExceeded`` with every worker killed and joined,
* no orphan worker processes survive any of the above.
"""

from __future__ import annotations

import json
import multiprocessing
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import QueryEngine, select_location
from repro.engine import (
    DeadlineExceeded,
    FaultInjector,
    FaultSpec,
    SupervisorPolicy,
)
from repro.engine.parallel import fork_available
from repro.prob import PowerLawPF

from .helpers import make_candidates, make_objects
from .test_engine import assert_same_result

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="needs fork start method"
)

#: fast retry knobs so the suite doesn't sleep through real backoffs
FAST = dict(max_retries=2, backoff_seconds=0.01)


def fast_policy(**overrides) -> SupervisorPolicy:
    return SupervisorPolicy(**{**FAST, **overrides})


def make_engine(objects, faults, **kwargs):
    kwargs.setdefault("workers", 4)
    kwargs.setdefault("supervisor_policy", fast_policy())
    return QueryEngine(
        objects, fault_injector=FaultInjector(faults), **kwargs
    )


def assert_no_orphans():
    """Every worker the engine forked must be joined (or reaped) by now."""
    deadline = time.monotonic() + 2.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.01)
    assert multiprocessing.active_children() == []


@pytest.fixture(scope="module")
def world():
    rng = np.random.default_rng(42)
    return make_objects(rng, 25, n_range=(1, 10))


@pytest.fixture(scope="module")
def candidates():
    # 16 candidates across 4 workers -> 4 shards of 4 columns each.
    return make_candidates(np.random.default_rng(43), 16)


@pytest.fixture(scope="module")
def serial_answers(world, candidates):
    pf = PowerLawPF(rho=0.9, lam=1.0)
    return {
        algorithm: select_location(
            world, candidates, pf=pf, tau=0.7, algorithm=algorithm
        )
        for algorithm in ("NA", "PIN", "PIN-VO")
    }


class TestFaultSpec:
    def test_parse_forms(self):
        spec = FaultSpec.parse("crash:1")
        assert (spec.kind, spec.worker, spec.query) == ("crash", 1, None)
        spec = FaultSpec.parse("exception:*:0")
        assert (spec.kind, spec.worker, spec.query) == ("exception", None, 0)
        spec = FaultSpec.parse("delay:0:*:0.5")
        assert spec.kind == "delay" and spec.delay_seconds == 0.5
        assert FaultSpec.parse("crash").worker is None

    @pytest.mark.parametrize(
        "text", ["bogus:1", "crash:x", "delay:0:0:fast", "crash:1:2:3:4"]
    )
    def test_parse_rejects(self, text):
        with pytest.raises(ValueError):
            FaultSpec.parse(text)

    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="sigsegv")
        with pytest.raises(ValueError):
            FaultSpec(kind="delay", delay_seconds=-1.0)
        with pytest.raises(ValueError):
            FaultSpec(kind="crash", times=0)

    def test_matching_is_keyed_by_worker_query_attempt(self):
        spec = FaultSpec(kind="crash", worker=1, query=2, times=2)
        assert spec.matches(worker=1, query=2, attempt=0)
        assert spec.matches(worker=1, query=2, attempt=1)
        assert not spec.matches(worker=1, query=2, attempt=2)  # times spent
        assert not spec.matches(worker=0, query=2, attempt=0)  # other shard
        assert not spec.matches(worker=1, query=3, attempt=0)  # other query
        wildcard = FaultSpec(kind="delay")
        assert wildcard.matches(worker=7, query=99, attempt=0)


class TestCrashRecovery:
    """A killed worker shard is retried; the answer never changes."""

    @pytest.mark.parametrize("algorithm", ["NA", "PIN", "PIN-VO"])
    def test_single_crash_retried_bit_identical(
        self, world, candidates, pf, serial_answers, algorithm
    ):
        engine = make_engine(
            world, [FaultSpec(kind="crash", worker=1, times=1)]
        )
        got = engine.query(candidates, pf=pf, tau=0.7, algorithm=algorithm)
        assert_same_result(got, serial_answers[algorithm], counters=True)
        assert engine.stats.worker_failures == 1
        assert engine.stats.retries == 1
        assert engine.stats.degraded == 0
        assert got.instrumentation.worker_failures == 1
        assert got.instrumentation.retries == 1
        assert got.instrumentation.degraded == 0
        assert_no_orphans()

    def test_persistent_crash_degrades_to_serial(
        self, world, candidates, pf, serial_answers
    ):
        # times exceeds the retry budget: attempts 0..2 all die, then
        # the missing shard runs serially in the parent.
        engine = make_engine(
            world, [FaultSpec(kind="crash", worker=0, times=99)]
        )
        got = engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
        assert_same_result(got, serial_answers["PIN"], counters=True)
        assert engine.stats.worker_failures == 3  # initial + 2 retries
        assert engine.stats.retries == 2
        assert engine.stats.degraded == 1
        assert got.instrumentation.degraded == 1
        assert_no_orphans()

    def test_fault_keyed_to_query_id_spares_other_queries(
        self, world, candidates, pf
    ):
        engine = make_engine(
            world, [FaultSpec(kind="crash", worker=0, query=1, times=1)]
        )
        engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
        assert engine.stats.worker_failures == 0
        engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
        assert engine.stats.worker_failures == 1
        engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
        assert engine.stats.worker_failures == 1


class TestInjectedException:
    """A poisoned shard (raises instead of dying) takes the same path."""

    @pytest.mark.parametrize("algorithm", ["NA", "PIN", "PIN-VO"])
    def test_exception_retried_bit_identical(
        self, world, candidates, pf, serial_answers, algorithm
    ):
        engine = make_engine(
            world, [FaultSpec(kind="exception", worker=2, times=1)]
        )
        got = engine.query(candidates, pf=pf, tau=0.7, algorithm=algorithm)
        assert_same_result(got, serial_answers[algorithm], counters=True)
        assert engine.stats.worker_failures == 1
        assert engine.stats.retries == 1
        assert_no_orphans()

    def test_exception_reaches_supervisor_events(self, world, candidates, pf):
        engine = make_engine(
            world, [FaultSpec(kind="exception", worker=0, times=1)]
        )
        engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
        record = engine.metrics_log[-1]
        assert record["worker_failures"] == 1
        assert record["retries"] == 1
        assert record["degraded"] is False
        assert record["deadline_exceeded"] is False


class TestDelayAndDeadline:
    def test_small_delay_without_deadline_is_harmless(
        self, world, candidates, pf, serial_answers
    ):
        engine = make_engine(
            world,
            [FaultSpec(kind="delay", worker=0, delay_seconds=0.05, times=1)],
        )
        got = engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
        assert_same_result(got, serial_answers["PIN"], counters=True)
        assert engine.stats.worker_failures == 0
        assert engine.stats.deadline_exceeded == 0

    def test_delay_past_deadline_raises_within_tolerance(
        self, world, candidates, pf, tmp_path
    ):
        path = tmp_path / "metrics.jsonl"
        engine = make_engine(
            world,
            [FaultSpec(kind="delay", worker=0, delay_seconds=30.0, times=99)],
            metrics_path=path,
        )
        started = time.perf_counter()
        with pytest.raises(DeadlineExceeded) as excinfo:
            engine.query(
                candidates, pf=pf, tau=0.7, algorithm="PIN",
                deadline_seconds=0.5,
            )
        elapsed = time.perf_counter() - started
        # Clean timeout: raised once the budget expired, nowhere near
        # the 30s stall, and the stalled worker was killed.
        assert 0.45 <= elapsed < 5.0
        assert excinfo.value.deadline_seconds == 0.5
        assert engine.stats.deadline_exceeded == 1
        assert_no_orphans()
        # The failed query is still a JSONL record.
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[-1]["deadline_exceeded"] is True
        assert records[-1]["best_candidate"] is None
        assert records[-1]["deadline_seconds"] == 0.5
        assert records == engine.metrics_log

    def test_deadline_met_returns_normally(
        self, world, candidates, pf, serial_answers
    ):
        engine = QueryEngine(world, workers=4)
        got = engine.query(
            candidates, pf=pf, tau=0.7, algorithm="PIN", deadline_seconds=60.0
        )
        assert_same_result(got, serial_answers["PIN"], counters=True)
        assert engine.stats.deadline_exceeded == 0
        record = engine.metrics_log[-1]
        assert record["deadline_exceeded"] is False

    def test_serial_path_checks_deadline_cooperatively(
        self, world, candidates, pf
    ):
        engine = QueryEngine(world, workers=0)
        with pytest.raises(DeadlineExceeded):
            engine.query(
                candidates, pf=pf, tau=0.7, algorithm="PIN",
                deadline_seconds=1e-9,
            )
        assert engine.stats.deadline_exceeded == 1

    def test_rejects_non_positive_deadline(self, world, candidates, pf):
        engine = QueryEngine(world)
        with pytest.raises(ValueError):
            engine.query(candidates, pf=pf, tau=0.7, deadline_seconds=0.0)
        with pytest.raises(ValueError):
            engine.query(candidates, pf=pf, tau=0.7, deadline_seconds=-1.0)


class TestAccounting:
    def test_counters_accumulate_across_queries(self, world, candidates, pf):
        engine = make_engine(
            world, [FaultSpec(kind="crash", worker=1, times=1)]
        )
        engine.query(candidates, pf=pf, tau=0.5, algorithm="PIN")
        engine.query(candidates, pf=pf, tau=0.8, algorithm="PIN")
        assert engine.stats.queries == 2
        assert engine.stats.worker_failures == 2
        assert engine.stats.retries == 2
        stats = engine.stats.as_dict()
        for key in ("worker_failures", "retries", "degraded",
                    "deadline_exceeded"):
            assert key in stats

    def test_fault_free_queries_report_zero(self, world, candidates, pf):
        engine = QueryEngine(world, workers=4)
        got = engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
        assert got.instrumentation.worker_failures == 0
        assert got.instrumentation.retries == 0
        assert got.instrumentation.degraded == 0
        record = engine.metrics_log[-1]
        assert record["worker_failures"] == 0
        assert record["degraded"] is False


@given(
    n_objects=st.integers(min_value=2, max_value=10),
    n_candidates=st.integers(min_value=4, max_value=10),
    algorithm=st.sampled_from(["NA", "PIN", "PIN-VO"]),
    kind=st.sampled_from(["crash", "exception", "delay"]),
    worker=st.integers(min_value=0, max_value=3),
    times=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=12, deadline=None)
def test_property_any_single_shard_fault_equals_serial(
    n_objects, n_candidates, algorithm, kind, worker, times, seed
):
    """For any injected single-shard fault schedule, the supervised
    engine's answer equals the fault-free serial answer — through the
    retry path (times <= retry budget) and the degrade-to-serial path
    (times beyond it) alike."""
    rng = np.random.default_rng(seed)
    objects = make_objects(rng, n_objects, n_range=(1, 8))
    candidates = make_candidates(rng, n_candidates)
    pf = PowerLawPF()
    want = select_location(
        objects, candidates, pf=pf, tau=0.7, algorithm=algorithm
    )
    engine = make_engine(
        objects,
        [FaultSpec(
            kind=kind, worker=worker, times=times, delay_seconds=0.01
        )],
    )
    got = engine.query(candidates, pf=pf, tau=0.7, algorithm=algorithm)
    assert_same_result(got, want, counters=True)
    # And once more through the warmed caches, fault schedule unchanged.
    assert_same_result(
        engine.query(candidates, pf=pf, tau=0.7, algorithm=algorithm),
        want,
        counters=True,
    )
    assert_no_orphans()
