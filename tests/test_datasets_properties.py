"""Property-based tests of the synthetic-data substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.city import CityModel
from repro.datasets.counts import _norm_ppf, sample_checkin_counts
from repro.datasets.generator import SyntheticConfig, generate_checkin_dataset


class TestCountSamplerProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        avg=st.floats(5.0, 200.0),
        sigma=st.floats(0.3, 1.5),
        seed=st.integers(0, 10_000),
    )
    def test_calibration_hits_target_mean(self, avg, sigma, seed):
        rng = np.random.default_rng(seed)
        counts = sample_checkin_counts(
            4_000, avg, 1, int(avg * 20), rng, sigma=sigma
        )
        assert counts.mean() == pytest.approx(avg, rel=0.2)
        assert counts.min() >= 1
        assert counts.max() <= int(avg * 20)

    def test_norm_ppf_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        ps = np.linspace(0.001, 0.999, 101)
        np.testing.assert_allclose(
            _norm_ppf(ps), scipy_stats.norm.ppf(ps), atol=1e-6
        )

    def test_norm_ppf_symmetry(self):
        ps = np.array([0.01, 0.2, 0.4])
        np.testing.assert_allclose(
            _norm_ppf(ps), -_norm_ppf(1.0 - ps), atol=1e-9
        )


class TestCityDensity:
    def test_density_integrates_to_about_one(self, rng):
        # The mixture density over the plane integrates to ~1 (hotspot
        # mass may leak slightly past the extent; background is exact).
        city = CityModel.random(40.0, 30.0, 4, rng, sigma_range=(1.0, 2.0))
        xs = np.linspace(0, 40, 220)
        ys = np.linspace(0, 30, 170)
        gx, gy = np.meshgrid(xs, ys)
        pts = np.column_stack([gx.ravel(), gy.ravel()])
        density = city.density(pts)
        integral = density.sum() * (xs[1] - xs[0]) * (ys[1] - ys[0])
        assert integral == pytest.approx(1.0, rel=0.1)

    def test_density_peaks_at_heavy_hotspot(self, rng):
        from repro.datasets.city import Hotspot

        city = CityModel(
            20.0, 20.0,
            [Hotspot(5.0, 5.0, 1.0, weight=10.0), Hotspot(15.0, 15.0, 1.0, weight=0.1)],
            background_weight=0.01,
        )
        heavy = city.density(np.array([[5.0, 5.0]]))[0]
        light = city.density(np.array([[15.0, 15.0]]))[0]
        assert heavy > light

    def test_samples_follow_density(self, rng):
        city = CityModel.random(30.0, 30.0, 3, rng)
        pts = city.sample_points(4_000, rng)
        # Samples should concentrate where the density is high: the
        # mean density at sampled points beats the uniform average.
        sampled_density = city.density(pts).mean()
        uniform = np.column_stack(
            [rng.uniform(0, 30, 4_000), rng.uniform(0, 30, 4_000)]
        )
        uniform_density = city.density(uniform).mean()
        assert sampled_density > uniform_density


class TestAttractivenessCoupling:
    @settings(max_examples=10, deadline=None)
    @given(coupling=st.floats(0.25, 1.0), seed=st.integers(0, 1_000))
    def test_coupling_orders_attractiveness_by_density(self, coupling, seed):
        # Couplings near 0.1 put the expected rank correlation within
        # sampling noise of the 0.05 threshold at 300 venues (e.g.
        # coupling=0.125, seed=63 lands at 0.03), so the strategy floor
        # stays at 0.25 where the signal is unambiguous.
        config = SyntheticConfig(
            n_users=30, n_venues=300, seed=seed,
            attractiveness_from_density=coupling,
        )
        world = generate_checkin_dataset(config)
        density = world.city.density(world.dataset.venue_xy)
        attr = world.venue_attractiveness
        corr = np.corrcoef(np.argsort(np.argsort(density)),
                           np.argsort(np.argsort(attr)))[0, 1]
        # Rank correlation grows with coupling; at >= 0.25 it must be
        # clearly positive.
        assert corr > 0.05

    def test_zero_coupling_uncorrelated(self):
        config = SyntheticConfig(
            n_users=30, n_venues=500, seed=3, attractiveness_from_density=0.0
        )
        world = generate_checkin_dataset(config)
        density = world.city.density(world.dataset.venue_xy)
        corr = np.corrcoef(density, world.venue_attractiveness)[0, 1]
        assert abs(corr) < 0.2
