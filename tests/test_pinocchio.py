"""Tests for PINOCCHIO (Algorithm 2): exactness and pruning accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.naive import NaiveAlgorithm
from repro.core.pinocchio import Pinocchio
from repro.prob import ExponentialPF, PowerLawPF

from tests.helpers import make_candidates, make_objects


class TestExactness:
    @pytest.mark.parametrize("use_rtree", [False, True])
    @pytest.mark.parametrize("tau", [0.2, 0.5, 0.8])
    def test_matches_naive(self, pf, rng, tau, use_rtree):
        objects = make_objects(rng, 20, n_range=(1, 30))
        candidates = make_candidates(rng, 25)
        na = NaiveAlgorithm().select(objects, candidates, pf, tau)
        pin = Pinocchio(use_rtree=use_rtree).select(objects, candidates, pf, tau)
        assert pin.influences == na.influences
        assert pin.best_influence == na.best_influence

    def test_scalar_kernel_matches(self, pf, rng):
        objects = make_objects(rng, 10, n_range=(1, 15))
        candidates = make_candidates(rng, 10)
        na = NaiveAlgorithm().select(objects, candidates, pf, 0.6)
        pin = Pinocchio(kernel="scalar").select(objects, candidates, pf, 0.6)
        assert pin.influences == na.influences

    def test_other_pf(self, rng):
        pf = ExponentialPF(rho=0.8, length=3.0)
        objects = make_objects(rng, 15, n_range=(1, 20))
        candidates = make_candidates(rng, 15)
        na = NaiveAlgorithm().select(objects, candidates, pf, 0.4)
        pin = Pinocchio().select(objects, candidates, pf, 0.4)
        assert pin.influences == na.influences

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2_000),
        tau=st.floats(0.05, 0.95),
        r=st.integers(1, 15),
        m=st.integers(1, 15),
    )
    def test_random_instances_property(self, seed, tau, r, m):
        pf = PowerLawPF()
        rng = np.random.default_rng(seed)
        objects = make_objects(rng, r, extent=25.0, n_range=(1, 25))
        candidates = make_candidates(rng, m, extent=25.0)
        na = NaiveAlgorithm().select(objects, candidates, pf, tau)
        pin = Pinocchio().select(objects, candidates, pf, tau)
        assert pin.influences == na.influences


class TestAccounting:
    def test_pair_partition_adds_up(self, pf, rng):
        objects = make_objects(rng, 20)
        candidates = make_candidates(rng, 30)
        pin = Pinocchio().select(objects, candidates, pf, 0.7)
        inst = pin.instrumentation
        assert (
            inst.pairs_pruned_ia + inst.pairs_pruned_nib + inst.pairs_validated
            == inst.pairs_total
        )

    def test_rtree_and_scan_same_counters(self, pf, rng):
        objects = make_objects(rng, 15)
        candidates = make_candidates(rng, 20)
        a = Pinocchio(use_rtree=True).select(objects, candidates, pf, 0.6)
        b = Pinocchio(use_rtree=False).select(objects, candidates, pf, 0.6)
        assert a.instrumentation.pairs_pruned_ia == b.instrumentation.pairs_pruned_ia
        assert a.instrumentation.pairs_pruned_nib == b.instrumentation.pairs_pruned_nib
        assert a.instrumentation.pairs_validated == b.instrumentation.pairs_validated

    def test_pruning_reduces_validated_pairs(self, pf, rng):
        objects = make_objects(rng, 30, extent=100.0, spread=2.0)
        candidates = make_candidates(rng, 40, extent=100.0)
        pin = Pinocchio().select(objects, candidates, pf, 0.8)
        inst = pin.instrumentation
        assert inst.pairs_validated < inst.pairs_total

    @pytest.mark.parametrize("use_rtree", [False, True])
    def test_phase_sums_equal_wall_time(self, pf, rng, use_rtree):
        # Regression: the scan path used to charge its band bookkeeping
        # (and the final failed next()) to pruning_seconds while the
        # R-tree path did not.  Both paths now attribute every second
        # of compute_influence to exactly one phase, so the two phase
        # columns must sum to the call's wall time on either path.
        import time

        from repro.core.base import candidates_to_array
        from repro.core.object_table import ObjectTable
        from repro.core.result import Instrumentation

        objects = make_objects(rng, 40, n_range=(1, 30))
        cand_xy = candidates_to_array(make_candidates(rng, 40))
        table = ObjectTable(objects, pf, 0.6)
        solver = Pinocchio(use_rtree=use_rtree)
        counters = Instrumentation()
        started = time.perf_counter()
        solver.compute_influence(table, cand_xy, pf, 0.6, counters)
        wall = time.perf_counter() - started
        phase_sum = counters.pruning_seconds + counters.validation_seconds
        assert counters.pruning_seconds >= 0.0
        assert counters.validation_seconds > 0.0
        # The phases partition the call's own wall clock; only the
        # caller-side timer overhead may separate the two.
        assert phase_sum <= wall
        assert wall - phase_sum < 5e-3

    def test_ranking_helper(self, pf, rng):
        objects = make_objects(rng, 10)
        candidates = make_candidates(rng, 10)
        pin = Pinocchio().select(objects, candidates, pf, 0.5)
        ranking = pin.ranking()
        influences = [v for _, v in ranking]
        assert influences == sorted(influences, reverse=True)
        assert ranking[0][1] == pin.best_influence
        assert len(pin.top_k(3)) == 3
