"""Tests for the incremental PRIME-LS index (§7 future-work extension)."""

import numpy as np
import pytest

from repro.core.incremental import IncrementalPrimeLS
from repro.core.naive import NaiveAlgorithm
from repro.model import Candidate, MovingObject
from repro.prob import LinearPF

from tests.helpers import make_candidates, make_objects


def batch_influences(objects, candidates, pf, tau):
    return NaiveAlgorithm().select(objects, candidates, pf, tau).influences


class TestBasics:
    def test_matches_batch_after_bulk_add(self, pf, rng):
        objects = make_objects(rng, 15)
        candidates = make_candidates(rng, 10)
        index = IncrementalPrimeLS(pf, 0.6)
        for obj in objects:
            index.add_object(obj)
        for cand in candidates:
            index.add_candidate(cand)
        expected = batch_influences(objects, candidates, pf, 0.6)
        for j, cand in enumerate(candidates):
            assert index.influence_of(cand.candidate_id) == expected[j]

    def test_order_of_adds_is_irrelevant(self, pf, rng):
        objects = make_objects(rng, 10)
        candidates = make_candidates(rng, 8)
        a = IncrementalPrimeLS(pf, 0.5)
        for cand in candidates:
            a.add_candidate(cand)
        for obj in objects:
            a.add_object(obj)
        b = IncrementalPrimeLS(pf, 0.5)
        for obj in objects:
            b.add_object(obj)
        for cand in candidates:
            b.add_candidate(cand)
        for cand in candidates:
            assert a.influence_of(cand.candidate_id) == b.influence_of(
                cand.candidate_id
            )

    def test_optimal_location_matches_batch(self, pf, rng):
        objects = make_objects(rng, 12)
        candidates = make_candidates(rng, 9)
        index = IncrementalPrimeLS(pf, 0.7)
        for obj in objects:
            index.add_object(obj)
        for cand in candidates:
            index.add_candidate(cand)
        _, influence = index.optimal_location()
        na = NaiveAlgorithm().select(objects, candidates, pf, 0.7)
        assert influence == na.best_influence

    def test_optimal_with_no_candidates_raises(self, pf):
        index = IncrementalPrimeLS(pf, 0.5)
        with pytest.raises(ValueError):
            index.optimal_location()

    def test_invalid_tau(self, pf):
        with pytest.raises(ValueError):
            IncrementalPrimeLS(pf, 1.0)


class TestUpdates:
    def test_remove_object_rolls_back(self, pf, rng):
        objects = make_objects(rng, 10)
        candidates = make_candidates(rng, 6)
        index = IncrementalPrimeLS(pf, 0.6)
        for obj in objects:
            index.add_object(obj)
        for cand in candidates:
            index.add_candidate(cand)
        index.remove_object(objects[0].object_id)
        expected = batch_influences(objects[1:], candidates, pf, 0.6)
        for j, cand in enumerate(candidates):
            assert index.influence_of(cand.candidate_id) == expected[j]

    def test_remove_candidate(self, pf, rng):
        objects = make_objects(rng, 8)
        candidates = make_candidates(rng, 5)
        index = IncrementalPrimeLS(pf, 0.6)
        for obj in objects:
            index.add_object(obj)
        for cand in candidates:
            index.add_candidate(cand)
        index.remove_candidate(candidates[2].candidate_id)
        assert index.n_candidates == 4
        with pytest.raises(KeyError):
            index.influence_of(candidates[2].candidate_id)

    def test_update_object_replaces_positions(self, pf, rng):
        objects = make_objects(rng, 5)
        candidates = make_candidates(rng, 5)
        index = IncrementalPrimeLS(pf, 0.6)
        for obj in objects:
            index.add_object(obj)
        for cand in candidates:
            index.add_candidate(cand)
        moved = MovingObject(
            objects[0].object_id, rng.uniform(0, 30, size=(7, 2))
        )
        index.update_object(moved)
        new_objects = [moved] + objects[1:]
        expected = batch_influences(new_objects, candidates, pf, 0.6)
        for j, cand in enumerate(candidates):
            assert index.influence_of(cand.candidate_id) == expected[j]

    def test_interleaved_updates_match_batch(self, pf, rng):
        objects = make_objects(rng, 20)
        candidates = make_candidates(rng, 10)
        index = IncrementalPrimeLS(pf, 0.65)
        live_objects: dict[int, MovingObject] = {}
        live_candidates: dict[int, Candidate] = {}
        script = [
            ("add_obj", objects[0]), ("add_obj", objects[1]),
            ("add_cand", candidates[0]), ("add_cand", candidates[1]),
            ("add_obj", objects[2]), ("rm_obj", objects[1]),
            ("add_cand", candidates[2]), ("rm_cand", candidates[0]),
            ("add_obj", objects[3]), ("add_obj", objects[4]),
            ("add_cand", candidates[3]), ("rm_obj", objects[0]),
        ]
        for action, item in script:
            if action == "add_obj":
                index.add_object(item)
                live_objects[item.object_id] = item
            elif action == "rm_obj":
                index.remove_object(item.object_id)
                del live_objects[item.object_id]
            elif action == "add_cand":
                index.add_candidate(item)
                live_candidates[item.candidate_id] = item
            else:
                index.remove_candidate(item.candidate_id)
                del live_candidates[item.candidate_id]
        cands = list(live_candidates.values())
        expected = batch_influences(list(live_objects.values()), cands, pf, 0.65)
        for j, cand in enumerate(cands):
            assert index.influence_of(cand.candidate_id) == expected[j]


class TestErrorsAndEdgeCases:
    def test_duplicate_ids_rejected(self, pf, rng):
        index = IncrementalPrimeLS(pf, 0.5)
        obj = make_objects(rng, 1)[0]
        cand = make_candidates(rng, 1)[0]
        index.add_object(obj)
        index.add_candidate(cand)
        with pytest.raises(KeyError):
            index.add_object(obj)
        with pytest.raises(KeyError):
            index.add_candidate(cand)

    def test_unknown_removals_rejected(self, pf):
        index = IncrementalPrimeLS(pf, 0.5)
        with pytest.raises(KeyError):
            index.remove_object(99)
        with pytest.raises(KeyError):
            index.remove_candidate(99)

    def test_dead_objects_never_influence(self, rng):
        pf = LinearPF(rho=0.5, scale=10.0)
        index = IncrementalPrimeLS(pf, 0.9)
        dead = MovingObject(0, np.array([[1.0, 1.0]]))  # 1 position, cap 0.5
        index.add_object(dead)
        cand = Candidate(0, 1.0, 1.0)
        assert index.add_candidate(cand) == 0
        assert index.counters.dead_objects == 1
        index.remove_object(0)  # removal of a dead object works
        assert index.n_objects == 0

    def test_removed_candidate_tombstone_in_rtree_is_ignored(self, pf, rng):
        index = IncrementalPrimeLS(pf, 0.5)
        cand = make_candidates(rng, 1)[0]
        index.add_candidate(cand)
        index.remove_candidate(cand.candidate_id)
        # Adding an object must not resurrect the removed candidate.
        index.add_object(make_objects(rng, 1)[0])
        with pytest.raises(KeyError):
            index.influence_of(cand.candidate_id)


class TestSafeRegionFastPath:
    def test_off_boundary_update_touches_zero_candidates(self, pf):
        # The regression the shared safe-region check exists for: an
        # update far from every candidate must examine none of them.
        index = IncrementalPrimeLS(pf, 0.5)
        index.add_candidate(Candidate(0, 0.0, 0.0))
        index.add_object(MovingObject(0, np.array([[500.0, 500.0]] * 4)))
        before = (
            index.counters.pairs_pruned_ia,
            index.counters.pairs_pruned_nib,
            index.counters.pairs_validated,
        )
        index.update_object(MovingObject(0, np.array([[500.05, 500.05]] * 4)))
        after = (
            index.counters.pairs_pruned_ia,
            index.counters.pairs_pruned_nib,
            index.counters.pairs_validated,
        )
        assert index.counters.safe_region_hits == 1
        assert after == before

    def test_update_unknown_object_raises(self, pf):
        index = IncrementalPrimeLS(pf, 0.5)
        with pytest.raises(KeyError):
            index.update_object(MovingObject(7, np.array([[1.0, 1.0]])))

    def test_jittery_updates_stay_exact(self, pf, rng):
        candidates = make_candidates(rng, 5, extent=20.0)
        index = IncrementalPrimeLS(pf, 0.6)
        for cand in candidates:
            index.add_candidate(cand)
        objects = {o.object_id: o for o in make_objects(rng, 6, extent=20.0)}
        for obj in objects.values():
            index.add_object(obj)
        for _ in range(40):
            oid = int(rng.integers(0, 6))
            jitter = rng.normal(0, 0.01, objects[oid].positions.shape)
            moved = MovingObject(oid, objects[oid].positions + jitter)
            objects[oid] = moved
            index.update_object(moved)
        assert index.counters.safe_region_hits > 0
        expected = batch_influences(
            list(objects.values()), candidates, pf, 0.6
        )
        for j, cand in enumerate(candidates):
            assert index.influence_of(cand.candidate_id) == expected[j]

    def test_update_exactly_on_ia_boundary(self, pf):
        # maxDist == radius is IA by Lemma 2 (<=, inclusive); the
        # boundary update must count and its zero-slack region must not
        # absorb the next update unchecked.
        from repro.core.minmax_radius import MinMaxRadiusCache

        radius = MinMaxRadiusCache(pf, 0.5).radius(1)
        assert radius is not None
        index = IncrementalPrimeLS(pf, 0.5)
        index.add_candidate(Candidate(0, float(radius), 0.0))
        on_boundary = MovingObject(0, np.array([[0.0, 0.0]]))
        index.add_object(on_boundary)
        assert index.influence_of(0) == 1
        hits_before = index.counters.safe_region_hits
        index.update_object(MovingObject(0, np.array([[0.0, 0.0]])))
        assert index.counters.safe_region_hits == hits_before
        assert index.influence_of(0) == 1

    def test_dead_alive_transitions_with_regions(self, rng):
        # An object that flips between uninfluenceable (1 position at
        # LinearPF cap 0.5 < tau 0.9) and influenceable keeps exact
        # bookkeeping across the safe-region bookkeeping.
        pf = LinearPF(rho=0.5, scale=10.0)
        index = IncrementalPrimeLS(pf, 0.9)
        index.add_candidate(Candidate(0, 1.0, 1.0))
        alive = MovingObject(0, np.array([[1.0, 1.0]] * 30))
        dead = MovingObject(0, np.array([[1.0, 1.0]]))
        index.add_object(alive)
        assert index.influence_of(0) == 1
        index.update_object(dead)
        assert index.influence_of(0) == 0
        index.update_object(alive)
        assert index.influence_of(0) == 1

    def test_remove_candidate_invalidates_regions(self, pf):
        index = IncrementalPrimeLS(pf, 0.5)
        index.add_candidate(Candidate(0, 900.0, 900.0))
        index.add_candidate(Candidate(1, 1.0, 1.0))
        index.add_object(MovingObject(0, np.array([[1.0, 1.0]] * 4)))
        assert index.influence_of(1) == 1
        index.remove_candidate(1)
        # The cached region referenced the removed candidate's
        # geometry; updates must still be exact without it.
        index.update_object(MovingObject(0, np.array([[1.1, 1.1]] * 4)))
        assert index.influence_of(0) == 0
