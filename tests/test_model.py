"""Tests for the data model: MovingObject, Candidate, CheckinDataset."""

import numpy as np
import pytest

from repro.model import Candidate, CheckinDataset, MovingObject
from repro.model.dataset import objects_from_checkins


class TestMovingObject:
    def test_basic_properties(self):
        obj = MovingObject(3, np.array([[0.0, 0.0], [2.0, 4.0]]))
        assert obj.object_id == 3
        assert obj.n_positions == 2
        assert len(obj) == 2
        assert obj.mbr.as_tuple() == (0.0, 0.0, 2.0, 4.0)

    def test_positions_are_read_only(self):
        obj = MovingObject(0, np.array([[1.0, 1.0]]))
        with pytest.raises(ValueError):
            obj.positions[0, 0] = 5.0

    def test_input_array_not_aliased(self):
        raw = np.array([[1.0, 1.0]])
        obj = MovingObject(0, raw)
        raw[0, 0] = 99.0
        assert obj.positions[0, 0] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MovingObject(0, np.empty((0, 2)))
        with pytest.raises(ValueError):
            MovingObject(0, np.zeros((3, 3)))
        with pytest.raises(ValueError):
            MovingObject(0, np.array([[np.nan, 0.0]]))

    def test_mbr_cached(self):
        obj = MovingObject(0, np.array([[0.0, 0.0], [1.0, 1.0]]))
        assert obj.mbr is obj.mbr

    def test_subsample(self, rng):
        obj = MovingObject(0, rng.uniform(0, 10, size=(20, 2)))
        sub = obj.subsample(5, rng)
        assert sub.n_positions == 5
        assert sub.object_id == 0
        original = {tuple(p) for p in obj.positions}
        assert all(tuple(p) in original for p in sub.positions)

    def test_subsample_validation(self, rng):
        obj = MovingObject(0, rng.uniform(0, 10, size=(5, 2)))
        with pytest.raises(ValueError):
            obj.subsample(0, rng)
        with pytest.raises(ValueError):
            obj.subsample(6, rng)

    def test_subsample_without_replacement(self, rng):
        obj = MovingObject(0, rng.uniform(0, 10, size=(10, 2)))
        sub = obj.subsample(10, rng)
        assert sub.n_positions == 10
        assert len({tuple(p) for p in sub.positions}) == 10


class TestCandidate:
    def test_point_property(self):
        cand = Candidate(1, 2.0, 3.0)
        assert cand.point.as_tuple() == (2.0, 3.0)

    def test_repr_with_label(self):
        assert "mall" in repr(Candidate(1, 0.0, 0.0, label="mall"))


class TestCheckinDataset:
    def test_stats(self, demo_dataset):
        stats = demo_dataset.stats()
        assert stats.user_count == demo_dataset.n_objects
        assert stats.checkin_count == sum(
            o.n_positions for o in demo_dataset.objects
        )
        assert stats.min_checkins <= stats.avg_checkins <= stats.max_checkins

    def test_stats_rows_render(self, demo_dataset):
        rows = demo_dataset.stats().rows()
        assert len(rows) == 6

    def test_sample_candidates(self, demo_dataset):
        rng = np.random.default_rng(0)
        cands, idx = demo_dataset.sample_candidates(10, rng)
        assert len(cands) == 10
        assert len(set(idx.tolist())) == 10  # without replacement
        for c, venue in zip(cands, idx):
            assert c.x == demo_dataset.venue_xy[venue, 0]

    def test_sample_candidates_validation(self, demo_dataset):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            demo_dataset.sample_candidates(0, rng)
        with pytest.raises(ValueError):
            demo_dataset.sample_candidates(demo_dataset.n_venues + 1, rng)

    def test_subset_objects(self, demo_dataset):
        rng = np.random.default_rng(0)
        subset = demo_dataset.subset_objects(7, rng)
        assert len(subset) == 7
        ids = {o.object_id for o in subset}
        assert len(ids) == 7

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            CheckinDataset([], np.zeros((2, 3)), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            CheckinDataset([], np.zeros((2, 2)), np.zeros(3, dtype=int))

    def test_save_and_load_round_trip(self, demo_dataset, tmp_path):
        demo_dataset.save(tmp_path)
        loaded = CheckinDataset.load(tmp_path, name="reloaded")
        assert loaded.n_objects == demo_dataset.n_objects
        assert loaded.n_venues == demo_dataset.n_venues
        np.testing.assert_allclose(
            loaded.venue_xy, demo_dataset.venue_xy, atol=1e-6
        )
        np.testing.assert_array_equal(
            loaded.venue_checkins, demo_dataset.venue_checkins
        )
        for a, b in zip(loaded.objects, demo_dataset.objects):
            assert a.object_id == b.object_id
            np.testing.assert_allclose(a.positions, b.positions, atol=1e-6)


class TestObjectsFromCheckins:
    def test_grouping(self):
        rows = [(1, 0.0, 0.0), (0, 1.0, 1.0), (1, 2.0, 2.0)]
        objects = objects_from_checkins(rows)
        assert [o.object_id for o in objects] == [0, 1]
        assert objects[1].n_positions == 2
