"""Tests for Definition 5: the minMaxRadius measure and its cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.minmax_radius import (
    MinMaxRadiusCache,
    min_max_radius,
    required_position_probability,
)
from repro.prob import LinearPF, PowerLawPF


class TestRequiredPositionProbability:
    def test_single_position_equals_tau(self):
        assert required_position_probability(0.7, 1) == pytest.approx(0.7)

    def test_formula(self):
        # 1 - (1 - 0.7)^(1/10)
        assert required_position_probability(0.7, 10) == pytest.approx(
            1 - 0.3 ** 0.1
        )

    def test_decreasing_in_n(self):
        values = [required_position_probability(0.7, n) for n in (1, 2, 5, 20, 100)]
        assert values == sorted(values, reverse=True)

    def test_increasing_in_tau(self):
        values = [required_position_probability(t, 10) for t in (0.1, 0.4, 0.7, 0.9)]
        assert values == sorted(values)

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            required_position_probability(0.0, 5)
        with pytest.raises(ValueError):
            required_position_probability(1.0, 5)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            required_position_probability(0.5, 0)


class TestMinMaxRadius:
    def test_definition5(self, pf):
        # minMaxRadius(tau, n) = PF^-1(1 - (1 - tau)^(1/n))
        tau, n = 0.7, 20
        expected = pf.inverse(1 - 0.3 ** (1 / 20))
        assert min_max_radius(pf, tau, n) == pytest.approx(expected)

    def test_single_position_reduces_to_lemma1(self, pf):
        # Lemma 1: c influences a 1-position object iff dist <= PF^-1(tau).
        assert min_max_radius(pf, 0.5, 1) == pytest.approx(pf.inverse(0.5))

    def test_grows_with_n(self, pf):
        radii = [min_max_radius(pf, 0.7, n) for n in (1, 5, 20, 80)]
        assert radii == sorted(radii)

    def test_shrinks_with_tau(self, pf):
        radii = [min_max_radius(pf, t, 20) for t in (0.1, 0.5, 0.9)]
        assert radii == sorted(radii, reverse=True)

    def test_uninfluenceable_returns_none(self):
        # LinearPF caps at rho=0.5; a single-position object needs
        # per-position probability 0.7 > 0.5 at tau=0.7.
        pf = LinearPF(rho=0.5, scale=10.0)
        assert min_max_radius(pf, 0.7, 1) is None

    def test_uninfluenceable_threshold_is_sharp(self):
        pf = LinearPF(rho=0.5, scale=10.0)
        # With enough positions the per-position requirement drops below rho.
        assert min_max_radius(pf, 0.7, 1) is None
        assert min_max_radius(pf, 0.7, 5) is not None

    @settings(max_examples=50)
    @given(st.floats(0.05, 0.95), st.integers(1, 500))
    def test_radius_is_nonnegative_when_defined(self, tau, n):
        pf = PowerLawPF()
        radius = min_max_radius(pf, tau, n)
        if radius is not None:
            assert radius >= 0.0


class TestCache:
    def test_memoises_per_n(self, pf):
        cache = MinMaxRadiusCache(pf, 0.7)
        r1 = cache.radius(10)
        r2 = cache.radius(10)
        assert r1 == r2
        assert len(cache) == 1
        cache.radius(20)
        assert len(cache) == 2

    def test_matches_direct_computation(self, pf):
        cache = MinMaxRadiusCache(pf, 0.4)
        for n in (1, 3, 17, 100):
            assert cache.radius(n) == pytest.approx(min_max_radius(pf, 0.4, n))

    def test_caches_none(self):
        pf = LinearPF(rho=0.5, scale=10.0)
        cache = MinMaxRadiusCache(pf, 0.9)
        assert cache.radius(1) is None
        assert cache.radius(1) is None
        assert len(cache) == 1

    def test_invalid_tau(self, pf):
        with pytest.raises(ValueError):
            MinMaxRadiusCache(pf, 0.0)
        with pytest.raises(ValueError):
            MinMaxRadiusCache(pf, 1.0)
