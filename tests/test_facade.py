"""Tests for the public facade (repro.__init__)."""

import pytest

import repro
from repro import (
    ALGORITHMS,
    make_algorithm,
    rank_candidates,
    select_location,
)

from tests.helpers import make_candidates, make_objects


class TestRegistry:
    def test_all_paper_algorithms_present(self):
        paper = {"NA", "PIN", "PIN-VO", "PIN-VO*", "BRNN*", "RANGE"}
        assert paper <= set(ALGORITHMS)
        assert "GRID" in ALGORITHMS  # grid-partition extension

    def test_make_algorithm(self):
        algo = make_algorithm("PIN")
        assert algo.name == "PIN"

    def test_make_algorithm_with_kwargs(self):
        algo = make_algorithm("PIN-VO", kernel="scalar")
        assert algo.kernel == "scalar"

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            make_algorithm("DIJKSTRA")

    def test_version_exposed(self):
        assert repro.__version__


class TestSelectLocation:
    def test_defaults(self, rng):
        objects = make_objects(rng, 10)
        candidates = make_candidates(rng, 8)
        result = select_location(objects, candidates)
        assert result.algorithm == "PIN-VO"
        assert 0 <= result.best_influence <= 10

    def test_all_exact_algorithms_agree(self, rng):
        objects = make_objects(rng, 12)
        candidates = make_candidates(rng, 10)
        results = {
            name: select_location(objects, candidates, tau=0.6, algorithm=name)
            for name in ("NA", "PIN", "PIN-VO", "PIN-VO*")
        }
        reference = results["NA"].best_influence
        for name, result in results.items():
            assert result.best_influence == reference, name

    def test_custom_pf(self, rng):
        from repro.prob import ExponentialPF

        objects = make_objects(rng, 5)
        candidates = make_candidates(rng, 5)
        result = select_location(
            objects, candidates, pf=ExponentialPF(), tau=0.3
        )
        assert result.best_influence >= 0


class TestRankCandidates:
    def test_full_ranking(self, rng):
        objects = make_objects(rng, 10)
        candidates = make_candidates(rng, 12)
        ranking = rank_candidates(objects, candidates, tau=0.5)
        assert len(ranking) == 12
        values = [v for _, v in ranking]
        assert values == sorted(values, reverse=True)

    def test_rejects_vo(self, rng):
        objects = make_objects(rng, 3)
        candidates = make_candidates(rng, 3)
        with pytest.raises(ValueError, match="full ranking"):
            rank_candidates(objects, candidates, algorithm="PIN-VO")

    def test_na_and_pin_rankings_identical(self, rng):
        objects = make_objects(rng, 10)
        candidates = make_candidates(rng, 10)
        assert rank_candidates(objects, candidates, algorithm="NA") == (
            rank_candidates(objects, candidates, algorithm="PIN")
        )


class TestInputValidation:
    def test_non_finite_candidate_rejected(self, rng):
        from repro.model import Candidate

        objects = make_objects(rng, 3)
        candidates = make_candidates(rng, 2) + [Candidate(99, float("nan"), 1.0)]
        with pytest.raises(ValueError, match="non-finite"):
            select_location(objects, candidates)

    def test_infinite_candidate_rejected(self, rng):
        from repro.model import Candidate

        objects = make_objects(rng, 3)
        candidates = [Candidate(0, float("inf"), 0.0)]
        with pytest.raises(ValueError, match="non-finite"):
            select_location(objects, candidates, algorithm="NA")
