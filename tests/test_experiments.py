"""Smoke tests for every experiment driver (tiny parameters).

These verify the drivers run end-to-end, produce well-formed results
and render tables — the full-size runs live in benchmarks/.
"""

import numpy as np
import pytest

import repro.experiments as ex
from repro.experiments.datasets import timing_world
from repro.experiments.tables import TextTable


class TestTextTable:
    def test_render_alignment(self):
        t = TextTable(["a", "bbbb"])
        t.add_row([1, 0.5])
        t.add_row(["xx", 123])
        out = t.render(title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5
        assert "0.500" in out

    def test_row_width_mismatch(self):
        t = TextTable(["a"])
        with pytest.raises(ValueError):
            t.add_row([1, 2])


class TestTimingWorlds:
    def test_cached(self):
        assert timing_world("F") is timing_world("F")

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            timing_world("X")


class TestDrivers:
    def test_table2(self):
        r = ex.run_table2()
        assert set(r.stats) == {"F", "G"}
        assert "Table 2" in r.render()

    def test_precision_small(self):
        r = ex.run_precision_experiment(groups=2, candidates_per_group=60)
        assert r.groups == 2
        for method in ("Prime-ls", "Avg. range", "brnn*"):
            for k in (10, 20, 30, 40, 50):
                assert 0.0 <= r.precision[method][k] <= 1.0
                assert r.avg_precision[method][k] <= r.precision[method][k] + 1e-9
        assert "Table 3" in r.render() and "Table 4" in r.render()

    def test_candidate_scalability_small(self):
        r = ex.run_candidate_scalability("F", candidate_counts=(50, 100))
        assert r.values == [50, 100]
        for algo in ("NA", "PIN", "PIN-VO", "PIN-VO*"):
            assert len(r.seconds[algo]) == 2
            # NA work grows with candidate count.
        assert r.positions["NA"][1] > r.positions["NA"][0]
        assert "Scalability" in r.render()

    def test_object_scalability_small(self):
        r = ex.run_object_scalability("G", object_counts=(50, 100), n_candidates=80)
        assert r.values == [50, 100]
        assert r.positions["NA"][1] > r.positions["NA"][0]

    def test_pruning_effect_small(self):
        r = ex.run_pruning_effect("F", taus=(0.5,), n_candidates=100)
        total = r.ia_fraction[0] + r.nib_fraction[0] + r.validated_fraction[0]
        assert total == pytest.approx(1.0)
        assert "Fig 10" in r.render()

    def test_pruning_model_check_small(self):
        r = ex.run_pruning_model_check(taus=(0.7,), n_objects=10, n_candidates=300)
        assert r.analytic[0] == pytest.approx(r.measured[0], abs=0.05)
        assert "Remark" in r.render()

    def test_effect_n_groups_small(self):
        r = ex.run_effect_n_groups("G", n_candidates=60)
        assert len(r.labels) == 5
        assert sum(r.group_sizes) == timing_world("G").dataset.n_objects
        assert "Fig 11" in r.render()

    def test_effect_n_resampled_small(self):
        r = ex.run_effect_n_resampled(
            "G", position_counts=(10, 20), n_candidates=60
        )
        assert r.labels == ["n=10", "n=20"]
        # More positions => more influenceable objects.
        assert r.max_influence[1] >= r.max_influence[0]

    def test_effect_tau_small(self):
        r = ex.run_effect_tau("F", taus=(0.3, 0.8), n_candidates=60)
        # Maximum influence is non-increasing in tau.
        assert r.max_influence[0] >= r.max_influence[1]
        assert "Fig 12" in r.render()

    def test_n_tau_levelcurve_small(self):
        r = ex.run_n_tau_levelcurve(
            "G", curve_ns=(10, 20), check_ns=(15,), n_candidates=60,
            fit_degree=1,
        )
        assert len(r.taus) == 2
        # Higher n tolerates a higher tau at equal influence.
        assert r.taus[1] >= r.taus[0] - 0.05
        assert "Fig 13" in r.render()

    def test_effect_lambda_small(self):
        r = ex.run_effect_lambda("F", lambdas=(0.75, 1.25), n_candidates=60)
        # Steeper decay => less influence.
        assert r.max_influence[0] >= r.max_influence[1]
        assert "Fig 14" in r.render()

    def test_effect_rho_small(self):
        r = ex.run_effect_rho("F", rhos=(0.5, 0.9), n_candidates=60)
        # Stronger behaviour factor => more influence.
        assert r.max_influence[1] >= r.max_influence[0]
        assert "Fig 15" in r.render()

    def test_sampling_tradeoff_small(self):
        r = ex.run_sampling_tradeoff(
            samples_per_day=(2, 24), days=3, n_objects=25, n_candidates=40
        )
        assert r.samples_per_day == [2, 24]
        assert len(r.top10_overlap) == 2
        assert all(0.0 <= v <= 1.0 for v in r.top10_overlap)
        assert "sampling tradeoff" in r.render()

    def test_pf_variants_small(self):
        r = ex.run_pf_variants("F", n_candidates=60)
        assert r.names == ["Logsig", "Convex", "Concave", "Linear"]
        assert all(r.exact), "PIN-VO must stay exact under every PF"
        assert "Fig 16" in r.render()


class TestFindTau:
    def test_binary_search_converges(self):
        from repro.experiments.n_tau import find_tau_for_influence
        from repro.prob import PowerLawPF

        world = timing_world("F")
        ds = world.dataset
        rng = np.random.default_rng(0)
        cands, _ = ds.sample_candidates(40, rng)
        pf = PowerLawPF()
        from repro.core.pinocchio_vo import PinocchioVO

        target = PinocchioVO().select(ds.objects, cands, pf, 0.6).best_influence
        tau, influence = find_tau_for_influence(ds.objects, cands, pf, target)
        assert abs(influence - target) <= max(2, target * 0.02)
