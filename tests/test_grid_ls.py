"""Tests for the grid-partition exact solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grid_ls import GridPartitionLS, optimal_grid_size
from repro.core.naive import NaiveAlgorithm
from repro.geo.mbr import MBR
from repro.prob import PowerLawPF

from tests.helpers import make_candidates, make_objects


class TestRectToRectDistances:
    def test_min_dist_rect_disjoint(self):
        a = MBR(0, 0, 1, 1)
        b = MBR(4, 5, 6, 7)
        assert a.min_dist_rect(b) == pytest.approx(np.hypot(3, 4))
        assert b.min_dist_rect(a) == pytest.approx(np.hypot(3, 4))

    def test_min_dist_rect_overlapping_is_zero(self):
        assert MBR(0, 0, 2, 2).min_dist_rect(MBR(1, 1, 3, 3)) == 0.0

    def test_max_dist_rect(self):
        a = MBR(0, 0, 1, 1)
        b = MBR(2, 2, 3, 3)
        assert a.max_dist_rect(b) == pytest.approx(np.hypot(3, 3))
        assert b.max_dist_rect(a) == pytest.approx(np.hypot(3, 3))

    def test_rect_distances_bound_point_distances(self, rng):
        a = MBR(0, 0, 3, 2)
        b = MBR(5, 1, 8, 6)
        pa = np.column_stack(
            [rng.uniform(a.min_x, a.max_x, 200), rng.uniform(a.min_y, a.max_y, 200)]
        )
        pb = np.column_stack(
            [rng.uniform(b.min_x, b.max_x, 200), rng.uniform(b.min_y, b.max_y, 200)]
        )
        d = np.hypot(pa[:, 0] - pb[:, 0], pa[:, 1] - pb[:, 1])
        assert np.all(d >= a.min_dist_rect(b) - 1e-9)
        assert np.all(d <= a.max_dist_rect(b) + 1e-9)


class TestGridPartitionLS:
    @pytest.mark.parametrize("grid_size", [1, 4, 16])
    def test_matches_naive(self, pf, rng, grid_size):
        objects = make_objects(rng, 20)
        candidates = make_candidates(rng, 30)
        na = NaiveAlgorithm().select(objects, candidates, pf, 0.7)
        grid = GridPartitionLS(grid_size=grid_size).select(
            objects, candidates, pf, 0.7
        )
        assert grid.best_influence == na.best_influence

    def test_invalid_grid_size(self):
        with pytest.raises(ValueError):
            GridPartitionLS(grid_size=0)

    def test_skips_cells(self, pf, rng):
        # Inferior far-away candidate clusters should be skipped whole.
        objects = make_objects(rng, 30, extent=10.0, spread=1.0)
        near = make_candidates(rng, 10, extent=10.0)
        far = [type(near[0])(100 + j, 500.0 + j % 5, 500.0 + j // 5) for j in range(25)]
        result = GridPartitionLS(grid_size=8).select(objects, near + far, pf, 0.7)
        assert result.instrumentation.candidates_skipped_strategy1 > 0

    def test_single_candidate(self, pf, rng):
        objects = make_objects(rng, 5)
        candidates = make_candidates(rng, 1)
        na = NaiveAlgorithm().select(objects, candidates, pf, 0.5)
        grid = GridPartitionLS().select(objects, candidates, pf, 0.5)
        assert grid.best_influence == na.best_influence

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2_000),
        tau=st.floats(0.1, 0.9),
        grid_size=st.integers(1, 10),
    )
    def test_random_instances_property(self, seed, tau, grid_size):
        pf = PowerLawPF()
        rng = np.random.default_rng(seed)
        objects = make_objects(rng, 10, extent=25.0, n_range=(1, 20))
        candidates = make_candidates(rng, 15, extent=25.0)
        na = NaiveAlgorithm().select(objects, candidates, pf, tau)
        grid = GridPartitionLS(grid_size=grid_size).select(
            objects, candidates, pf, tau
        )
        assert grid.best_influence == na.best_influence


class TestHeuristics:
    def test_optimal_grid_size(self):
        assert optimal_grid_size(4) == 1
        assert optimal_grid_size(400) == 10
        assert optimal_grid_size(0) == 1
