"""The HTTP front end: routing, admission, deadlines, drain, loadgen."""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro import select_location
from repro.engine import (
    QueryEngine,
    TenantAdmission,
    TenantBudget,
    TenantLoad,
    run_load_sync,
)
from repro.engine.loadgen import _percentile
from repro.engine.server import BackgroundServer

from .helpers import make_candidates, make_objects


@pytest.fixture(scope="module")
def world():
    return make_objects(np.random.default_rng(7), 18, n_range=(1, 8))


@pytest.fixture(scope="module")
def candidates():
    return make_candidates(np.random.default_rng(8), 6)


def _coords(candidates):
    return [[float(c.x), float(c.y)] for c in candidates]


def _request(port, method, path, body=None, headers=None, timeout=30.0):
    """One HTTP exchange; returns (status, parsed-or-text body)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        if isinstance(body, dict):
            body = json.dumps(body).encode()
        conn.request(method, path, body=body, headers=headers or {})
        resp = conn.getresponse()
        raw = resp.read()
    finally:
        conn.close()
    text = raw.decode("utf-8", "replace")
    if resp.headers.get("Content-Type", "").startswith("application/json"):
        return resp.status, json.loads(text)
    return resp.status, text


def _raw_exchange(port, data: bytes, timeout=10.0) -> bytes:
    """Write raw bytes, read the full response (for malformed HTTP)."""
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as s:
        s.sendall(data)
        chunks = []
        while True:
            chunk = s.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


# ---------------------------------------------------------------------------
# Round-trip correctness
# ---------------------------------------------------------------------------
class TestQueryRoundtrip:
    @pytest.fixture(scope="class")
    def server(self, world):
        with BackgroundServer(QueryEngine(world)) as server:
            yield server

    def test_query_matches_direct_selection(self, server, world, candidates):
        status, out = _request(
            server.port, "POST", "/v1/query",
            {"candidates": _coords(candidates), "tau": 0.7,
             "algorithm": "PIN-VO", "tenant": "acme"},
        )
        want = select_location(
            world, candidates, tau=0.7, algorithm="PIN-VO"
        )
        assert status == 200
        assert out["tenant"] == "acme"
        assert out["quality"] == "exact"
        assert out["best_influence"] == want.best_influence
        best = out["best_candidate"]
        assert (best["x"], best["y"]) == (
            want.best_candidate.x, want.best_candidate.y
        )

    def test_pf_and_candidate_objects_accepted(self, server, candidates):
        status, out = _request(
            server.port, "POST", "/v1/query",
            {
                "candidates": [
                    {"x": c.x, "y": c.y, "id": c.candidate_id}
                    for c in candidates
                ],
                "pf": {"name": "powerlaw", "rho": 0.8},
            },
        )
        assert status == 200 and out["tenant"] == "default"

    def test_tenant_header_applies_when_body_has_none(
        self, server, candidates
    ):
        status, out = _request(
            server.port, "POST", "/v1/query",
            {"candidates": _coords(candidates)},
            headers={"X-Tenant": "from-header"},
        )
        assert status == 200 and out["tenant"] == "from-header"

    def test_batch_preserves_order_and_tenants(
        self, server, world, candidates
    ):
        status, out = _request(
            server.port, "POST", "/v1/batch",
            {"queries": [
                {"candidates": _coords(candidates), "tenant": "a"},
                {"candidates": _coords(candidates[:3]), "tenant": "b"},
            ]},
        )
        assert status == 200
        results = out["results"]
        assert [r["tenant"] for r in results] == ["a", "b"]
        want = select_location(world, candidates, tau=0.7)
        assert results[0]["best_influence"] == want.best_influence

    def test_healthz_ok_and_shape(self, server):
        status, h = _request(server.port, "GET", "/healthz")
        assert status == 200
        assert h["ready"] is True and h["status"] in ("ok", "degraded")
        assert "tenants" in h and h["http"]["draining"] is False

    def test_metrics_page_has_http_series(self, server, candidates):
        _request(
            server.port, "POST", "/v1/query",
            {"candidates": _coords(candidates), "tenant": "metered"},
        )
        status, text = _request(server.port, "GET", "/metrics")
        assert status == 200
        assert "# TYPE pinls_http_requests_total counter" in text
        assert 'tenant="metered"' in text
        assert "pinls_http_request_seconds_bucket" in text
        # the scrape itself is in flight while the gauge is sampled
        assert "pinls_http_inflight_requests 1" in text


# ---------------------------------------------------------------------------
# Typed errors — malformed input never produces a traceback
# ---------------------------------------------------------------------------
class TestTypedErrors:
    @pytest.fixture(scope="class")
    def server(self, world):
        with BackgroundServer(
            QueryEngine(world), max_body_bytes=4096
        ) as server:
            yield server

    def _error(self, server, *args, **kwargs):
        status, out = _request(server.port, *args, **kwargs)
        assert isinstance(out, dict) and "error" in out, out
        err = out["error"]
        assert err["status"] == status
        return status, err["code"]

    def test_malformed_json_is_400(self, server):
        assert self._error(
            server, "POST", "/v1/query", b"{not json"
        ) == (400, "bad-json")

    def test_non_object_json_is_400(self, server):
        assert self._error(
            server, "POST", "/v1/query", b"[1, 2]"
        ) == (400, "bad-json")

    def test_missing_candidates_is_400(self, server):
        assert self._error(
            server, "POST", "/v1/query", {"tau": 0.5}
        ) == (400, "bad-candidates")

    def test_bad_tau_and_timeout_are_400(self, server, candidates):
        body = {"candidates": _coords(candidates), "tau": 1.5}
        assert self._error(server, "POST", "/v1/query", body) == (
            400, "bad-tau",
        )
        body = {"candidates": _coords(candidates), "timeout_ms": -1}
        assert self._error(server, "POST", "/v1/query", body) == (
            400, "bad-timeout",
        )

    def test_unknown_algorithm_is_400(self, server, candidates):
        status, code = self._error(
            server, "POST", "/v1/query",
            {"candidates": _coords(candidates), "algorithm": "MAGIC"},
        )
        assert (status, code) == (400, "bad-query")

    def test_unknown_pf_is_400(self, server, candidates):
        assert self._error(
            server, "POST", "/v1/query",
            {"candidates": _coords(candidates), "pf": {"name": "cauchy"}},
        ) == (400, "bad-pf")

    def test_unknown_route_is_404_and_wrong_method_is_405(self, server):
        assert self._error(server, "GET", "/nope") == (404, "not-found")
        assert self._error(server, "GET", "/v1/query") == (
            405, "method-not-allowed",
        )
        assert self._error(server, "POST", "/healthz") == (
            405, "method-not-allowed",
        )

    def test_oversized_body_is_413(self, server):
        big = b"x" * 8192
        status, code = self._error(server, "POST", "/v1/query", big)
        assert (status, code) == (413, "body-too-large")

    def test_missing_content_length_is_411(self, server):
        raw = _raw_exchange(
            server.port,
            b"POST /v1/query HTTP/1.1\r\nHost: x\r\n\r\n",
        )
        assert raw.startswith(b"HTTP/1.1 411")
        assert b"length-required" in raw

    def test_chunked_encoding_is_411(self, server):
        raw = _raw_exchange(
            server.port,
            b"POST /v1/query HTTP/1.1\r\nHost: x\r\n"
            b"Transfer-Encoding: chunked\r\n\r\n",
        )
        assert raw.startswith(b"HTTP/1.1 411")

    def test_malformed_request_line_is_400(self, server):
        raw = _raw_exchange(server.port, b"NONSENSE\r\n\r\n")
        assert raw.startswith(b"HTTP/1.1 400")

    def test_tiny_deadline_is_504(self, server, candidates):
        status, code = self._error(
            server, "POST", "/v1/query",
            {"candidates": _coords(candidates), "timeout_ms": 0.0001},
        )
        assert (status, code) == (504, "deadline-exceeded")

    def test_deadline_header_applies(self, server, candidates):
        status, code = self._error(
            server, "POST", "/v1/query",
            {"candidates": _coords(candidates)},
            headers={"X-Timeout-Ms": "0.0001"},
        )
        assert (status, code) == (504, "deadline-exceeded")


# ---------------------------------------------------------------------------
# Per-tenant admission
# ---------------------------------------------------------------------------
def _gated_engine(world, gate: threading.Event, gated_tenant="bulk", **kwargs):
    """An engine whose queries for one tenant block until ``gate`` is set.

    Deterministic overload: a gated in-flight request holds its
    tenant's budget slot for exactly as long as the test wants.
    """
    engine = QueryEngine(world, **kwargs)
    original = engine.query

    def query(candidates, *args, **kw):
        if kw.get("tenant") == gated_tenant:
            assert gate.wait(timeout=30.0), "gate never opened"
        return original(candidates, *args, **kw)

    engine.query = query
    return engine


class TestTenantIsolation:
    def test_burst_sheds_the_bursting_tenant_only(self, world, candidates):
        gate = threading.Event()
        engine = _gated_engine(world, gate)
        tenants = TenantAdmission(
            budgets={"bulk": TenantBudget(max_inflight=1, max_queue_depth=0)},
        )
        body = {"candidates": _coords(candidates), "tenant": "bulk"}
        with BackgroundServer(engine, tenants=tenants) as server:
            results = {}

            def fire(name, payload):
                results[name] = _request(
                    server.port, "POST", "/v1/query", payload
                )

            holder = threading.Thread(target=fire, args=("holder", body))
            holder.start()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if tenants.controller("bulk").inflight == 1:
                    break
                time.sleep(0.005)
            assert tenants.controller("bulk").inflight == 1

            # bulk's only slot is held: a second bulk request sheds...
            status, out = _request(server.port, "POST", "/v1/query", body)
            assert status == 429
            assert out["error"]["code"] == "shed"
            assert out["shed"]["tenant"] == "bulk"
            assert out["shed"]["reason"] == "queue-full"
            # ...while the victim tenant still gets served
            status, out = _request(
                server.port, "POST", "/v1/query",
                {"candidates": _coords(candidates), "tenant": "victim"},
            )
            assert status == 200 and out["tenant"] == "victim"

            gate.set()
            holder.join(timeout=30.0)
            assert results["holder"][0] == 200
            assert tenants.shed_by_tenant() == {"bulk": 1, "victim": 0}
            status, h = _request(server.port, "GET", "/healthz")
            assert h["tenants"]["bulk"]["shed"] == 1
            assert h["tenants"]["victim"]["shed"] == 0

    def test_approx_floor_absorbs_over_budget_requests(
        self, world, candidates
    ):
        gate = threading.Event()
        # approx_k below the fleet size so sketch answers are genuine
        # estimates (an exhaustive sample would be labelled "exact")
        engine = _gated_engine(world, gate, approx=True, approx_k=4)
        tenants = TenantAdmission(
            budgets={"bulk": TenantBudget(max_inflight=1, max_queue_depth=0)},
        )
        body = {"candidates": _coords(candidates), "tenant": "bulk"}
        with BackgroundServer(engine, tenants=tenants) as server:
            results = {}

            def fire():
                results["holder"] = _request(
                    server.port, "POST", "/v1/query", body
                )

            holder = threading.Thread(target=fire)
            holder.start()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if tenants.controller("bulk").inflight == 1:
                    break
                time.sleep(0.005)

            # over budget on an approx engine: answered, not shed
            status, out = _request(server.port, "POST", "/v1/query", body)
            assert status == 200
            assert out["quality"] == "approx"
            assert out["error_bound"] is not None
            gate.set()
            holder.join(timeout=30.0)
            assert results["holder"][0] == 200
            assert results["holder"][1]["quality"] == "exact"
            assert tenants.shed_by_tenant()["bulk"] == 0

    def test_batch_admission_is_per_tenant(self, world, candidates):
        engine = QueryEngine(world)
        tenants = TenantAdmission(
            budgets={"small": TenantBudget(max_inflight=1, max_queue_depth=0)},
        )
        coords = _coords(candidates)
        with BackgroundServer(engine, tenants=tenants) as server:
            status, out = _request(
                server.port, "POST", "/v1/batch",
                {"queries": [
                    {"candidates": coords, "tenant": "small"},
                    {"candidates": coords, "tenant": "small"},
                    {"candidates": coords, "tenant": "roomy"},
                ]},
            )
            assert status == 200
            small_a, small_b, roomy = out["results"]
            assert "best_candidate" in small_a
            assert small_b["error"]["code"] == "shed"
            assert small_b["shed"]["tenant"] == "small"
            assert "best_candidate" in roomy
            # slots were released: the next round admits again
            status, out = _request(
                server.port, "POST", "/v1/batch",
                {"queries": [{"candidates": coords, "tenant": "small"}]},
            )
            assert "best_candidate" in out["results"][0]


# ---------------------------------------------------------------------------
# /healthz across ladder states
# ---------------------------------------------------------------------------
class TestHealthzLadderStates:
    def test_exact_tiers_down_with_approx_is_degraded_but_ready(
        self, world
    ):
        engine = QueryEngine(world, approx=True)
        engine.ladder.trip_exact_tiers()
        with BackgroundServer(engine) as server:
            status, h = _request(server.port, "GET", "/healthz")
            assert status == 200
            assert h["status"] == "degraded"
            assert h["tier"] == "approx"
            assert h["ready"] is True

    def test_closed_engine_is_503(self, world):
        engine = QueryEngine(world)
        with BackgroundServer(engine) as server:
            engine.close()
            status, h = _request(server.port, "GET", "/healthz")
            assert status == 503
            assert h["status"] == "closed" and h["ready"] is False
            # and a query against the closed engine is a typed 503
            status, out = _request(
                server.port, "POST", "/v1/query",
                {"candidates": [[0.0, 0.0]]},
            )
            assert status == 503
            assert out["error"]["code"] == "engine-closed"


# ---------------------------------------------------------------------------
# Drain
# ---------------------------------------------------------------------------
class TestDrain:
    def test_drain_finishes_inflight_then_refuses(self, world, candidates):
        gate = threading.Event()
        engine = _gated_engine(world, gate)
        server = BackgroundServer(engine, drain_seconds=10.0)
        port = server.port
        results = {}

        def fire():
            results["held"] = _request(
                port, "POST", "/v1/query",
                {"candidates": _coords(candidates), "tenant": "bulk"},
            )

        holder = threading.Thread(target=fire)
        holder.start()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if server.front._inflight >= 1:
                break
            time.sleep(0.005)

        stopper = threading.Thread(target=server.stop)
        stopper.start()
        time.sleep(0.05)
        gate.set()
        stopper.join(timeout=30.0)
        holder.join(timeout=30.0)
        # the in-flight request completed during the drain window
        assert results["held"][0] == 200
        assert server.front.draining
        # the listener is gone: new connections are refused
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=2.0)
        # the engine was closed by the drain
        assert engine.health()["status"] == "closed"
        # drain lines are grep-able per tenant
        lines = "\n".join(server.front.drain_lines())
        assert re.search(r"tenant bulk: offered=1 admitted=1 shed=0", lines)
        assert "drain: complete" in lines

    def test_stop_is_idempotent(self, world):
        server = BackgroundServer(QueryEngine(world))
        first = server.stop()
        second = server.stop()
        assert first["drained"] is True
        assert second["drained"] is True


# ---------------------------------------------------------------------------
# The blocking entry point (subprocess, SIGTERM)
# ---------------------------------------------------------------------------
class TestRunServerProcess:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--max-inflight", "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=str(tmp_path),
        )
        try:
            line = proc.stdout.readline()
            m = re.search(r"serving on http://127\.0\.0\.1:(\d+)", line)
            assert m, f"no serving line in {line!r}"
            port = int(m.group(1))
            status, out = _request(
                port, "POST", "/v1/query",
                {"candidates": [[1.0, 1.0], [5.0, 5.0]], "tenant": "t0"},
            )
            assert status == 200
            proc.send_signal(signal.SIGTERM)
            output, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, output
        assert "tenant t0: offered=1 admitted=1 shed=0" in output
        assert "drain: complete" in output


# ---------------------------------------------------------------------------
# Load generator
# ---------------------------------------------------------------------------
class TestLoadgen:
    def test_percentile_interpolates(self):
        assert _percentile([], 0.99) == 0.0
        assert _percentile([5.0], 0.5) == 5.0
        assert _percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)
        assert _percentile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0

    def test_tenant_load_validates(self):
        with pytest.raises(ValueError):
            TenantLoad("t", 0.0)

    def test_open_loop_run_reports_per_tenant(self, world, candidates):
        engine = QueryEngine(world)
        with BackgroundServer(engine) as server:
            report = run_load_sync(
                [
                    TenantLoad(
                        "a", 30.0, {"candidates": _coords(candidates)}
                    ),
                    TenantLoad(
                        "b", 10.0, {"candidates": _coords(candidates)}
                    ),
                ],
                host="127.0.0.1",
                port=server.port,
                duration=0.5,
                seed=3,
            )
        assert set(report.tenants) == {"a", "b"}
        a = report.tenants["a"]
        assert a.sent > 0 and a.completed > 0
        assert a.completed + a.shed + sum(a.errors.values()) == a.sent
        assert a.percentile_ms(0.99) >= a.percentile_ms(0.5) > 0
        d = report.to_dict()
        assert d["total_sent"] == report.total_sent
        lines = report.summary_lines()
        assert any("loadgen tenant a:" in line for line in lines)

    def test_duplicate_tenants_rejected(self):
        with pytest.raises(ValueError):
            run_load_sync(
                [TenantLoad("a", 1.0), TenantLoad("a", 2.0)],
                host="127.0.0.1",
                port=9,
                duration=0.1,
            )


# ---------------------------------------------------------------------------
# CLI flag validation for the new commands
# ---------------------------------------------------------------------------
class TestServeCLIFlags:
    def test_server_flags_rejected_elsewhere(self, capsys):
        from repro.cli import main

        assert main(["demo", "--port", "1"]) == 2
        assert "--port" in capsys.readouterr().err

    def test_serve_rejects_bad_values(self, capsys):
        from repro.cli import main

        assert main(["serve", "--port", "-1"]) == 2
        assert main(["serve", "--workers", "-2"]) == 2
        assert main(["serve", "--pool"]) == 2  # pool needs workers >= 2
        assert main(["serve", "--shed-policy", "nope"]) == 2
        assert main(["serve", "--drain-seconds", "-1"]) == 2
        assert main(["serve", "--max-inflight", "0"]) == 2
        capsys.readouterr()

    def test_serve_bench_server_rejects_bad_values(self, capsys):
        from repro.cli import main

        assert main(["serve-bench", "--server", "--offered-qps", "0"]) == 2
        assert main(["serve-bench", "--server", "--duration", "0"]) == 2
        assert main(["serve-bench", "--server", "--tenants", "0"]) == 2
        assert main(
            ["serve-bench", "--server-url", "not-a-url"]
        ) == 2
        capsys.readouterr()


class TestSubscriptionEndpoints:
    @pytest.fixture(scope="class")
    def server(self, world):
        with BackgroundServer(QueryEngine(world)) as server:
            yield server

    def test_subscribe_ingest_get_delete_roundtrip(self, server):
        status, body = _request(
            server.port, "POST", "/v1/subscribe",
            {"candidates": [[1.0, 1.0], [8.0, 8.0]], "tau": 0.3},
        )
        assert status == 200
        sid = body["subscription_id"]
        assert body["snapshot"]["version"] == 1
        assert len(body["snapshot"]["influences"]) == 2

        status, body = _request(
            server.port, "POST", "/v1/ingest",
            {"updates": [[500, 1.0, 1.0], [500, 1.1, 1.0], [501, 8.0, 8.0]]},
        )
        assert status == 200
        assert body["applied"] == 3
        assert body["shed"] == []
        assert sid in body["changed_subscriptions"]

        status, body = _request(
            server.port, "GET", f"/v1/subscriptions/{sid}"
        )
        assert status == 200
        assert body["version"] >= 2
        # the two streamed objects sit on the two candidates
        assert body["influences"][0] >= 1
        assert body["influences"][1] >= 1

        status, body = _request(
            server.port, "DELETE", f"/v1/subscriptions/{sid}"
        )
        assert status == 200 and body == {"unsubscribed": sid}
        status, body = _request(
            server.port, "GET", f"/v1/subscriptions/{sid}"
        )
        assert status == 404
        assert body["error"]["code"] == "unknown-subscription"

    def test_single_update_form(self, server):
        status, body = _request(
            server.port, "POST", "/v1/ingest",
            {"object_id": 600, "x": 2.0, "y": 3.0},
        )
        assert status == 200 and body["applied"] == 1

    def test_bad_inputs_are_400(self, server):
        for payload in (
            {},                                    # no updates
            {"updates": []},                       # empty
            {"updates": [[1, 2]]},                 # not a triple
            {"updates": [["a", "b", "c"]]},        # not numbers
        ):
            status, body = _request(
                server.port, "POST", "/v1/ingest", payload
            )
            assert status == 400
            assert body["error"]["code"] == "bad-updates"
        status, body = _request(
            server.port, "POST", "/v1/subscribe",
            {"candidates": [[1, 1]], "tau": 2.0},
        )
        assert (status, body["error"]["code"]) == (400, "bad-tau")
        status, body = _request(
            server.port, "POST", "/v1/subscribe",
            {"candidates": [[1, 1]], "algorithm": "MAGIC"},
        )
        assert status == 400
        status, body = _request(
            server.port, "GET", "/v1/subscriptions/xyz"
        )
        assert (status, body["error"]["code"]) == (
            400, "bad-subscription-id",
        )

    def test_wrong_methods_are_405(self, server):
        status, _ = _request(server.port, "GET", "/v1/subscribe")
        assert status == 405
        status, _ = _request(server.port, "GET", "/v1/ingest")
        assert status == 405
        status, _ = _request(server.port, "POST", "/v1/subscriptions/1")
        assert status == 405

    def test_healthz_and_metrics_carry_subscription_state(self, server):
        status, body = _request(server.port, "GET", "/healthz")
        assert status == 200
        assert "subscriptions" in body
        assert body["subscriptions"]["objects"] >= 1
        status, page = _request(server.port, "GET", "/metrics")
        assert status == 200
        assert "pinls_sub_updates_total" in page
        assert "pinls_sub_objects" in page

    def test_subscribe_error_bad_algorithm_is_400_not_500(self, server):
        # ValueError from SubscriptionEngine.subscribe maps through
        # _run_engine's ValueError -> 400 translation.
        status, body = _request(
            server.port, "POST", "/v1/subscribe",
            {"candidates": [[0.0, 0.0]], "tau": 0.999999},
        )
        assert status == 200  # extreme-but-valid tau still works
