"""Tests for the sliding-window PRIME-LS extension."""

from collections import deque

import numpy as np
import pytest

from repro.core.naive import NaiveAlgorithm
from repro.core.streaming import SlidingWindowPrimeLS
from repro.model import Candidate, MovingObject
from repro.prob import LinearPF

from tests.helpers import make_candidates


def replay_batch(windows, candidates, pf, tau):
    objects = [
        MovingObject(oid, np.array(win)) for oid, win in sorted(windows.items())
    ]
    return NaiveAlgorithm().select(objects, candidates, pf, tau).influences


class TestSlidingWindow:
    def test_matches_batch_replay(self, pf, rng):
        candidates = make_candidates(rng, 15, extent=20.0)
        sw = SlidingWindowPrimeLS(pf, 0.6, window=8)
        for cand in candidates:
            sw.add_candidate(cand)
        windows: dict[int, deque] = {}
        for _ in range(400):
            oid = int(rng.integers(0, 10))
            x, y = rng.uniform(0, 20, 2)
            sw.observe(oid, x, y)
            windows.setdefault(oid, deque(maxlen=8)).append((x, y))
        expected = replay_batch(windows, candidates, pf, 0.6)
        for j, cand in enumerate(candidates):
            assert sw.influence_of(cand.candidate_id) == expected[j]

    def test_eviction_respects_window(self, pf, rng):
        sw = SlidingWindowPrimeLS(pf, 0.5, window=3)
        for i in range(10):
            sw.observe(0, float(i), 0.0)
        window = sw.window_of(0)
        assert window.shape == (3, 2)
        np.testing.assert_allclose(window[:, 0], [7.0, 8.0, 9.0])

    def test_moving_object_influence_follows_it(self, pf):
        # One candidate at the origin; the object drifts away and the
        # candidate must lose its influence once the window slides out.
        candidates = make_candidates(np.random.default_rng(0), 1, extent=0.1)
        cand = candidates[0]
        sw = SlidingWindowPrimeLS(pf, 0.6, window=5)
        sw.add_candidate(cand)
        for _ in range(5):
            sw.observe(0, cand.x, cand.y)
        assert sw.influence_of(cand.candidate_id) == 1
        for _ in range(5):
            sw.observe(0, cand.x + 500.0, cand.y + 500.0)
        assert sw.influence_of(cand.candidate_id) == 0

    def test_candidate_added_after_stream(self, pf, rng):
        candidates = make_candidates(rng, 6, extent=15.0)
        sw = SlidingWindowPrimeLS(pf, 0.6, window=6)
        windows: dict[int, deque] = {}
        for _ in range(200):
            oid = int(rng.integers(0, 6))
            x, y = rng.uniform(0, 15, 2)
            sw.observe(oid, x, y)
            windows.setdefault(oid, deque(maxlen=6)).append((x, y))
        for cand in candidates:
            sw.add_candidate(cand)
        expected = replay_batch(windows, candidates, pf, 0.6)
        for j, cand in enumerate(candidates):
            assert sw.influence_of(cand.candidate_id) == expected[j]

    def test_forget_object(self, pf, rng):
        candidates = make_candidates(rng, 5, extent=10.0)
        sw = SlidingWindowPrimeLS(pf, 0.5, window=4)
        for cand in candidates:
            sw.add_candidate(cand)
        windows: dict[int, deque] = {}
        for _ in range(100):
            oid = int(rng.integers(0, 4))
            x, y = rng.uniform(0, 10, 2)
            sw.observe(oid, x, y)
            windows.setdefault(oid, deque(maxlen=4)).append((x, y))
        sw.forget_object(2)
        del windows[2]
        expected = replay_batch(windows, candidates, pf, 0.5)
        for j, cand in enumerate(candidates):
            assert sw.influence_of(cand.candidate_id) == expected[j]

    def test_forget_unknown_raises(self, pf):
        sw = SlidingWindowPrimeLS(pf, 0.5)
        with pytest.raises(KeyError):
            sw.forget_object(1)

    def test_duplicate_candidate_raises(self, pf, rng):
        sw = SlidingWindowPrimeLS(pf, 0.5)
        cand = make_candidates(rng, 1)[0]
        sw.add_candidate(cand)
        with pytest.raises(KeyError):
            sw.add_candidate(cand)

    def test_optimal_location(self, pf, rng):
        candidates = make_candidates(rng, 8, extent=12.0)
        sw = SlidingWindowPrimeLS(pf, 0.6, window=5)
        for cand in candidates:
            sw.add_candidate(cand)
        windows: dict[int, deque] = {}
        for _ in range(150):
            oid = int(rng.integers(0, 7))
            x, y = rng.uniform(0, 12, 2)
            sw.observe(oid, x, y)
            windows.setdefault(oid, deque(maxlen=5)).append((x, y))
        expected = replay_batch(windows, candidates, pf, 0.6)
        _, influence = sw.optimal_location()
        assert influence == max(expected.values())

    def test_optimal_without_candidates_raises(self, pf):
        sw = SlidingWindowPrimeLS(pf, 0.5)
        with pytest.raises(ValueError):
            sw.optimal_location()

    def test_parameter_validation(self, pf):
        with pytest.raises(ValueError):
            SlidingWindowPrimeLS(pf, 0.0)
        with pytest.raises(ValueError):
            SlidingWindowPrimeLS(pf, 0.5, window=0)

    def test_growing_window_changes_radius_correctly(self):
        # A bounded PF where a 1-position window is uninfluenceable at
        # tau but longer windows are: the radius flips from None to a
        # value as the window grows, and bookkeeping must stay exact.
        pf = LinearPF(rho=0.5, scale=10.0)
        rng = np.random.default_rng(1)
        candidates = make_candidates(rng, 4, extent=2.0)
        sw = SlidingWindowPrimeLS(pf, 0.7, window=10)
        for cand in candidates:
            sw.add_candidate(cand)
        windows: dict[int, deque] = {}
        for i in range(30):
            x, y = rng.uniform(0, 2, 2)
            sw.observe(0, x, y)
            windows.setdefault(0, deque(maxlen=10)).append((x, y))
            expected = replay_batch(windows, candidates, pf, 0.7)
            for j, cand in enumerate(candidates):
                assert sw.influence_of(cand.candidate_id) == expected[j], i


class TestSafeRegionFastPath:
    def test_off_boundary_update_touches_zero_candidates(self, pf):
        # The regression the shared safe-region check exists for: one
        # observation far from every candidate, after the region is
        # established, must examine no candidate at all.
        sw = SlidingWindowPrimeLS(pf, 0.5, window=4)
        sw.add_candidate(Candidate(0, 0.0, 0.0))
        sw.observe(0, 500.0, 500.0)
        before = (
            sw.counters.pairs_pruned_ia,
            sw.counters.pairs_pruned_nib,
            sw.counters.pairs_validated,
        )
        sw.observe(0, 500.05, 500.05)
        after = (
            sw.counters.pairs_pruned_ia,
            sw.counters.pairs_pruned_nib,
            sw.counters.pairs_validated,
        )
        assert sw.counters.safe_region_hits == 1
        assert after == before

    def test_exactness_preserved_with_safe_regions(self, pf, rng):
        # Jittery objects trigger many safe-region hits; the final
        # influence table must still equal a batch replay.
        candidates = make_candidates(rng, 5, extent=20.0)
        sw = SlidingWindowPrimeLS(pf, 0.6, window=4)
        for cand in candidates:
            sw.add_candidate(cand)
        windows: dict[int, deque] = {}
        anchors = rng.uniform(0, 20, (6, 2))
        for _ in range(50):
            oid = int(rng.integers(0, 6))
            x, y = anchors[oid] + rng.normal(0, 0.02, 2)
            sw.observe(oid, float(x), float(y))
            windows.setdefault(oid, deque(maxlen=4)).append((float(x), float(y)))
        assert sw.counters.safe_region_hits > 0
        expected = replay_batch(windows, candidates, pf, 0.6)
        for j, cand in enumerate(candidates):
            assert sw.influence_of(cand.candidate_id) == expected[j]

    def test_new_candidate_invalidates_regions(self, pf):
        sw = SlidingWindowPrimeLS(pf, 0.5, window=4)
        sw.add_candidate(Candidate(0, 900.0, 900.0))
        sw.observe(0, 1.0, 1.0)
        sw.observe(0, 1.0, 1.0)
        assert sw.counters.safe_region_hits == 1
        # A candidate right on top of the object must be seen by the
        # very next observation, despite the cached region.
        sw.add_candidate(Candidate(1, 1.0, 1.0))
        assert sw.influence_of(1) == 1
        sw.observe(0, 1.0, 1.0)
        assert sw.influence_of(1) == 1


class TestStreamingEdgeCases:
    def test_forget_unknown_object_raises(self, pf):
        sw = SlidingWindowPrimeLS(pf, 0.5)
        with pytest.raises(KeyError):
            sw.forget_object(42)

    def test_duplicate_candidate_rejected(self, pf):
        sw = SlidingWindowPrimeLS(pf, 0.5)
        sw.add_candidate(Candidate(0, 1.0, 1.0))
        with pytest.raises(KeyError):
            sw.add_candidate(Candidate(0, 2.0, 2.0))

    def test_window_eviction_shrinking_mbr(self, pf):
        # The object visits a far point, then returns; once the far
        # point evicts, the MBR shrinks and the far candidate must be
        # dropped from the influence table.
        cand_near = Candidate(0, 0.0, 0.0)
        sw = SlidingWindowPrimeLS(pf, 0.6, window=2)
        sw.add_candidate(cand_near)
        sw.observe(0, 0.0, 0.0)
        sw.observe(0, 300.0, 300.0)   # MBR now spans 300 km
        sw.observe(0, 0.0, 0.0)       # far point still in window
        sw.observe(0, 0.0, 0.0)       # far point evicted: MBR is a point
        windows = {0: deque([(0.0, 0.0), (0.0, 0.0)], maxlen=2)}
        expected = replay_batch(windows, [cand_near], pf, 0.6)
        assert sw.influence_of(0) == expected[0] == 1

    def test_update_exactly_on_ia_boundary(self, pf):
        # maxDist == radius is IA by Lemma 2 (<=, inclusive); the
        # boundary observation must count, and the zero-slack region
        # must not absorb the next observation unchecked.
        from repro.core.minmax_radius import MinMaxRadiusCache

        radius = MinMaxRadiusCache(pf, 0.5).radius(1)
        assert radius is not None
        sw = SlidingWindowPrimeLS(pf, 0.5, window=1)
        sw.add_candidate(Candidate(0, float(radius), 0.0))
        sw.observe(0, 0.0, 0.0)       # point MBR exactly radius away
        assert sw.influence_of(0) == 1
        hits_before = sw.counters.safe_region_hits
        sw.observe(0, 0.0, 0.0)       # same spot: slack 0, never "safe"
        assert sw.counters.safe_region_hits == hits_before
        assert sw.influence_of(0) == 1
