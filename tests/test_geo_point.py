"""Tests for repro.geo.point."""

import math

import pytest

from repro.geo import Point


class TestPoint:
    def test_distance_to_self_is_zero(self):
        p = Point(3.0, 4.0)
        assert p.distance_to(p) == 0.0

    def test_distance_345(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_symmetric(self):
        a, b = Point(1.5, -2.0), Point(-3.0, 7.25)
        assert a.distance_to(b) == b.distance_to(a)

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_translated_leaves_original(self):
        p = Point(1, 2)
        p.translated(5, 5)
        assert p == Point(1, 2)

    def test_as_tuple(self):
        assert Point(1.25, -2.5).as_tuple() == (1.25, -2.5)

    def test_iter_unpacking(self):
        x, y = Point(7.0, 8.0)
        assert (x, y) == (7.0, 8.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 1.0

    def test_equality_and_hash(self):
        assert Point(1, 2) == Point(1, 2)
        assert hash(Point(1, 2)) == hash(Point(1, 2))
        assert Point(1, 2) != Point(2, 1)

    def test_triangle_inequality(self):
        a, b, c = Point(0, 0), Point(5, 1), Point(2, 9)
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-12

    def test_distance_matches_hypot(self):
        a, b = Point(-1.0, 2.0), Point(4.0, -3.5)
        assert a.distance_to(b) == pytest.approx(math.hypot(5.0, 5.5))
