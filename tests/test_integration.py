"""End-to-end integration tests over generated worlds."""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import ALGORITHMS, PowerLawPF, select_location
from repro.core.incremental import IncrementalPrimeLS

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def example_env() -> dict[str, str]:
    """``os.environ`` with ``<repo>/src`` merged onto ``PYTHONPATH``.

    The examples do ``from repro import ...``; in a clean checkout the
    package lives under ``src/`` and is not installed, so the spawned
    interpreter needs the path explicitly.  Merging (not replacing) the
    environment keeps whatever the caller already configured.
    """
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


class TestEndToEnd:
    def test_all_exact_algorithms_agree_on_demo_world(
        self, demo_dataset, demo_candidates, pf
    ):
        candidates, _ = demo_candidates
        results = {
            name: ALGORITHMS[name]().select(
                demo_dataset.objects, candidates, pf, 0.7
            )
            for name in ("NA", "PIN", "PIN-VO", "PIN-VO*")
        }
        na = results["NA"]
        assert results["PIN"].influences == na.influences
        assert results["PIN-VO"].best_influence == na.best_influence
        assert results["PIN-VO*"].best_influence == na.best_influence

    def test_pruning_is_substantial_on_demo_world(
        self, demo_dataset, demo_candidates, pf
    ):
        candidates, _ = demo_candidates
        result = ALGORITHMS["PIN"]().select(
            demo_dataset.objects, candidates, pf, 0.7
        )
        # The paper reports ~2/3 pruned; demand at least a third here.
        assert result.instrumentation.pruned_fraction() > 1 / 3

    def test_incremental_replays_batch(self, demo_dataset, demo_candidates, pf):
        candidates, _ = demo_candidates
        index = IncrementalPrimeLS(pf, 0.7)
        for obj in demo_dataset.objects:
            index.add_object(obj)
        for cand in candidates:
            index.add_candidate(cand)
        batch = select_location(
            demo_dataset.objects, candidates, pf=pf, tau=0.7, algorithm="NA"
        )
        _, influence = index.optimal_location()
        assert influence == batch.best_influence

    def test_influence_saturates_with_low_tau(self, demo_dataset, demo_candidates):
        candidates, _ = demo_candidates
        pf = PowerLawPF()
        low = select_location(demo_dataset.objects, candidates, pf=pf, tau=0.05)
        high = select_location(demo_dataset.objects, candidates, pf=pf, tau=0.95)
        assert low.best_influence >= high.best_influence

    def test_seeded_world_is_reproducible_end_to_end(self):
        from repro.datasets import tiny_demo

        results = []
        for _ in range(2):
            world = tiny_demo(seed=33)
            rng = np.random.default_rng(1)
            cands, _ = world.dataset.sample_candidates(20, rng)
            r = select_location(world.dataset.objects, cands, tau=0.7)
            results.append((r.best_candidate.candidate_id, r.best_influence))
        assert results[0] == results[1]


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_examples_run(example, tmp_path):
    """Every example script must run cleanly as a subprocess.

    Runs in a temporary working directory so examples that write
    artefacts (SVGs) do not litter the repository.
    """
    proc = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=tmp_path,
        env=example_env(),
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip(), "examples must print something"
