"""Tests for the SVG visualisation module."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.prob import PowerLawPF
from repro.viz import SVGCanvas, render_scene
from repro.viz.scene import save_scene

from tests.helpers import make_candidates, make_objects

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg_text):
    return ET.fromstring(svg_text)


class TestSVGCanvas:
    def test_viewport_validation(self):
        with pytest.raises(ValueError):
            SVGCanvas(0, 0, 0, 10)
        with pytest.raises(ValueError):
            SVGCanvas(0, 0, 10, 10, width_px=10, margin_px=20)

    def test_world_to_pixel_orientation(self):
        canvas = SVGCanvas(0, 0, 10, 10, width_px=120, margin_px=10)
        x0, y0 = canvas.to_px(0, 0)
        x1, y1 = canvas.to_px(10, 10)
        assert x1 > x0
        assert y1 < y0  # y grows upward in world coords, downward in SVG

    def test_render_is_valid_xml(self):
        canvas = SVGCanvas(0, 0, 5, 5)
        canvas.circle(1, 1, 3)
        canvas.rect(0, 0, 2, 2)
        canvas.polyline([(0, 0), (1, 1), (2, 0)], closed=True)
        canvas.marker(3, 3)
        canvas.text(4, 4, "label & more")
        root = parse(canvas.render())
        tags = [child.tag for child in root]
        assert f"{SVG_NS}circle" in tags
        assert f"{SVG_NS}rect" in tags
        assert f"{SVG_NS}polygon" in tags

    def test_text_is_escaped(self):
        canvas = SVGCanvas(0, 0, 1, 1)
        canvas.text(0.5, 0.5, "<script>")
        root = parse(canvas.render())  # must not raise
        texts = [el.text for el in root.iter(f"{SVG_NS}text")]
        assert "<script>" in texts

    def test_save(self, tmp_path):
        canvas = SVGCanvas(0, 0, 1, 1)
        canvas.circle(0.5, 0.5, 2)
        out = canvas.save(tmp_path / "plot.svg")
        assert out.exists()
        parse(out.read_text())


class TestRenderScene:
    def test_scene_contains_all_layers(self, pf, rng):
        objects = make_objects(rng, 3, extent=10.0, n_range=(5, 10))
        candidates = make_candidates(rng, 6, extent=10.0)
        svg = render_scene(objects, candidates, pf, 0.7, best=candidates[0])
        root = parse(svg)
        circles = list(root.iter(f"{SVG_NS}circle"))
        rects = list(root.iter(f"{SVG_NS}rect"))
        polygons = list(root.iter(f"{SVG_NS}polygon"))
        # positions + candidates as circles; one MBR rect per object
        # (+ background); NIB polygons (+ IA when non-empty).
        total_positions = sum(o.n_positions for o in objects)
        assert len(circles) == total_positions + len(candidates)
        assert len(rects) >= len(objects)
        assert len(polygons) >= len(objects)

    def test_scene_without_regions(self, pf, rng):
        objects = make_objects(rng, 2, extent=5.0)
        candidates = make_candidates(rng, 3, extent=5.0)
        svg = render_scene(objects, candidates, pf, 0.7, show_regions=False)
        root = parse(svg)
        assert not list(root.iter(f"{SVG_NS}polygon"))

    def test_empty_objects_raise(self, pf, rng):
        with pytest.raises(ValueError):
            render_scene([], make_candidates(rng, 2), pf, 0.5)

    def test_save_scene(self, pf, rng, tmp_path):
        objects = make_objects(rng, 2, extent=5.0)
        candidates = make_candidates(rng, 3, extent=5.0)
        svg = render_scene(objects, candidates, pf, 0.7)
        out = save_scene(tmp_path / "scene.svg", svg)
        assert out.exists()
        assert out.read_text().startswith("<svg")

    def test_scene_dead_objects_tolerated(self, rng):
        # Objects uninfluenceable at this tau simply render no regions.
        from repro.prob import LinearPF

        pf = LinearPF(rho=0.5, scale=10.0)
        objects = make_objects(rng, 2, extent=5.0, n_range=(1, 1))
        candidates = make_candidates(rng, 2, extent=5.0)
        svg = render_scene(objects, candidates, pf, 0.9)
        parse(svg)
