"""Tests for the stability experiment, result JSON, and CLI subcommands."""

import json

import numpy as np
import pytest

import repro.experiments as ex
from repro.cli import main
from repro.core.naive import NaiveAlgorithm
from repro.prob import PowerLawPF

from tests.helpers import make_candidates, make_objects


class TestStabilityExperiment:
    def test_small_run_shape(self):
        r = ex.run_location_stability(
            dataset="F", n_candidates=60, rounds=3, noise_levels_km=(0.1,)
        )
        assert r.rounds == 3
        assert len(r.bootstrap_distances_km) == 3
        assert len(r.noise_distances_km) == 1
        assert 0.0 < r.modal_agreement <= 1.0
        assert "stability" in r.render().lower()

    def test_distances_nonnegative(self):
        r = ex.run_location_stability(
            dataset="F", n_candidates=50, rounds=2, noise_levels_km=()
        )
        assert all(d >= 0 for d in r.bootstrap_distances_km)


class TestResultSerialization:
    def test_round_trip_through_json(self, pf, rng, tmp_path):
        objects = make_objects(rng, 8)
        candidates = make_candidates(rng, 6)
        result = NaiveAlgorithm().select(objects, candidates, pf, 0.6)
        path = tmp_path / "result.json"
        result.save_json(path)
        loaded = json.loads(path.read_text())
        assert loaded["algorithm"] == "NA"
        assert loaded["best_influence"] == result.best_influence
        assert loaded["best_candidate"]["candidate_id"] == (
            result.best_candidate.candidate_id
        )
        assert loaded["influences"] == {
            str(k): v for k, v in result.influences.items()
        }
        assert loaded["instrumentation"]["pairs_total"] == (
            result.instrumentation.pairs_total
        )

    def test_to_dict_is_json_serialisable(self, pf, rng):
        objects = make_objects(rng, 4)
        candidates = make_candidates(rng, 3)
        result = NaiveAlgorithm().select(objects, candidates, pf, 0.6)
        json.dumps(result.to_dict())  # must not raise


class TestCLISubcommands:
    def test_demo(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "optimal location" in out

    def test_demo_with_svg(self, capsys, tmp_path):
        svg_path = tmp_path / "scene.svg"
        assert main(["demo", "--svg", str(svg_path)]) == 0
        assert svg_path.exists()
        assert svg_path.read_text().startswith("<svg")

    def test_csv_export(self, capsys, tmp_path):
        csv_path = tmp_path / "out.csv"
        assert main(["fig10-f", "--csv", str(csv_path)]) == 0
        assert csv_path.exists()
        assert "ia_fraction" in csv_path.read_text().splitlines()[0]

    def test_csv_export_unknown_experiment(self, capsys, tmp_path):
        assert main(["nope", "--csv", str(tmp_path / "x.csv")]) == 2

    def test_stability_listed(self, capsys):
        assert main(["list"]) == 0
        assert "stability" in capsys.readouterr().out
