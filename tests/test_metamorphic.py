"""Metamorphic tests: geometric transformations that must not change
the PRIME-LS answer.

The influence probability depends only on point-to-point distances, so
rigid motions of the whole scene (translation, rotation, reflection)
must leave every influence count unchanged — even though rotations
change every MBR and therefore exercise completely different pruning
decisions.  Scaling distances while rescaling the PF's distance unit is
likewise an invariant.  These are end-to-end correctness checks that no
unit test of a single component can provide.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.naive import NaiveAlgorithm
from repro.core.pinocchio import Pinocchio
from repro.core.pinocchio_vo import PinocchioVO
from repro.model import Candidate, MovingObject
from repro.prob import PowerLawPF

from tests.helpers import make_candidates, make_objects


def transform_scene(objects, candidates, matrix, offset):
    """Apply an affine map ``x -> R x + t`` to every coordinate."""
    new_objects = [
        MovingObject(o.object_id, o.positions @ matrix.T + offset)
        for o in objects
    ]
    new_candidates = [
        Candidate(c.candidate_id, *(matrix @ np.array([c.x, c.y]) + offset))
        for c in candidates
    ]
    return new_objects, new_candidates


def influence_table(objects, candidates, pf, tau, algo=None):
    algo = algo or Pinocchio()
    return algo.select(objects, candidates, pf, tau).influences


@pytest.fixture()
def scene(rng):
    return (
        make_objects(rng, 15, extent=30.0, n_range=(1, 25)),
        make_candidates(rng, 20, extent=30.0),
    )


class TestRigidMotionInvariance:
    def test_translation(self, pf, scene):
        objects, candidates = scene
        base = influence_table(objects, candidates, pf, 0.7)
        moved = transform_scene(
            objects, candidates, np.eye(2), np.array([123.4, -56.7])
        )
        assert influence_table(*moved, pf, 0.7) == base

    @pytest.mark.parametrize("angle_deg", [30, 45, 90, 137])
    def test_rotation(self, pf, scene, angle_deg):
        objects, candidates = scene
        base = influence_table(objects, candidates, pf, 0.7)
        theta = np.radians(angle_deg)
        rot = np.array(
            [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
        )
        rotated = transform_scene(objects, candidates, rot, np.zeros(2))
        assert influence_table(*rotated, pf, 0.7) == base

    def test_reflection(self, pf, scene):
        objects, candidates = scene
        base = influence_table(objects, candidates, pf, 0.7)
        mirror = np.array([[-1.0, 0.0], [0.0, 1.0]])
        mirrored = transform_scene(objects, candidates, mirror, np.zeros(2))
        assert influence_table(*mirrored, pf, 0.7) == base

    def test_rotation_preserved_for_vo(self, pf, scene):
        objects, candidates = scene
        vo = PinocchioVO()
        base = vo.select(objects, candidates, pf, 0.7).best_influence
        theta = np.radians(61.0)
        rot = np.array(
            [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
        )
        rotated = transform_scene(objects, candidates, rot, np.array([9.0, -4.0]))
        assert vo.select(*rotated, pf, 0.7).best_influence == base

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 1_000),
        angle=st.floats(0.0, 2 * np.pi),
        tx=st.floats(-1e3, 1e3),
        ty=st.floats(-1e3, 1e3),
        tau=st.floats(0.1, 0.9),
    )
    def test_rigid_motion_property(self, seed, angle, tx, ty, tau):
        pf = PowerLawPF()
        rng = np.random.default_rng(seed)
        objects = make_objects(rng, 8, extent=20.0, n_range=(1, 15))
        candidates = make_candidates(rng, 8, extent=20.0)
        base = influence_table(objects, candidates, pf, tau)
        rot = np.array(
            [[np.cos(angle), -np.sin(angle)], [np.sin(angle), np.cos(angle)]]
        )
        moved = transform_scene(objects, candidates, rot, np.array([tx, ty]))
        assert influence_table(*moved, pf, tau) == base


class TestUnitScalingInvariance:
    def test_rescaling_distances_and_pf(self, scene):
        # Measuring in metres instead of km with a correspondingly
        # rescaled PF must not change any influence count.
        objects, candidates = scene
        tau = 0.6
        km_pf = PowerLawPF(rho=0.9, lam=1.0, d0=1.0)
        base = influence_table(objects, candidates, km_pf, tau)
        scale = 1_000.0  # km -> m
        m_pf = PowerLawPF(rho=0.9, lam=1.0, d0=scale)
        # PF_m(d_m) = 0.9 (1000 + d_m)^-1 differs by a constant factor
        # 1000^-1 from PF_km(d_km); rho absorbs it only via a custom fn.
        from repro.prob import CallablePF

        m_pf = CallablePF(
            lambda d: km_pf(np.asarray(d) / scale), max_dist=1e9, name="metres"
        )
        scaled = transform_scene(
            objects, candidates, scale * np.eye(2), np.zeros(2)
        )
        assert influence_table(*scaled, m_pf, tau) == base


class TestPermutationInvariance:
    def test_object_order_irrelevant(self, pf, scene, rng):
        objects, candidates = scene
        base = influence_table(objects, candidates, pf, 0.7)
        shuffled = [objects[i] for i in rng.permutation(len(objects))]
        assert influence_table(shuffled, candidates, pf, 0.7) == base

    def test_position_order_irrelevant(self, pf, scene, rng):
        objects, candidates = scene
        base = influence_table(objects, candidates, pf, 0.7)
        reordered = [
            MovingObject(
                o.object_id, o.positions[rng.permutation(o.n_positions)]
            )
            for o in objects
        ]
        assert influence_table(reordered, candidates, pf, 0.7) == base

    def test_candidate_order_permutes_table(self, pf, scene):
        objects, candidates = scene
        base = influence_table(objects, candidates, pf, 0.7)
        reversed_cands = list(reversed(candidates))
        flipped = influence_table(objects, reversed_cands, pf, 0.7)
        m = len(candidates)
        for j in range(m):
            assert flipped[j] == base[m - 1 - j]


class TestDuplicationInvariants:
    def test_duplicating_an_object_doubles_its_contribution(self, pf, rng):
        objects = make_objects(rng, 6, extent=10.0)
        candidates = make_candidates(rng, 6, extent=10.0)
        base = influence_table(objects, candidates, pf, 0.6)
        clone = MovingObject(99, objects[0].positions)
        bigger = influence_table(objects + [clone], candidates, pf, 0.6)
        single = influence_table([objects[0]], candidates, pf, 0.6)
        for j in range(len(candidates)):
            assert bigger[j] == base[j] + single[j]

    def test_duplicate_candidates_get_equal_influence(self, pf, rng):
        objects = make_objects(rng, 8, extent=10.0)
        cand = make_candidates(rng, 1, extent=10.0)[0]
        twin = Candidate(1, cand.x, cand.y)
        table = influence_table(objects, [cand, twin], pf, 0.6)
        assert table[0] == table[1]
