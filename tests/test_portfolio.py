"""Tests for multi-location (portfolio) selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.naive import NaiveAlgorithm, exact_probability
from repro.core.portfolio import (
    exact_portfolio,
    greedy_portfolio,
    influence_bitsets,
)
from repro.prob import PowerLawPF

from tests.helpers import make_candidates, make_objects


class TestInfluenceBitsets:
    def test_matches_pairwise_probabilities(self, pf, rng):
        objects = make_objects(rng, 10)
        candidates = make_candidates(rng, 8)
        tau = 0.6
        masks = influence_bitsets(objects, candidates, pf, tau)
        assert len(masks) == 8
        for j, cand in enumerate(candidates):
            for i, obj in enumerate(objects):
                expected = exact_probability(obj, cand.x, cand.y, pf) >= tau - 1e-12
                assert bool(masks[j][i]) == expected

    def test_counts_match_naive(self, pf, rng):
        objects = make_objects(rng, 12)
        candidates = make_candidates(rng, 10)
        masks = influence_bitsets(objects, candidates, pf, 0.7)
        na = NaiveAlgorithm().select(objects, candidates, pf, 0.7)
        for j in range(10):
            assert int(np.count_nonzero(masks[j])) == na.influences[j]


class TestGreedyPortfolio:
    def test_k1_equals_single_best(self, pf, rng):
        objects = make_objects(rng, 15)
        candidates = make_candidates(rng, 10)
        chosen, covered = greedy_portfolio(objects, candidates, pf, 0.6, k=1)
        na = NaiveAlgorithm().select(objects, candidates, pf, 0.6)
        assert len(chosen) == 1
        assert covered == na.best_influence

    def test_coverage_monotone_in_k(self, pf, rng):
        objects = make_objects(rng, 20)
        candidates = make_candidates(rng, 12)
        coverages = [
            greedy_portfolio(objects, candidates, pf, 0.7, k=k)[1]
            for k in (1, 2, 4, 8)
        ]
        assert coverages == sorted(coverages)

    def test_stops_when_nothing_to_gain(self, pf, rng):
        # Far-away duplicate candidates add nothing: greedy stops early.
        objects = make_objects(rng, 10, extent=5.0)
        near = make_candidates(rng, 2, extent=5.0)
        far = [type(near[0])(10 + j, 1e5, 1e5) for j in range(5)]
        chosen, covered = greedy_portfolio(objects, near + far, pf, 0.5, k=6)
        assert all(j < 2 for j in chosen)

    def test_greedy_achieves_1_minus_1_over_e(self, pf, rng):
        # On small instances, compare to the exact optimum.
        for trial in range(5):
            trial_rng = np.random.default_rng(trial)
            objects = make_objects(trial_rng, 15, extent=25.0)
            candidates = make_candidates(trial_rng, 8, extent=25.0)
            __, greedy_cov = greedy_portfolio(objects, candidates, pf, 0.7, k=3)
            __, exact_cov = exact_portfolio(objects, candidates, pf, 0.7, k=3)
            assert greedy_cov >= (1 - 1 / np.e) * exact_cov - 1e-9
            assert greedy_cov <= exact_cov

    def test_k_validation(self, pf, rng):
        objects = make_objects(rng, 3)
        candidates = make_candidates(rng, 3)
        with pytest.raises(ValueError):
            greedy_portfolio(objects, candidates, pf, 0.5, k=0)
        with pytest.raises(ValueError):
            exact_portfolio(objects, candidates, pf, 0.5, k=0)

    def test_k_larger_than_m(self, pf, rng):
        objects = make_objects(rng, 8)
        candidates = make_candidates(rng, 3)
        chosen, covered = greedy_portfolio(objects, candidates, pf, 0.5, k=10)
        assert len(chosen) <= 3

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 500), k=st.integers(1, 4))
    def test_greedy_bound_property(self, seed, k):
        pf = PowerLawPF()
        rng = np.random.default_rng(seed)
        objects = make_objects(rng, 10, extent=20.0, n_range=(1, 10))
        candidates = make_candidates(rng, 6, extent=20.0)
        __, greedy_cov = greedy_portfolio(objects, candidates, pf, 0.7, k=k)
        __, exact_cov = exact_portfolio(objects, candidates, pf, 0.7, k=k)
        assert (1 - 1 / np.e) * exact_cov - 1e-9 <= greedy_cov <= exact_cov
