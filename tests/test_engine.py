"""The serving engine: cache correctness, parallel identity, metrics.

The load-bearing property throughout is *bit-identity*: a query served
from the engine's caches — or sharded across worker processes — must
return exactly what a fresh ``select_location`` call returns, down to
the full influence table and the logical work counters.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import QueryEngine, select_location
from repro.core.result import Instrumentation
from repro.engine.parallel import column_spans, fork_available
from repro.model import Candidate, MovingObject
from repro.prob import PowerLawPF

from .helpers import make_candidates, make_objects

ALGORITHMS = ["NA", "PIN", "PIN-VO", "PIN-VO*"]
#: logical (time-free) work counters that must replay exactly
COUNT_FIELDS = (
    "pairs_total",
    "pairs_pruned_ia",
    "pairs_pruned_nib",
    "pairs_validated",
    "dead_objects",
    "heap_pops",
)


def assert_same_result(got, want, *, counters: bool = False):
    assert got.algorithm == want.algorithm
    assert got.best_candidate.candidate_id == want.best_candidate.candidate_id
    assert got.best_influence == want.best_influence
    assert got.influences == want.influences
    if counters:
        for fld in COUNT_FIELDS:
            assert getattr(got.instrumentation, fld) == getattr(
                want.instrumentation, fld
            ), fld


@pytest.fixture(scope="module")
def world(demo_dataset):
    return demo_dataset.objects


@pytest.fixture(scope="module")
def candidates(demo_candidates):
    return demo_candidates[0][:20]


class TestEquivalence:
    """engine.query == fresh select_location, for every algorithm."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("tau", [0.5, 0.7, 0.9])
    def test_matches_fresh_solver(self, world, candidates, pf, algorithm, tau):
        engine = QueryEngine(world)
        got = engine.query(candidates, pf=pf, tau=tau, algorithm=algorithm)
        want = select_location(
            world, candidates, pf=pf, tau=tau, algorithm=algorithm
        )
        assert_same_result(got, want, counters=True)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_repeat_query_is_cache_hit_and_identical(
        self, world, candidates, pf, algorithm
    ):
        engine = QueryEngine(world)
        first = engine.query(candidates, pf=pf, tau=0.7, algorithm=algorithm)
        hits_before = engine.stats.hits
        second = engine.query(candidates, pf=pf, tau=0.7, algorithm=algorithm)
        assert_same_result(second, first, counters=True)
        assert engine.stats.hits > hits_before
        assert engine.stats.candidate_hits >= 1

    def test_equal_parameter_pf_instances_share_tables(
        self, world, candidates
    ):
        engine = QueryEngine(world)
        engine.query(candidates, pf=PowerLawPF(rho=0.9, lam=1.0), tau=0.7)
        assert engine.stats.table_misses == 1
        engine.query(candidates, pf=PowerLawPF(rho=0.9, lam=1.0), tau=0.7)
        assert engine.stats.table_hits == 1
        # Different parameters must NOT share a table.
        engine.query(candidates, pf=PowerLawPF(rho=0.8, lam=1.0), tau=0.7)
        assert engine.stats.table_misses == 2

    def test_pruning_cache_replays_counters(self, world, candidates, pf):
        engine = QueryEngine(world)
        first = engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN-VO")
        assert engine.stats.pruning_misses == 1
        second = engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN-VO")
        assert engine.stats.pruning_hits == 1
        assert_same_result(second, first, counters=True)
        # The hit skipped the pruning phase, so it reports no time there.
        assert second.instrumentation.pruning_seconds == 0.0

    def test_cache_info_reports_pruning_cache_size(
        self, world, candidates, pf
    ):
        # Regression: cache_info() used to omit the PIN-VO pruning
        # cache, the one cache warm PIN-VO traffic actually exercises.
        engine = QueryEngine(world)
        assert engine.cache_info()["prunings"] == 0
        engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN-VO")
        info = engine.cache_info()
        assert info["prunings"] == 1
        assert info["tables"] == 1
        engine.query(candidates, pf=pf, tau=0.8, algorithm="PIN-VO")
        assert engine.cache_info()["prunings"] == 2

    def test_rtree_reused_across_queries(self, world, candidates, pf):
        engine = QueryEngine(world)
        engine.query(
            candidates, pf=pf, tau=0.7, algorithm="PIN", use_rtree=True
        )
        assert engine.stats.rtree_misses == 1
        got = engine.query(
            candidates, pf=pf, tau=0.7, algorithm="PIN", use_rtree=True
        )
        assert engine.stats.rtree_hits == 1
        want = select_location(
            world, candidates, pf=pf, tau=0.7, algorithm="PIN", use_rtree=True
        )
        assert_same_result(got, want, counters=True)

    def test_rejects_bad_inputs(self, world, candidates, pf):
        engine = QueryEngine(world)
        with pytest.raises(ValueError):
            engine.query([], pf=pf, tau=0.7)
        with pytest.raises(ValueError):
            engine.query(candidates, pf=pf, tau=0.0)
        with pytest.raises(ValueError):
            engine.query(candidates, pf=pf, tau=1.0)
        with pytest.raises(ValueError):
            QueryEngine([])
        with pytest.raises(ValueError):
            QueryEngine(world, workers=-1)


@given(
    n_objects=st.integers(min_value=1, max_value=12),
    n_candidates=st.integers(min_value=1, max_value=8),
    tau=st.sampled_from([0.3, 0.7, 0.95]),
    algorithm=st.sampled_from(ALGORITHMS),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=25, deadline=None)
def test_property_engine_matches_fresh(
    n_objects, n_candidates, tau, algorithm, seed
):
    """Random worlds: cold and cached engine queries match select_location."""
    rng = np.random.default_rng(seed)
    objects = make_objects(rng, n_objects, n_range=(1, 8))
    candidates = make_candidates(rng, n_candidates)
    pf = PowerLawPF()
    want = select_location(
        objects, candidates, pf=pf, tau=tau, algorithm=algorithm
    )
    engine = QueryEngine(objects)
    assert_same_result(
        engine.query(candidates, pf=pf, tau=tau, algorithm=algorithm),
        want,
        counters=True,
    )
    # Re-query through the warmed caches — still identical.
    assert_same_result(
        engine.query(candidates, pf=pf, tau=tau, algorithm=algorithm),
        want,
        counters=True,
    )


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
class TestWorkers:
    """workers > 1 never changes any part of the result."""

    @pytest.mark.parametrize("algorithm", ["NA", "PIN", "PIN-VO", "PIN-VO*"])
    def test_sharded_equals_serial(self, world, candidates, pf, algorithm):
        serial = QueryEngine(world, workers=1)
        sharded = QueryEngine(world, workers=4)
        a = serial.query(candidates, pf=pf, tau=0.7, algorithm=algorithm)
        b = sharded.query(candidates, pf=pf, tau=0.7, algorithm=algorithm)
        assert_same_result(b, a, counters=True)
        # And again through the warmed caches on both sides.
        assert_same_result(
            sharded.query(candidates, pf=pf, tau=0.7, algorithm=algorithm),
            serial.query(candidates, pf=pf, tau=0.7, algorithm=algorithm),
            counters=True,
        )

    def test_worker_override_per_query(self, world, candidates, pf):
        engine = QueryEngine(world, workers=4)
        a = engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
        b = engine.query(
            candidates, pf=pf, tau=0.7, algorithm="PIN", workers=0
        )
        assert_same_result(b, a, counters=True)

    def test_scalar_naive_falls_back_to_serial(self, world, candidates, pf):
        engine = QueryEngine(world, workers=4)
        got = engine.query(
            candidates, pf=pf, tau=0.7, algorithm="NA", kernel="scalar"
        )
        want = select_location(
            world, candidates, pf=pf, tau=0.7, algorithm="NA", kernel="scalar"
        )
        assert_same_result(got, want, counters=True)

    def test_column_spans_partition_the_axis(self):
        for m in (1, 2, 7, 24, 100):
            for shards in (1, 2, 3, 8, 200):
                spans = column_spans(m, shards)
                assert spans[0][0] == 0 and spans[-1][1] == m
                for (_, hi), (lo, _) in zip(spans, spans[1:]):
                    assert hi == lo
                assert len(spans) <= min(shards, m)


class TestAdversarialWorlds:
    """Degenerate inputs where pruning/validation edge cases live."""

    def test_all_objects_dead(self, pf):
        # Single-position objects need P(0-distance) >= tau; the default
        # power-law PF caps at 0.9, so tau=0.99 kills every object.
        rng = np.random.default_rng(5)
        objects = make_objects(rng, 10, n_range=(1, 1))
        candidates = make_candidates(rng, 6)
        engine = QueryEngine(objects)
        for algorithm in ALGORITHMS:
            got = engine.query(
                candidates, pf=pf, tau=0.99, algorithm=algorithm
            )
            want = select_location(
                objects, candidates, pf=pf, tau=0.99, algorithm=algorithm
            )
            assert got.best_influence == 0
            assert_same_result(got, want, counters=True)

    def test_duplicate_candidate_coordinates(self, pf):
        rng = np.random.default_rng(6)
        objects = make_objects(rng, 15, n_range=(1, 6))
        base = make_candidates(rng, 5)
        # Clone the strongest-looking candidate under new (higher) ids.
        dupes = [
            Candidate(100 + i, base[0].x, base[0].y) for i in range(3)
        ]
        candidates = base + dupes
        engine = QueryEngine(objects)
        for algorithm in ALGORITHMS:
            got = engine.query(
                candidates, pf=pf, tau=0.5, algorithm=algorithm
            )
            want = select_location(
                objects, candidates, pf=pf, tau=0.5, algorithm=algorithm
            )
            assert_same_result(got, want)

    def test_single_object_single_candidate(self, pf):
        objects = [MovingObject(0, np.array([[1.0, 1.0]]))]
        candidates = [Candidate(0, 1.0, 1.0)]
        engine = QueryEngine(objects)
        for algorithm in ALGORITHMS:
            got = engine.query(
                candidates, pf=pf, tau=0.5, algorithm=algorithm
            )
            assert got.best_influence == 1
            assert got.influences == {0: 1}


class TestMetrics:
    """Per-query JSONL records carry timings and cache counters."""

    REQUIRED_KEYS = {
        "query", "algorithm", "tau", "pf", "candidates", "workers",
        "elapsed_seconds", "pruning_seconds", "validation_seconds",
        "pairs_total", "pairs_pruned_ia", "pairs_pruned_nib",
        "pairs_validated", "cache_hits", "cache_misses",
        "best_candidate", "best_influence",
    }

    def test_jsonl_record_per_query(self, world, candidates, pf, tmp_path):
        path = tmp_path / "metrics.jsonl"
        engine = QueryEngine(world, metrics_path=path)
        engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
        engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
        engine.query(candidates, pf=pf, tau=0.5, algorithm="NA")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == 3
        assert records == engine.metrics_log
        for record in records:
            assert self.REQUIRED_KEYS <= set(record)
        assert [r["query"] for r in records] == [0, 1, 2]
        # The repeat PIN query must show up as cache hits in its record.
        assert records[1]["cache_hits"] > records[0]["cache_hits"]
        assert records[1]["table_hits"] == 1

    def test_phase_seconds_populated(self, world, candidates, pf):
        engine = QueryEngine(world)
        pin = engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
        assert pin.instrumentation.pruning_seconds > 0.0
        assert pin.instrumentation.validation_seconds > 0.0
        na = engine.query(candidates, pf=pf, tau=0.7, algorithm="NA")
        assert na.instrumentation.validation_seconds > 0.0
        record = engine.metrics_log[0]
        assert record["pruning_seconds"] == pin.instrumentation.pruning_seconds
        assert (
            record["validation_seconds"]
            == pin.instrumentation.validation_seconds
        )

    def test_timings_also_flow_through_select_location(
        self, world, candidates, pf
    ):
        result = select_location(
            world, candidates, pf=pf, tau=0.7, algorithm="PIN-VO"
        )
        inst = result.instrumentation
        assert inst.pruning_seconds > 0.0
        assert inst.pruning_seconds + inst.validation_seconds <= (
            result.elapsed_seconds + 1e-6
        )


class TestInstrumentationMerge:
    def test_merge_adds_every_field(self):
        a = Instrumentation(pairs_total=10, pairs_validated=4)
        a.pruning_seconds = 0.5
        b = Instrumentation(pairs_total=3, pairs_validated=1, heap_pops=7)
        b.validation_seconds = 0.25
        a.merge(b)
        assert a.pairs_total == 13
        assert a.pairs_validated == 5
        assert a.heap_pops == 7
        assert a.pruning_seconds == 0.5
        assert a.validation_seconds == 0.25

    def test_phase_rejects_unknown_name(self):
        counters = Instrumentation()
        with pytest.raises(ValueError):
            with counters.phase("warmup"):
                pass
