"""Overload-resilience suite: admission, breakers, bounded caches.

The claims under test, matching ``docs/architecture.md``'s overload
and degradation-ladder semantics:

* admission control bounds in-flight work: at most ``max_inflight +
  max_queue_depth`` queries run per admission round, the excess is
  shed with a typed ``QueryShed`` outcome (never a silent drop — every
  shed emits a JSONL record), and the shedding policy decides *which*
  queries go,
* the pool → fork → serial degradation ladder is *lossless* and
  deterministic: repeated tier failures trip that tier's circuit
  breaker, later queries route to the next tier down, and every
  completed query stays bit-identical to fault-free serial execution —
  property-tested over random fault/overload schedules,
* every engine cache is a bounded LRU: results stay correct at any
  budget, evictions are counted and visible, and the in-memory metrics
  record list is capped while the JSONL file stays append-only,
* ``close()`` is terminal: double-close is a no-op, queries after
  close raise, and ``with`` blocks close the pool even when the body
  raises.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import QueryEngine, select_location
from repro.engine import (
    AdmissionController,
    BreakerConfig,
    CacheBudget,
    CircuitBreaker,
    DegradationLadder,
    FaultInjector,
    FaultSpec,
    LRUCache,
    QueryRequest,
    QueryShed,
    QueryShedError,
    SupervisorPolicy,
    TenantAdmission,
    TenantBudget,
    fork_available,
    pool_segments,
)
from repro.prob import PowerLawPF

from .helpers import make_candidates, make_objects
from .test_engine import assert_same_result

fork_only = pytest.mark.skipif(
    not fork_available(), reason="needs fork start method"
)

#: fast retry knobs so the suite doesn't sleep through real backoffs
FAST = SupervisorPolicy(max_retries=2, backoff_seconds=0.01)


@pytest.fixture(scope="module")
def world():
    rng = np.random.default_rng(7)
    return make_objects(rng, 18, n_range=(1, 8))


@pytest.fixture(scope="module")
def candidates():
    return make_candidates(np.random.default_rng(8), 8)


@pytest.fixture(scope="module")
def pf():
    return PowerLawPF(rho=0.9, lam=1.0)


@pytest.fixture(scope="module")
def serial_answer(world, candidates, pf):
    return select_location(
        world, candidates, pf=pf, tau=0.7, algorithm="PIN-VO"
    )


# ---------------------------------------------------------------------------
# Admission controller (pure units)
# ---------------------------------------------------------------------------
class TestAdmissionController:
    def test_queue_depth_defaults_to_inflight(self):
        ctl = AdmissionController(3)
        assert ctl.max_queue_depth == 3
        assert ctl.capacity == 6

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            AdmissionController(0)
        with pytest.raises(ValueError):
            AdmissionController(1, max_queue_depth=-1)
        with pytest.raises(ValueError):
            AdmissionController(1, policy="drop-everything")

    def test_try_acquire_release_bounds_inflight(self):
        ctl = AdmissionController(1, max_queue_depth=1)
        assert ctl.try_acquire()
        assert ctl.try_acquire()
        assert not ctl.try_acquire()  # capacity 2 reached
        ctl.release()
        assert ctl.try_acquire()
        ctl.release(2)
        assert ctl.inflight == 0
        assert ctl.report.offered == 4
        assert ctl.report.admitted == 3

    def test_phantom_load_occupies_capacity(self):
        ctl = AdmissionController(1, max_queue_depth=0)
        assert not ctl.try_acquire(phantom=1)
        assert ctl.free_slots(phantom=1) == 0
        assert ctl.try_acquire()

    def test_admit_batch_within_capacity_admits_all(self):
        ctl = AdmissionController(2)
        admitted, shed = ctl.admit_batch([0, 0, 0])
        assert admitted == [0, 1, 2] and shed == []
        assert ctl.inflight == 3  # caller owns the slots
        ctl.release(3)

    def test_reject_policy_keeps_the_oldest(self):
        ctl = AdmissionController(1, max_queue_depth=1, policy="reject")
        admitted, shed = ctl.admit_batch([0, 0, 0, 0])
        assert admitted == [0, 1]
        assert shed == [(2, "queue-full"), (3, "queue-full")]

    def test_oldest_policy_keeps_the_freshest(self):
        ctl = AdmissionController(1, max_queue_depth=1, policy="oldest")
        admitted, shed = ctl.admit_batch([0, 0, 0, 0])
        assert admitted == [2, 3]
        assert shed == [(0, "superseded"), (1, "superseded")]

    def test_by_priority_keeps_high_priorities_fifo_ties(self):
        ctl = AdmissionController(1, max_queue_depth=1, policy="by-priority")
        admitted, shed = ctl.admit_batch([1, 9, 1, 9])
        assert admitted == [1, 3]
        assert shed == [(0, "low-priority"), (2, "low-priority")]
        ctl.release(2)
        # FIFO among equal priorities: the earlier request wins
        admitted, _ = ctl.admit_batch([5, 5, 5])
        assert admitted == [0, 1]

    def test_snapshot_shape(self):
        ctl = AdmissionController(2, policy="oldest")
        ctl.try_acquire()
        snap = ctl.snapshot()
        assert snap["policy"] == "oldest"
        assert snap["inflight"] == 1
        assert snap["free_slots"] == 3
        assert snap["offered"] == 1 and snap["admitted"] == 1
        assert snap["over_releases"] == 0

    def test_over_release_is_clamped_and_counted(self):
        # Releasing more slots than are held must not mint phantom
        # capacity: a double release would let the controller admit
        # capacity + excess queries.
        ctl = AdmissionController(1, max_queue_depth=0)
        assert ctl.try_acquire()
        ctl.release()
        ctl.release()            # the lifecycle bug: one release too many
        assert ctl.inflight == 0
        assert ctl.over_releases == 1
        # capacity is still 1 — not widened by the bogus release
        assert ctl.try_acquire()
        assert not ctl.try_acquire()
        ctl.release(5)           # releases 1 held + 4 bogus
        assert ctl.inflight == 0
        assert ctl.over_releases == 5
        assert ctl.snapshot()["over_releases"] == 5
        with pytest.raises(ValueError):
            ctl.release(-1)


class TestTenantAdmission:
    def test_budget_validates_like_a_controller(self):
        with pytest.raises(ValueError):
            TenantBudget(max_inflight=0)
        with pytest.raises(ValueError):
            TenantBudget(max_inflight=1, policy="nope")
        budget = TenantBudget(max_inflight=2, max_queue_depth=1)
        assert budget.controller().capacity == 3

    def test_controllers_are_lazy_and_per_tenant(self):
        tenants = TenantAdmission(
            default=TenantBudget(max_inflight=1, max_queue_depth=0),
            budgets={"big": TenantBudget(max_inflight=8)},
        )
        assert tenants.tenants() == []
        assert tenants.controller("a") is tenants.controller("a")
        assert tenants.controller("big").max_inflight == 8
        assert tenants.controller("a").max_inflight == 1
        assert tenants.tenants() == ["a", "big"]

    def test_one_tenant_overflow_does_not_shed_the_other(self):
        tenants = TenantAdmission(
            default=TenantBudget(max_inflight=1, max_queue_depth=0),
        )
        assert tenants.try_acquire("bulk")
        assert not tenants.try_acquire("bulk")   # bulk's budget is full
        assert tenants.try_acquire("victim")     # victim's is not
        tenants.release("bulk")
        tenants.release("victim")
        snap = tenants.snapshot()
        assert snap["bulk"]["offered"] == 2
        assert snap["victim"]["offered"] == 1
        assert tenants.budget_for("anyone").max_inflight == 1


# ---------------------------------------------------------------------------
# Circuit breaker and ladder (fake clock — no sleeping)
# ---------------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        b = CircuitBreaker("t", BreakerConfig(failure_threshold=3))
        b.record_failure()
        b.record_failure()
        assert b.state == "closed" and b.allow()
        b.record_failure()
        assert b.state == "open" and not b.allow()
        assert b.trips == 1

    def test_success_resets_the_streak(self):
        b = CircuitBreaker("t", BreakerConfig(failure_threshold=2))
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state == "closed"

    def test_recovery_window_admits_a_probe(self):
        clock = FakeClock()
        b = CircuitBreaker(
            "t",
            BreakerConfig(failure_threshold=1, recovery_seconds=10.0),
            clock=clock,
        )
        b.record_failure()
        assert not b.allow()
        clock.now = 9.9
        assert not b.allow()
        clock.now = 10.0
        assert b.state == "half-open" and b.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        b = CircuitBreaker(
            "t",
            BreakerConfig(failure_threshold=1, recovery_seconds=1.0),
            clock=clock,
        )
        b.record_failure()
        clock.now = 1.0
        assert b.state == "half-open"
        b.record_failure()
        assert b.state == "open" and b.trips == 2

    def test_half_open_successes_close(self):
        clock = FakeClock()
        b = CircuitBreaker(
            "t",
            BreakerConfig(
                failure_threshold=1, recovery_seconds=1.0,
                half_open_successes=2,
            ),
            clock=clock,
        )
        b.record_failure()
        clock.now = 1.0
        b.record_success()
        assert b.state == "half-open"  # needs two clean probes
        b.record_success()
        assert b.state == "closed"

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerConfig(recovery_seconds=-1.0)
        with pytest.raises(ValueError):
            BreakerConfig(half_open_successes=0)


class TestDegradationLadder:
    def test_select_walks_down_and_serial_is_floor(self):
        clock = FakeClock()
        ladder = DegradationLadder(
            BreakerConfig(failure_threshold=1, recovery_seconds=100.0),
            clock=clock,
        )
        tiers = ("pool", "fork", "serial")
        assert ladder.select(tiers) == "pool"
        ladder.record("pool", ok=False)
        assert ladder.select(tiers) == "fork"
        ladder.record("fork", ok=False)
        assert ladder.select(tiers) == "serial"
        assert ladder.trips == 2
        # recovery walks back up
        clock.now = 100.0
        assert ladder.select(tiers) == "pool"

    def test_serial_records_are_noops(self):
        ladder = DegradationLadder(BreakerConfig(failure_threshold=1))
        ladder.record("serial", ok=False)
        assert ladder.trips == 0
        assert ladder.select(("serial",)) == "serial"


# ---------------------------------------------------------------------------
# LRU cache (pure units)
# ---------------------------------------------------------------------------
class TestLRUCache:
    def test_entry_budget_evicts_least_recently_used(self):
        c = LRUCache("t", max_entries=2)
        c["a"] = 1
        c["b"] = 2
        assert c.get("a") == 1  # refresh "a": "b" is now coldest
        c["c"] = 3
        assert "b" not in c and "a" in c and "c" in c
        assert c.evictions == 1

    def test_byte_budget_with_sizeof(self):
        c = LRUCache("t", max_bytes=10, sizeof=len)
        c["a"] = b"xxxx"
        c["b"] = b"xxxx"
        assert len(c) == 2 and c.current_bytes == 8
        c["c"] = b"xxxx"  # 12 bytes > 10: evict "a"
        assert "a" not in c and c.current_bytes == 8

    def test_oversized_sole_entry_is_kept(self):
        c = LRUCache("t", max_bytes=4, sizeof=len)
        c["huge"] = b"xxxxxxxx"
        assert "huge" in c and len(c) == 1

    def test_replacement_does_not_evict(self):
        c = LRUCache("t", max_entries=2)
        c["a"] = 1
        c["b"] = 2
        c["a"] = 10
        assert len(c) == 2 and c.evictions == 0 and c["a"] == 10

    def test_trim_and_occupancy(self):
        c = LRUCache("t", max_entries=8)
        for i in range(5):
            c[i] = i
        assert c.trim(max_entries=1) == 4
        occ = c.occupancy()
        assert occ["entries"] == 1 and occ["evictions"] == 4

    def test_mapping_protocol(self):
        c = LRUCache("t", max_entries=2)
        with pytest.raises(KeyError):
            c["missing"]
        assert c.get("missing", "d") == "d"
        c["k"] = None
        assert c.get("k", "d") is None  # cached None is not "missing"

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            LRUCache("t", max_entries=0)
        with pytest.raises(ValueError):
            LRUCache("t", max_bytes=8)  # byte budget needs sizeof
        with pytest.raises(ValueError):
            CacheBudget(max_records=0)


# ---------------------------------------------------------------------------
# Bounded caches inside the engine
# ---------------------------------------------------------------------------
class TestBoundedEngineCaches:
    def test_tiny_budget_evicts_but_stays_correct(
        self, world, candidates, pf
    ):
        budget = CacheBudget(max_tables=1, max_prunings=1, max_rtrees=1)
        engine = QueryEngine(world, cache_budget=budget)
        taus = [0.5, 0.7, 0.8, 0.5, 0.7, 0.8]
        for tau in taus:
            got = engine.query(
                candidates, pf=pf, tau=tau, algorithm="PIN-VO"
            )
            want = select_location(
                world, candidates, pf=pf, tau=tau, algorithm="PIN-VO"
            )
            assert_same_result(got, want, counters=True)
        # three tau tenants through one-slot caches: evictions happened
        assert engine.stats.table_evictions > 0
        assert engine.stats.pruning_evictions > 0
        info = engine.cache_info()
        assert info["tables"] == 1 and info["prunings"] == 1
        # and they are visible per query in the JSONL stream
        assert any(
            r["cache_evictions"] > 0 for r in engine.metrics_log
        )

    def test_pruning_byte_budget_is_enforced(self, world, candidates, pf):
        budget = CacheBudget(max_pruning_bytes=1)  # everything oversized
        engine = QueryEngine(world, cache_budget=budget)
        for tau in (0.5, 0.7, 0.8):
            engine.query(candidates, pf=pf, tau=tau, algorithm="PIN-VO")
        # one-entry floor: the sole entry survives, the rest evicted
        assert len(engine._prunings) == 1
        assert engine._prunings.evictions == 2

    def test_record_list_is_capped_but_file_is_not(
        self, world, candidates, pf, tmp_path
    ):
        path = tmp_path / "metrics.jsonl"
        engine = QueryEngine(
            world,
            metrics_path=path,
            cache_budget=CacheBudget(max_records=5),
        )
        for _ in range(8):
            engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
        assert len(engine.metrics_log) == 5
        assert engine.stats.records_dropped == 3
        # the JSONL file stays append-only: all 8 records, ids intact
        lines = [json.loads(x) for x in path.read_text().splitlines()]
        assert [r["query"] for r in lines] == list(range(8))
        # the in-memory copy holds the newest records
        assert [r["query"] for r in engine.metrics_log] == [3, 4, 5, 6, 7]


# ---------------------------------------------------------------------------
# close() lifecycle
# ---------------------------------------------------------------------------
class TestCloseLifecycle:
    def test_double_close_is_a_noop(self, world):
        engine = QueryEngine(world)
        engine.close()
        engine.close()
        assert engine.closed

    def test_query_after_close_raises(self, world, candidates, pf):
        engine = QueryEngine(world)
        engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
        with pytest.raises(RuntimeError, match="closed"):
            engine.query_batch([candidates], pf=pf, tau=0.7)

    def test_exit_closes_even_when_body_raises(self, world, candidates, pf):
        with pytest.raises(RuntimeError, match="boom"):
            with QueryEngine(world) as engine:
                engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
                raise RuntimeError("boom")
        assert engine.closed

    @fork_only
    def test_exit_tears_down_pool_when_body_raises(
        self, world, candidates, pf
    ):
        with pytest.raises(RuntimeError, match="boom"):
            with QueryEngine(world, workers=2, pool=True) as engine:
                engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
                assert pool_segments(), "pooled query published a segment"
                raise RuntimeError("boom")
        assert engine.closed
        assert pool_segments() == []


# ---------------------------------------------------------------------------
# Admission inside the engine
# ---------------------------------------------------------------------------
class TestEngineAdmission:
    def test_overload_fault_sheds_single_query(
        self, world, candidates, pf, tmp_path
    ):
        path = tmp_path / "metrics.jsonl"
        engine = QueryEngine(
            world,
            max_inflight=2,
            metrics_path=path,
            fault_injector=FaultInjector(
                [FaultSpec(kind="overload", times=1)]
            ),
        )
        with pytest.raises(QueryShedError) as exc:
            engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
        shed = exc.value.shed
        assert isinstance(shed, QueryShed)
        assert shed.reason == "queue-full" and shed.query_id == 0
        assert engine.stats.queries_shed == 1
        assert engine.admission.report.shed_count == 1
        record = json.loads(path.read_text().splitlines()[0])
        assert record["shed"] is True and record["query"] == 0
        # the fault fired once: the next query is admitted and served
        got = engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
        want = select_location(
            world, candidates, pf=pf, tau=0.7, algorithm="PIN"
        )
        assert_same_result(got, want, counters=True)
        assert engine.admission.inflight == 0

    def test_batch_sheds_over_capacity_with_typed_outcomes(
        self, world, candidates, pf
    ):
        engine = QueryEngine(world, max_inflight=1, max_queue_depth=1)
        results = engine.query_batch(
            [candidates] * 4, pf=pf, tau=0.7, algorithm="PIN"
        )
        assert len(results) == 4
        shed = [r for r in results if isinstance(r, QueryShed)]
        served = [r for r in results if not isinstance(r, QueryShed)]
        assert len(shed) == 2 and len(served) == 2
        # reject policy: the oldest requests are the ones served
        assert not isinstance(results[0], QueryShed)
        assert not isinstance(results[1], QueryShed)
        want = select_location(
            world, candidates, pf=pf, tau=0.7, algorithm="PIN"
        )
        for got in served:
            assert_same_result(got, want, counters=True)
        assert engine.stats.queries_shed == 2
        assert engine.admission.inflight == 0  # slots released
        # every query — served or shed — got a JSONL record
        assert len(engine.metrics_log) == 4

    def test_by_priority_batch_keeps_high_priorities(
        self, world, candidates, pf
    ):
        engine = QueryEngine(
            world, max_inflight=1, max_queue_depth=1,
            shed_policy="by-priority",
        )
        reqs = [
            QueryRequest(candidates, pf, 0.7, "PIN", priority=p)
            for p in (1, 9, 2, 8)
        ]
        results = engine.query_batch(reqs)
        assert isinstance(results[0], QueryShed)
        assert results[0].reason == "low-priority"
        assert isinstance(results[2], QueryShed)
        assert not isinstance(results[1], QueryShed)
        assert not isinstance(results[3], QueryShed)

    def test_oldest_batch_keeps_the_freshest(self, world, candidates, pf):
        engine = QueryEngine(
            world, max_inflight=1, max_queue_depth=0, shed_policy="oldest"
        )
        results = engine.query_batch(
            [candidates] * 3, pf=pf, tau=0.7, algorithm="PIN"
        )
        assert isinstance(results[0], QueryShed)
        assert results[0].reason == "superseded"
        assert isinstance(results[1], QueryShed)
        assert not isinstance(results[2], QueryShed)

    def test_queue_depth_without_inflight_rejects(self, world):
        with pytest.raises(ValueError, match="max_queue_depth"):
            QueryEngine(world, max_queue_depth=4)


# ---------------------------------------------------------------------------
# Parent-side fault kinds
# ---------------------------------------------------------------------------
class TestParentFaults:
    def test_parse_parent_kinds(self):
        assert FaultSpec.parse("overload").kind == "overload"
        assert FaultSpec.parse("memory-pressure").kind == "memory-pressure"

    def test_memory_pressure_trims_every_cache(self, world, candidates, pf):
        engine = QueryEngine(
            world,
            fault_injector=FaultInjector(
                [FaultSpec(kind="memory-pressure", query=3, times=1)]
            ),
        )
        for tau in (0.5, 0.7, 0.8):
            engine.query(candidates, pf=pf, tau=tau, algorithm="PIN-VO")
        assert len(engine._tables) == 3
        assert len(engine._prunings) == 3
        # query 3 arrives under injected memory pressure; it reuses the
        # hottest tenant (tau=0.8, the entry the trim keeps)
        got = engine.query(candidates, pf=pf, tau=0.8, algorithm="PIN-VO")
        want = select_location(
            world, candidates, pf=pf, tau=0.8, algorithm="PIN-VO"
        )
        assert_same_result(got, want, counters=True)
        assert len(engine._tables) == 1
        assert engine.stats.table_evictions >= 2
        assert engine.stats.pruning_evictions >= 2

    def test_times_bounds_parent_fires(self, world, candidates, pf):
        engine = QueryEngine(
            world,
            max_inflight=1,
            fault_injector=FaultInjector(
                [FaultSpec(kind="overload", times=2)]
            ),
        )
        for _ in range(2):
            with pytest.raises(QueryShedError):
                engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
        # fault budget spent: admitted again
        engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
        assert engine.stats.queries_shed == 2


# ---------------------------------------------------------------------------
# health()
# ---------------------------------------------------------------------------
class TestHealth:
    def test_health_shape_and_ok_status(self, world, candidates, pf):
        engine = QueryEngine(world, max_inflight=4)
        engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
        h = engine.health()
        assert h["status"] == "ok" and h["tier"] == "serial"
        assert set(h["breakers"]) == {"pool", "fork"}
        assert h["admission"]["max_inflight"] == 4
        assert set(h["caches"]) == {
            "tables", "candidate_sets", "rtrees", "prunings", "sketches"
        }
        assert h["records"]["kept"] == 1
        assert h["queries"] == 1 and h["queries_shed"] == 0

    def test_health_reports_closed(self, world):
        engine = QueryEngine(world)
        engine.close()
        h = engine.health()
        assert h["status"] == "closed"
        assert h["ready"] is False

    def test_open_engine_is_ready_even_when_degraded(self, world):
        # every exact tier down on an approx engine: the sketch floor
        # still answers, so the engine is degraded but *ready*
        engine = QueryEngine(world, approx=True)
        engine.ladder.trip_exact_tiers()
        h = engine.health()
        assert h["status"] == "degraded"
        assert h["tier"] == "approx"
        assert h["ready"] is True
        # a fully healthy engine is ready too
        fresh = QueryEngine(world)
        assert fresh.health()["ready"] is True
        fresh.close()
        engine.close()

    @fork_only
    def test_health_reports_degraded_when_fork_breaker_open(
        self, world, candidates, pf
    ):
        engine = QueryEngine(
            world,
            workers=2,
            supervisor_policy=FAST,
            breaker=BreakerConfig(failure_threshold=1),
            fault_injector=FaultInjector(
                [FaultSpec(kind="crash", query=0, times=99)]
            ),
        )
        engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
        h = engine.health()
        assert h["status"] == "degraded"
        assert h["tier"] == "serial"
        assert h["breakers"]["fork"]["state"] == "open"
        assert h["breaker_trips"] >= 1


# ---------------------------------------------------------------------------
# The degradation ladder inside the engine (fork path)
# ---------------------------------------------------------------------------
@fork_only
class TestEngineLadder:
    def test_tripped_fork_breaker_routes_next_queries_serial(
        self, world, candidates, pf
    ):
        engine = QueryEngine(
            world,
            workers=2,
            supervisor_policy=FAST,
            breaker=BreakerConfig(
                failure_threshold=1, recovery_seconds=1000.0
            ),
            fault_injector=FaultInjector(
                [FaultSpec(kind="crash", query=0, times=99)]
            ),
        )
        want = select_location(
            world, candidates, pf=pf, tau=0.7, algorithm="PIN"
        )
        # query 0: persistent crashes trip the fork breaker and the
        # query degrades to serial — bit-identical regardless
        got = engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
        assert_same_result(got, want, counters=True)
        assert engine.stats.breaker_trips >= 1
        assert engine.metrics_log[-1]["tier"] == "fork"
        # query 1: the ladder routes it straight to serial — no worker
        # dispatch, no retry cost, same answer
        got = engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
        assert_same_result(got, want, counters=True)
        assert engine.metrics_log[-1]["tier"] == "serial"
        assert engine.metrics_log[-1]["worker_failures"] == 0

    def test_breaker_self_heals_through_a_probe(self, world, candidates, pf):
        engine = QueryEngine(
            world,
            workers=2,
            supervisor_policy=FAST,
            breaker=BreakerConfig(
                failure_threshold=1, recovery_seconds=0.0
            ),
            fault_injector=FaultInjector(
                [FaultSpec(kind="crash", query=0, times=99)]
            ),
        )
        want = select_location(
            world, candidates, pf=pf, tau=0.7, algorithm="PIN"
        )
        engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
        assert engine.stats.breaker_trips >= 1
        # zero recovery window: the next query probes the fork tier,
        # runs clean (the fault was keyed to query 0), and closes it
        got = engine.query(candidates, pf=pf, tau=0.7, algorithm="PIN")
        assert_same_result(got, want, counters=True)
        assert engine.metrics_log[-1]["tier"] == "fork"
        assert engine.health()["breakers"]["fork"]["state"] == "closed"


# ---------------------------------------------------------------------------
# The lossless-ladder property: random fault/overload schedules
# ---------------------------------------------------------------------------
@fork_only
class TestLosslessLadderProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        kinds=st.lists(
            st.sampled_from(["crash", "exception", "none"]),
            min_size=3, max_size=3,
        ),
        threshold=st.integers(min_value=1, max_value=3),
        overload_at=st.integers(min_value=-1, max_value=2),
        tiny_caches=st.booleans(),
    )
    def test_completed_queries_bit_identical_under_any_schedule(
        self, world, candidates, pf, serial_answer,
        kinds, threshold, overload_at, tiny_caches,
    ):
        """Any schedule of worker faults, breaker trips, overload sheds
        and cache evictions leaves every *completed* query bit-identical
        to fault-free serial execution, and every shed query typed."""
        faults = [
            FaultSpec(kind=kind, query=q, times=99)
            for q, kind in enumerate(kinds)
            if kind != "none"
        ]
        if overload_at >= 0:
            faults.append(
                FaultSpec(kind="overload", query=overload_at, times=1)
            )
        engine = QueryEngine(
            world,
            workers=2,
            supervisor_policy=FAST,
            max_inflight=1,
            breaker=BreakerConfig(failure_threshold=threshold),
            cache_budget=(
                CacheBudget(max_tables=1, max_prunings=1, max_rtrees=1)
                if tiny_caches else None
            ),
            fault_injector=FaultInjector(faults),
        )
        completed = 0
        for q in range(3):
            try:
                got = engine.query(
                    candidates, pf=pf, tau=0.7, algorithm="PIN-VO"
                )
            except QueryShedError as exc:
                assert isinstance(exc.shed, QueryShed)
                continue
            completed += 1
            assert_same_result(got, serial_answer, counters=True)
        # the ladder is lossless: whatever was admitted, completed
        assert completed == engine.stats.queries - engine.stats.queries_shed
        assert engine.stats.queries == 3
        engine.close()
