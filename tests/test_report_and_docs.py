"""Tests for the report generator and documentation conventions."""

import importlib
import inspect
import pkgutil

import pytest

import repro


class TestReportGenerator:
    def test_generates_and_all_claims_pass(self, tmp_path):
        from repro.experiments.report import generate_report

        path, checks = generate_report(tmp_path / "REPORT.md", precision_groups=2)
        assert path.exists()
        text = path.read_text()
        assert "Claim scoreboard" in text
        assert len(checks) == 10
        failed = [c.claim for c in checks if not c.passed]
        assert not failed, f"reproduction claims failed: {failed}"

    def test_report_rows_render(self):
        from repro.experiments.report import ClaimCheck

        row = ClaimCheck("c", "m", True).row()
        assert row == "| c | m | PASS |"
        assert "FAIL" in ClaimCheck("c", "m", False).row()


def _public_members():
    """Every public module/class/function under repro."""
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(module_info.name)
        yield module_info.name, module
        for name, member in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(member, "__module__", None) != module_info.name:
                continue
            if inspect.isclass(member) or inspect.isfunction(member):
                yield f"{module_info.name}.{name}", member


class TestDocumentationConventions:
    def test_every_public_item_has_a_docstring(self):
        missing = [
            qualname
            for qualname, member in _public_members()
            if not (inspect.getdoc(member) or "").strip()
        ]
        assert not missing, f"undocumented public items: {missing}"

    def test_every_public_class_method_documented(self):
        missing = []
        for qualname, member in _public_members():
            if not inspect.isclass(member):
                continue
            for name, method in vars(member).items():
                if name.startswith("_") or not inspect.isfunction(method):
                    continue
                if not (inspect.getdoc(method) or "").strip():
                    missing.append(f"{qualname}.{name}")
        assert not missing, f"undocumented public methods: {missing}"
