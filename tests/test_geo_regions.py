"""Tests for the IA / NIB regions (Definitions 6-7 and the §4.3 areas)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import MBR, InfluenceArcsRegion, NonInfluenceBoundary
from repro.geo.regions import _circle_corner_area, expected_validation_fraction


def monte_carlo_area(contains, bbox, rng, samples=200_000):
    xs = rng.uniform(bbox.min_x, bbox.max_x, samples)
    ys = rng.uniform(bbox.min_y, bbox.max_y, samples)
    hits = np.count_nonzero(contains(np.column_stack([xs, ys])))
    return hits / samples * bbox.area


class TestCircleCornerArea:
    def test_zero_offsets_give_quarter_circle(self):
        assert _circle_corner_area(2.0, 0.0, 0.0) == pytest.approx(np.pi, rel=1e-9)

    def test_out_of_reach_is_zero(self):
        assert _circle_corner_area(1.0, 0.8, 0.8) == 0.0

    def test_matches_numeric_integration(self):
        r, a, b = 3.0, 1.0, 0.5
        us = np.linspace(a, np.sqrt(r * r - b * b), 100_001)
        numeric = np.trapezoid(np.sqrt(r * r - us * us) - b, us)
        assert _circle_corner_area(r, a, b) == pytest.approx(numeric, rel=1e-6)


class TestInfluenceArcsRegion:
    def test_empty_when_radius_below_half_diagonal(self):
        mbr = MBR(0, 0, 6, 8)  # half diagonal 5
        assert InfluenceArcsRegion(mbr, 4.9).is_empty()
        assert not InfluenceArcsRegion(mbr, 5.1).is_empty()

    def test_center_membership(self):
        mbr = MBR(0, 0, 6, 8)
        region = InfluenceArcsRegion(mbr, 5.0)
        assert region.contains(3, 4)  # center: maxDist == half diagonal == 5

    def test_contains_iff_maxdist_leq_radius(self):
        mbr = MBR(1, 2, 5, 4)
        region = InfluenceArcsRegion(mbr, 6.0)
        rng = np.random.default_rng(0)
        pts = rng.uniform(-5, 12, size=(500, 2))
        expected = mbr.max_dist_many(pts) <= 6.0
        np.testing.assert_array_equal(region.contains_many(pts), expected)

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            InfluenceArcsRegion(MBR(0, 0, 1, 1), -0.5)

    def test_area_zero_when_empty(self):
        assert InfluenceArcsRegion(MBR(0, 0, 6, 8), 3.0).area() == 0.0

    def test_area_matches_monte_carlo(self):
        mbr = MBR(0, 0, 4, 2)
        region = InfluenceArcsRegion(mbr, 4.0)
        rng = np.random.default_rng(1)
        bbox = mbr.expanded(4.0)
        mc = monte_carlo_area(region.contains_many, bbox, rng)
        assert region.area() == pytest.approx(mc, rel=0.02)

    def test_area_of_point_mbr_is_circle(self):
        region = InfluenceArcsRegion(MBR(1, 1, 1, 1), 2.0)
        assert region.area() == pytest.approx(np.pi * 4.0, rel=1e-9)

    def test_boundary_points_lie_on_level_set(self):
        mbr = MBR(0, 0, 4, 2)
        region = InfluenceArcsRegion(mbr, 4.0)
        boundary = region.boundary(samples_per_arc=32)
        assert boundary.shape[0] == 4 * 32
        max_d = mbr.max_dist_many(boundary)
        np.testing.assert_allclose(max_d, 4.0, atol=1e-9)

    def test_boundary_empty_region(self):
        assert InfluenceArcsRegion(MBR(0, 0, 6, 8), 1.0).boundary().size == 0

    @settings(max_examples=40)
    @given(
        st.floats(0.1, 10), st.floats(0.1, 10), st.floats(0.05, 20),
        st.floats(-25, 25), st.floats(-25, 25),
    )
    def test_ia_subset_of_nib(self, w, h, radius, qx, qy):
        mbr = MBR(0, 0, w, h)
        ia = InfluenceArcsRegion(mbr, radius)
        nib = NonInfluenceBoundary(mbr, radius)
        if ia.contains(qx, qy):
            assert nib.contains(qx, qy)


class TestNonInfluenceBoundary:
    def test_contains_iff_mindist_leq_radius(self):
        mbr = MBR(1, 2, 5, 4)
        region = NonInfluenceBoundary(mbr, 3.0)
        rng = np.random.default_rng(2)
        pts = rng.uniform(-8, 14, size=(500, 2))
        expected = mbr.min_dist_many(pts) <= 3.0
        np.testing.assert_array_equal(region.contains_many(pts), expected)

    def test_inside_mbr_always_contained(self):
        region = NonInfluenceBoundary(MBR(0, 0, 2, 2), 0.5)
        assert region.contains(1, 1)

    def test_area_formula(self):
        # S_N = pi r^2 + wh + 2(w+h)r  (paper §4.3)
        region = NonInfluenceBoundary(MBR(0, 0, 4, 2), 1.5)
        expected = np.pi * 1.5**2 + 8 + 2 * 6 * 1.5
        assert region.area() == pytest.approx(expected, rel=1e-12)

    def test_area_matches_monte_carlo(self):
        mbr = MBR(0, 0, 3, 5)
        region = NonInfluenceBoundary(mbr, 2.0)
        rng = np.random.default_rng(3)
        mc = monte_carlo_area(region.contains_many, mbr.expanded(2.0), rng)
        assert region.area() == pytest.approx(mc, rel=0.02)

    def test_bounding_mbr(self):
        region = NonInfluenceBoundary(MBR(1, 1, 2, 2), 0.5)
        assert region.bounding_mbr().as_tuple() == (0.5, 0.5, 2.5, 2.5)

    def test_boundary_on_level_set(self):
        mbr = MBR(0, 0, 4, 2)
        region = NonInfluenceBoundary(mbr, 2.5)
        boundary = region.boundary(samples_per_arc=16)
        min_d = mbr.min_dist_many(boundary)
        np.testing.assert_allclose(min_d, 2.5, atol=1e-9)

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            NonInfluenceBoundary(MBR(0, 0, 1, 1), -1.0)


class TestValidationFraction:
    def test_nonnegative(self):
        assert expected_validation_fraction(MBR(0, 0, 1, 1), 0.1) >= 0.0

    def test_equals_area_difference(self):
        mbr = MBR(0, 0, 2, 3)
        radius = 4.0
        ia = InfluenceArcsRegion(mbr, radius).area()
        nib = NonInfluenceBoundary(mbr, radius).area()
        assert expected_validation_fraction(mbr, radius) == pytest.approx(nib - ia)
