"""Tests for continuous trajectories and their discretisation."""

import numpy as np
import pytest

from repro.model.trajectory import Trajectory, daily_commuter_trajectory


@pytest.fixture()
def simple_trajectory():
    return Trajectory(
        0,
        times=np.array([0.0, 1.0, 3.0]),
        waypoints=np.array([[0.0, 0.0], [2.0, 0.0], [2.0, 4.0]]),
    )


class TestTrajectory:
    def test_validation(self):
        with pytest.raises(ValueError):
            Trajectory(0, np.array([0.0]), np.array([[0.0, 0.0]]))
        with pytest.raises(ValueError):
            Trajectory(0, np.array([0.0, 0.0]), np.zeros((2, 2)))  # not increasing
        with pytest.raises(ValueError):
            Trajectory(0, np.array([0.0, 1.0]), np.zeros((3, 2)))  # misaligned

    def test_position_at_waypoints(self, simple_trajectory):
        np.testing.assert_allclose(simple_trajectory.position_at(0.0), [0, 0])
        np.testing.assert_allclose(simple_trajectory.position_at(1.0), [2, 0])
        np.testing.assert_allclose(simple_trajectory.position_at(3.0), [2, 4])

    def test_linear_interpolation(self, simple_trajectory):
        np.testing.assert_allclose(simple_trajectory.position_at(0.5), [1, 0])
        np.testing.assert_allclose(simple_trajectory.position_at(2.0), [2, 2])

    def test_clamping_outside_span(self, simple_trajectory):
        np.testing.assert_allclose(simple_trajectory.position_at(-5.0), [0, 0])
        np.testing.assert_allclose(simple_trajectory.position_at(99.0), [2, 4])

    def test_positions_at_vectorised(self, simple_trajectory):
        ts = np.array([0.0, 0.5, 2.0])
        pts = simple_trajectory.positions_at(ts)
        assert pts.shape == (3, 2)
        np.testing.assert_allclose(pts[1], [1, 0])

    def test_duration_and_length(self, simple_trajectory):
        assert simple_trajectory.duration == 3.0
        # Path: 2 km east then 4 km north.
        assert simple_trajectory.length_km(samples=1001) == pytest.approx(6.0, rel=1e-3)

    def test_resample_counts_and_span(self, simple_trajectory):
        obj = simple_trajectory.resample(7)
        assert obj.n_positions == 7
        np.testing.assert_allclose(obj.positions[0], [0, 0])
        np.testing.assert_allclose(obj.positions[-1], [2, 4])

    def test_resample_validation(self, simple_trajectory):
        with pytest.raises(ValueError):
            simple_trajectory.resample(0)
        with pytest.raises(ValueError):
            simple_trajectory.resample(5, jitter_km=0.1)  # rng required

    def test_resample_with_jitter(self, simple_trajectory):
        rng = np.random.default_rng(0)
        obj = simple_trajectory.resample(20, jitter_km=0.1, rng=rng)
        clean = simple_trajectory.resample(20)
        assert not np.allclose(obj.positions, clean.positions)
        # Jitter is small: positions stay near the path.
        assert np.max(np.abs(obj.positions - clean.positions)) < 1.0

    def test_dense_resampling_converges(self, simple_trajectory):
        # Increasing the sampling density keeps the MBR stable.
        coarse = simple_trajectory.resample(8).mbr
        fine = simple_trajectory.resample(512).mbr
        assert abs(coarse.area - fine.area) / fine.area < 0.1


class TestCommuterTrajectory:
    def test_periodic_structure(self):
        rng = np.random.default_rng(5)
        traj = daily_commuter_trajectory(0, (0.0, 0.0), (10.0, 0.0), rng, days=3)
        assert traj.duration >= 24.0 * 2
        # At 3am the commuter is home-ish; at noon work-ish.
        home_pos = traj.position_at(24.0 + 3.0)
        work_pos = traj.position_at(24.0 + 12.0)
        assert np.hypot(*home_pos) < 2.0
        assert np.hypot(work_pos[0] - 10.0, work_pos[1]) < 2.0

    def test_days_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            daily_commuter_trajectory(0, (0, 0), (1, 1), rng, days=0)

    def test_resamples_into_moving_object(self):
        rng = np.random.default_rng(6)
        traj = daily_commuter_trajectory(1, (0.0, 0.0), (8.0, 3.0), rng)
        obj = traj.resample(48)
        assert obj.object_id == 1
        assert obj.n_positions == 48
