"""Tests for the ASCII chart helpers."""

import pytest

from repro.experiments.ascii_chart import bar_chart, sparkline


class TestBarChart:
    def test_scales_to_peak(self):
        out = bar_chart(["a", "b"], [1.0, 0.5], width=4)
        lines = out.splitlines()
        assert lines[0].count("█") == 4
        assert lines[1].count("█") == 2

    def test_title(self):
        out = bar_chart(["x"], [1.0], title="T")
        assert out.splitlines()[0] == "T"

    def test_labels_aligned(self):
        out = bar_chart(["a", "long-label"], [1.0, 1.0], width=3)
        lines = out.splitlines()
        assert lines[0].index("█") == lines[1].index("█")

    def test_zero_values_ok(self):
        out = bar_chart(["z"], [0.0], width=5)
        assert "█" not in out

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], width=0)


class TestSparkline:
    def test_monotone_ramp(self):
        out = sparkline([0, 1, 2, 3])
        assert out[0] == "▁"
        assert out[-1] == "█"
        assert len(out) == 4

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            sparkline([])
