"""Approximate-tier suite: the engine's sketch-serving floor.

The claims under test, matching ``docs/architecture.md``'s ladder
semantics and ``docs/observability.md``'s schema:

* an ``approx=True`` engine never sheds an approx-capable query:
  admission overflow (including the injected ``overload`` phantom
  fault and batch admission rounds) is answered from the influence
  sketch instead — labelled, bounded, and within its advertised error,
* the ``exact-down`` parent fault force-opens every exact tier's
  breaker and the ladder bottoms out at the approx floor (reason
  ``"breakers"``) instead of serial,
* engines without ``approx=True`` are completely unchanged: overload
  still sheds, the ladder floor is serial, serial has no breaker,
* observability keeps up: JSONL records carry ``quality``/
  ``error_bound``/``approx_reason``, the ``pinls_approx_*`` metric
  series exist, sketch cache traffic is counted, and approx queries
  trace ``sketch``/``estimate`` spans.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import QueryEngine
from repro.engine import (
    EXACT_TIERS,
    TIERS,
    CacheBudget,
    DegradationLadder,
    FaultInjector,
    FaultSpec,
    QueryShedError,
    read_trace_file,
)
from repro.prob import PowerLawPF

from .helpers import make_candidates, make_objects

TAU = 0.7


@pytest.fixture(scope="module")
def fleet():
    rng = np.random.default_rng(21)
    return make_objects(rng, 300, n_range=(2, 10))


@pytest.fixture(scope="module")
def candidates():
    return make_candidates(np.random.default_rng(22), 15)


def overload_engine(fleet, query, **kwargs):
    """An approx engine whose admission refuses query id ``query``."""
    return QueryEngine(
        fleet,
        approx=True,
        approx_k=64,
        max_inflight=1,
        fault_injector=FaultInjector(
            [FaultSpec(kind="overload", query=query, times=1)]
        ),
        **kwargs,
    )


# ----------------------------------------------------------------------
# Tier constants and ladder shape
# ----------------------------------------------------------------------
def test_tier_constants():
    assert TIERS == ("pool", "fork", "serial", "approx")
    assert EXACT_TIERS == ("pool", "fork", "serial")


def test_ladder_floor_without_approx():
    ladder = DegradationLadder()
    assert ladder.floor == "serial"
    assert "serial" not in ladder.breakers  # serial never breaks
    assert ladder.select(("serial",)) == "serial"


def test_ladder_floor_with_approx():
    ladder = DegradationLadder(approx_floor=True)
    assert ladder.floor == "approx"
    assert set(ladder.breakers) == set(EXACT_TIERS)
    ladder.trip_exact_tiers()
    assert all(state == "open" for state in ladder.states().values())
    assert ladder.select(("pool", "fork", "serial", "approx")) == "approx"
    # force_open of an already-open breaker must not re-count the trip
    trips = ladder.trips
    ladder.trip_exact_tiers()
    assert ladder.trips == trips


# ----------------------------------------------------------------------
# Overload -> approx instead of shed
# ----------------------------------------------------------------------
def test_overload_answers_approx(fleet, candidates):
    pf = PowerLawPF()
    engine = overload_engine(fleet, query=1)
    try:
        exact = engine.query(candidates, pf=pf, tau=TAU, algorithm="PIN")
        approx = engine.query(candidates, pf=pf, tau=TAU, algorithm="PIN")
        assert engine.stats.queries_shed == 0
        assert engine.stats.approx_queries == 1
        assert exact.quality == "exact" and exact.error_bound is None
        assert approx.quality == "approx"
        assert approx.error_bound is not None and approx.error_bound > 0
        err = max(
            abs(approx.influences[j] - exact.influences[j])
            for j in range(len(candidates))
        )
        assert err <= approx.error_bound
        record = engine.metrics_log[-1]
        assert record["tier"] == "approx"
        assert record["quality"] == "approx"
        assert record["approx_reason"] == "overload"
        assert record["error_bound"] == pytest.approx(approx.error_bound)
        exact_record = engine.metrics_log[-2]
        assert exact_record["quality"] == "exact"
        assert exact_record["error_bound"] is None
        assert exact_record["approx_reason"] is None
    finally:
        engine.close()


def test_without_approx_overload_still_sheds(fleet, candidates):
    engine = QueryEngine(
        fleet,
        max_inflight=1,
        fault_injector=FaultInjector(
            [FaultSpec(kind="overload", query=0, times=1)]
        ),
    )
    try:
        with pytest.raises(QueryShedError):
            engine.query(candidates, tau=TAU)
        assert engine.stats.queries_shed == 1
    finally:
        engine.close()


def test_batch_overflow_answered_approx(fleet, candidates):
    pf = PowerLawPF()
    engine = overload_engine(fleet, query=None)  # phantom on the batch
    engine.fault_injector = FaultInjector(
        [FaultSpec(kind="overload", query=None, times=1)]
    )
    try:
        out = engine.query_batch(
            [candidates, candidates], pf=pf, tau=TAU, algorithm="PIN"
        )
        assert engine.stats.queries_shed == 0
        assert all(hasattr(r, "best_candidate") for r in out)
        assert engine.stats.approx_queries == len(out)
    finally:
        engine.close()


# ----------------------------------------------------------------------
# exact-down -> approx via breakers
# ----------------------------------------------------------------------
def test_exact_down_routes_to_approx_floor(fleet, candidates):
    pf = PowerLawPF()
    engine = QueryEngine(
        fleet,
        approx=True,
        approx_k=64,
        fault_injector=FaultInjector([FaultSpec.parse("exact-down::0")]),
    )
    try:
        result = engine.query(candidates, pf=pf, tau=TAU, algorithm="PIN-VO")
        assert result.quality == "approx"
        record = engine.metrics_log[-1]
        assert record["tier"] == "approx"
        assert record["approx_reason"] == "breakers"
        health = engine.health()
        assert health["tier"] == "approx"
        assert health["status"] == "degraded"
        assert engine.stats.breaker_trips == len(EXACT_TIERS)
    finally:
        engine.close()


def test_exact_down_parses():
    spec = FaultSpec.parse("exact-down::3")
    assert spec.kind == "exact-down"
    assert spec.query == 3


def test_approx_tier_result_matches_exact_when_exhaustive(fleet, candidates):
    """Default k exceeds this fleet: the approx tier answers exactly."""
    pf = PowerLawPF()
    engine = QueryEngine(fleet, approx=True)  # default k=1024 >= 300
    try:
        engine.ladder.trip_exact_tiers()
        approx = engine.query(candidates, pf=pf, tau=TAU, algorithm="PIN")
        assert approx.quality == "exact"  # honest label: bound is 0
        assert approx.error_bound == 0.0
        assert engine.stats.approx_queries == 1
    finally:
        engine.close()


# ----------------------------------------------------------------------
# Observability: caches, metrics, traces
# ----------------------------------------------------------------------
def test_sketch_cache_reuse_and_metrics(fleet, candidates):
    pf = PowerLawPF()
    engine = overload_engine(fleet, query=None)
    engine.fault_injector = FaultInjector([
        FaultSpec(kind="overload", query=1, times=1),
        FaultSpec(kind="overload", query=2, times=1),
    ])
    try:
        for _ in range(3):
            engine.query(candidates, pf=pf, tau=TAU, algorithm="PIN")
        assert engine.stats.sketch_misses == 1  # built once
        assert engine.stats.sketch_hits == 1  # second approx query reuses
        info = engine.cache_info()
        assert info["sketches"] == 1
        text = engine.metrics_text()
        assert "pinls_approx_queries_total" in text
        assert 'reason="overload"' in text
        assert "pinls_sketch_builds_total 1" in text
        assert 'pinls_cache_hits_total{cache="sketches"} 1' in text
        assert "pinls_approx_latency_seconds" in text
        assert "pinls_approx_error_bound" in text
    finally:
        engine.close()


def test_sketch_cache_is_bounded(fleet, candidates):
    pf = PowerLawPF()
    engine = QueryEngine(
        fleet,
        approx=True,
        approx_k=32,
        cache_budget=CacheBudget(max_sketches=1),
    )
    try:
        engine.ladder.trip_exact_tiers()
        engine.query(candidates, pf=pf, tau=0.6, algorithm="PIN")
        engine.query(candidates, pf=pf, tau=0.8, algorithm="PIN")
        assert len(engine._sketches) == 1
        assert engine.stats.sketch_evictions == 1
        assert engine.health()["caches"]["sketches"]["evictions"] == 1
    finally:
        engine.close()


def test_approx_query_traces_sketch_and_estimate(fleet, candidates, tmp_path):
    pf = PowerLawPF()
    trace_file = tmp_path / "traces.jsonl"
    engine = overload_engine(fleet, query=0, trace_path=trace_file)
    try:
        engine.query(candidates, pf=pf, tau=TAU, algorithm="PIN")
    finally:
        engine.close()
    traces = read_trace_file(trace_file)
    assert len(traces) == 1
    names = [child["name"] for child in traces[0]["children"]]
    assert "sketch" in names and "estimate" in names
    sketch_span = next(
        c for c in traces[0]["children"] if c["name"] == "sketch"
    )
    assert sketch_span["attrs"]["k"] == 64
    assert sketch_span["attrs"]["cached"] is False
    assert traces[0]["attrs"]["tier"] == "approx"


def test_approx_jsonl_schema(fleet, candidates, tmp_path):
    pf = PowerLawPF()
    metrics_file = tmp_path / "metrics.jsonl"
    engine = overload_engine(fleet, query=0, metrics_path=metrics_file)
    try:
        engine.query(candidates, pf=pf, tau=TAU, algorithm="PIN")
    finally:
        engine.close()
    lines = metrics_file.read_text().splitlines()
    record = json.loads(lines[-1])
    assert record["schema"] == 2
    assert record["tier"] == "approx"
    assert record["quality"] == "approx"
    assert record["approx_reason"] == "overload"
    assert record["error_bound"] > 0
    assert record["shed"] is False


def test_engine_validates_approx_knobs(fleet):
    with pytest.raises(ValueError):
        QueryEngine(fleet, approx=True, approx_k=0)
    with pytest.raises(ValueError):
        QueryEngine(fleet, approx=True, approx_delta=1.5)
