"""Tests for the small evaluation-harness utilities and result types."""

import time

import pytest

from repro.core.result import Instrumentation, LSResult
from repro.eval.harness import ExperimentTimer, mean_and_std, run_repeated
from repro.model import Candidate


class TestExperimentTimer:
    def test_measures_elapsed(self):
        with ExperimentTimer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.01

    def test_elapsed_nan_inside_block(self):
        with ExperimentTimer() as t:
            assert t.elapsed != t.elapsed  # NaN until the block exits


class TestMeanAndStd:
    def test_values(self):
        mean, std = mean_and_std([2.0, 4.0, 6.0])
        assert mean == pytest.approx(4.0)
        assert std == pytest.approx((8 / 3) ** 0.5)

    def test_single_value(self):
        mean, std = mean_and_std([7.0])
        assert mean == 7.0
        assert std == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_and_std([])


class TestRunRepeated:
    def test_passes_round_index(self):
        assert run_repeated(lambda i: i * 2, 4) == [0, 2, 4, 6]

    def test_validation(self):
        with pytest.raises(ValueError):
            run_repeated(lambda i: i, 0)


class TestInstrumentation:
    def test_pruned_fraction(self):
        inst = Instrumentation(
            pairs_total=100, pairs_pruned_ia=40, pairs_pruned_nib=30
        )
        assert inst.pruned_fraction() == pytest.approx(0.7)

    def test_pruned_fraction_empty(self):
        assert Instrumentation().pruned_fraction() == 0.0

    def test_position_savings(self):
        inst = Instrumentation(positions_total=200, positions_evaluated=50)
        assert inst.position_savings() == pytest.approx(0.75)

    def test_position_savings_empty(self):
        assert Instrumentation().position_savings() == 0.0


class TestLSResult:
    def _result(self):
        return LSResult(
            algorithm="X",
            best_candidate=Candidate(0, 0.0, 0.0),
            best_influence=9,
            influences={0: 9, 1: 3, 2: 9, 3: 1},
            elapsed_seconds=0.0,
        )

    def test_ranking_order_and_tiebreak(self):
        ranking = self._result().ranking()
        assert ranking == [(0, 9), (2, 9), (1, 3), (3, 1)]

    def test_top_k(self):
        assert self._result().top_k(2) == [0, 2]
        assert self._result().top_k(10) == [0, 2, 1, 3]
