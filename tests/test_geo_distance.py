"""Tests for repro.geo.distance."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.distance import (
    EARTH_RADIUS_KM,
    euclidean,
    euclidean_many,
    haversine,
    haversine_many,
    pairwise_euclidean,
    project_lonlat,
    unproject_xy,
)

finite_coord = st.floats(-1e3, 1e3, allow_nan=False)


class TestEuclidean:
    def test_scalar_345(self):
        assert euclidean(0, 0, 3, 4) == 5.0

    def test_many_matches_scalar(self):
        rng = np.random.default_rng(0)
        xy = rng.uniform(-10, 10, size=(50, 2))
        d = euclidean_many(xy, 1.0, -2.0)
        for i in range(50):
            assert d[i] == pytest.approx(euclidean(xy[i, 0], xy[i, 1], 1.0, -2.0))

    def test_pairwise_shape_and_values(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 3.0], [0.0, 4.0], [3.0, 4.0]])
        d = pairwise_euclidean(a, b)
        assert d.shape == (2, 3)
        assert d[0, 0] == pytest.approx(3.0)
        assert d[0, 2] == pytest.approx(5.0)

    @given(finite_coord, finite_coord, finite_coord, finite_coord)
    def test_symmetry(self, x1, y1, x2, y2):
        assert euclidean(x1, y1, x2, y2) == euclidean(x2, y2, x1, y1)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine(103.8, 1.35, 103.8, 1.35) == 0.0

    def test_one_degree_longitude_at_equator(self):
        d = haversine(0.0, 0.0, 1.0, 0.0)
        assert d == pytest.approx(2 * math.pi * EARTH_RADIUS_KM / 360, rel=1e-6)

    def test_one_degree_latitude(self):
        d = haversine(10.0, 45.0, 10.0, 46.0)
        assert d == pytest.approx(2 * math.pi * EARTH_RADIUS_KM / 360, rel=1e-6)

    def test_antipodal_is_half_circumference(self):
        d = haversine(0.0, 0.0, 180.0, 0.0)
        assert d == pytest.approx(math.pi * EARTH_RADIUS_KM, rel=1e-6)

    def test_many_matches_scalar(self):
        lonlat = np.array([[103.8, 1.35], [103.9, 1.30], [104.0, 1.40]])
        d = haversine_many(lonlat, 103.85, 1.32)
        for i in range(3):
            assert d[i] == pytest.approx(
                haversine(lonlat[i, 0], lonlat[i, 1], 103.85, 1.32)
            )


class TestProjection:
    def test_round_trip(self):
        lonlat = np.array([[103.8, 1.35], [103.95, 1.20], [103.60, 1.48]])
        xy = project_lonlat(lonlat, 103.8, 1.35)
        back = unproject_xy(xy, 103.8, 1.35)
        np.testing.assert_allclose(back, lonlat, atol=1e-12)

    def test_origin_maps_to_zero(self):
        xy = project_lonlat(np.array([[103.8, 1.35]]), 103.8, 1.35)
        np.testing.assert_allclose(xy, [[0.0, 0.0]], atol=1e-12)

    def test_projection_close_to_haversine_at_city_scale(self):
        # Singapore-scale points: equirectangular error << 1%.
        rng = np.random.default_rng(3)
        lonlat = np.column_stack(
            [rng.uniform(103.6, 104.0, 30), rng.uniform(1.2, 1.5, 30)]
        )
        origin = (103.8, 1.35)
        xy = project_lonlat(lonlat, *origin)
        for i in range(30):
            for j in range(i + 1, 30):
                true = haversine(*lonlat[i], *lonlat[j])
                approx = math.hypot(*(xy[i] - xy[j]))
                if true > 0.1:
                    assert abs(approx - true) / true < 0.01

    @settings(max_examples=50)
    @given(
        st.floats(-179, 179, allow_nan=False),
        st.floats(-60, 60, allow_nan=False),
    )
    def test_round_trip_property(self, lon, lat):
        pts = np.array([[lon + 0.05, lat - 0.02]])
        xy = project_lonlat(pts, lon, lat)
        back = unproject_xy(xy, lon, lat)
        np.testing.assert_allclose(back, pts, atol=1e-9)
