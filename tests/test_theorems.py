"""Property-based checks of the paper's Theorems 1-2 and Lemmas 2-4.

These are the load-bearing guarantees behind PINOCCHIO's pruning: if
any of them failed, the algorithms would return wrong influences.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.influence import cumulative_probability
from repro.core.minmax_radius import min_max_radius
from repro.geo.mbr import MBR
from repro.prob import ExponentialPF, LinearPF, PowerLawPF

PFS = [PowerLawPF(), PowerLawPF(rho=0.5, lam=1.25), ExponentialPF(), LinearPF(rho=0.5, scale=30.0)]


def positions_strategy(max_n=60, extent=40.0):
    return st.builds(
        lambda seed, n: np.random.default_rng(seed).uniform(0, extent, size=(n, 2)),
        st.integers(0, 10_000),
        st.integers(1, max_n),
    )


@settings(max_examples=120, deadline=None)
@given(
    positions=positions_strategy(),
    tau=st.floats(0.05, 0.95),
    seed=st.integers(0, 10_000),
    pf_idx=st.integers(0, len(PFS) - 1),
)
def test_theorem1_all_positions_inside_radius_implies_influence(
    positions, tau, seed, pf_idx
):
    """Theorem 1: candidate within minMaxRadius of every position ⇒
    cumulative probability ≥ τ."""
    pf = PFS[pf_idx]
    n = positions.shape[0]
    radius = min_max_radius(pf, tau, n)
    if radius is None:
        return
    rng = np.random.default_rng(seed)
    # Place the candidate so that maxDist(c, all positions) <= radius:
    # any point within radius of the farthest position works only if
    # all positions fit in the circle; force it by shrinking positions
    # around their centroid until the spread is below the radius.
    centroid = positions.mean(axis=0)
    spread = np.max(np.hypot(*(positions - centroid).T)) or 1.0
    if spread > radius:
        positions = centroid + (positions - centroid) * (radius / spread) * 0.99
    cx, cy = centroid + rng.uniform(-0.001, 0.001, size=2)
    max_dist = np.max(np.hypot(positions[:, 0] - cx, positions[:, 1] - cy))
    if max_dist <= radius:
        assert cumulative_probability(pf, positions, cx, cy) >= tau - 1e-9


@settings(max_examples=120, deadline=None)
@given(
    positions=positions_strategy(),
    tau=st.floats(0.05, 0.95),
    angle=st.floats(0, 2 * np.pi),
    margin=st.floats(0.01, 50.0),
    pf_idx=st.integers(0, len(PFS) - 1),
)
def test_theorem2_all_positions_outside_radius_implies_no_influence(
    positions, tau, angle, margin, pf_idx
):
    """Theorem 2: candidate farther than minMaxRadius from every
    position ⇒ cumulative probability < τ."""
    pf = PFS[pf_idx]
    n = positions.shape[0]
    radius = min_max_radius(pf, tau, n)
    if radius is None:
        # Uninfluenceable at any distance: probability must be < tau
        # even at distance zero from every position.
        assert cumulative_probability(pf, positions, *positions[0]) < tau + 1e-12
        return
    # Put the candidate outside the radius of the *nearest* position.
    centroid = positions.mean(axis=0)
    spread = np.max(np.hypot(*(positions - centroid).T))
    d = spread + radius + margin
    cx = centroid[0] + d * np.cos(angle)
    cy = centroid[1] + d * np.sin(angle)
    min_dist = np.min(np.hypot(positions[:, 0] - cx, positions[:, 1] - cy))
    assert min_dist > radius
    assert cumulative_probability(pf, positions, cx, cy) < tau + 1e-9


@settings(max_examples=120, deadline=None)
@given(
    positions=positions_strategy(),
    tau=st.floats(0.05, 0.95),
    qx=st.floats(-60, 100),
    qy=st.floats(-60, 100),
)
def test_lemma2_ia_membership_implies_influence(positions, tau, qx, qy):
    """Lemma 2 via maxDist: candidate with maxDist(c, MBR) ≤ radius
    influences the object."""
    pf = PowerLawPF()
    radius = min_max_radius(pf, tau, positions.shape[0])
    if radius is None:
        return
    mbr = MBR.from_array(positions)
    if mbr.max_dist(qx, qy) <= radius:
        assert cumulative_probability(pf, positions, qx, qy) >= tau - 1e-9


@settings(max_examples=120, deadline=None)
@given(
    positions=positions_strategy(),
    tau=st.floats(0.05, 0.95),
    qx=st.floats(-60, 100),
    qy=st.floats(-60, 100),
)
def test_lemma3_outside_nib_implies_no_influence(positions, tau, qx, qy):
    """Lemma 3 via minDist: candidate with minDist(c, MBR) > radius
    cannot influence the object."""
    pf = PowerLawPF()
    radius = min_max_radius(pf, tau, positions.shape[0])
    if radius is None:
        return
    mbr = MBR.from_array(positions)
    if mbr.min_dist(qx, qy) > radius:
        assert cumulative_probability(pf, positions, qx, qy) < tau + 1e-9


@settings(max_examples=80, deadline=None)
@given(
    positions=positions_strategy(max_n=30),
    tau=st.floats(0.05, 0.95),
    n_prime=st.integers(1, 29),
)
def test_lemma4_partial_non_influence_early_stop(positions, tau, n_prime):
    """Lemma 4: if the partial non-influence probability over a prefix
    is ≤ 1 − τ, the object is influenced regardless of the rest."""
    pf = PowerLawPF()
    n = positions.shape[0]
    if n_prime >= n:
        return
    cx, cy = positions.mean(axis=0)
    prefix = positions[:n_prime]
    partial = np.prod(
        1 - pf(np.hypot(prefix[:, 0] - cx, prefix[:, 1] - cy))
    )
    if partial <= 1 - tau:
        assert cumulative_probability(pf, positions, cx, cy) >= tau - 1e-9


class TestDegenerateMBRRemark:
    """§4.2 Remark: a single-position object degenerates to classic LS."""

    def test_point_object_both_rules_coincide(self):
        pf = PowerLawPF()
        tau = 0.5
        radius = min_max_radius(pf, tau, 1)
        positions = np.array([[10.0, 10.0]])
        mbr = MBR.from_array(positions)
        assert mbr.is_point()
        # For a point MBR, minDist == maxDist: IA and NIB describe the
        # same circle, so every candidate is decided without validation.
        for qx, qy in [(10.0, 10.0), (10.0 + radius, 10.0), (30.0, 30.0)]:
            assert mbr.min_dist(qx, qy) == pytest.approx(mbr.max_dist(qx, qy))
            inside = mbr.max_dist(qx, qy) <= radius
            influenced = cumulative_probability(pf, positions, qx, qy) >= tau
            assert inside == influenced
