"""Tests for the A2D object table (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.object_table import ObjectEntry, ObjectTable
from repro.core.minmax_radius import min_max_radius
from repro.model import MovingObject
from repro.prob import LinearPF, PowerLawPF

from tests.helpers import make_objects


class TestObjectTable:
    def test_entries_carry_radius_and_mbr(self, pf, rng):
        objects = make_objects(rng, 10)
        table = ObjectTable(objects, pf, 0.7)
        assert table.live_count == 10
        for entry, obj in zip(table.entries, objects):
            assert entry.obj is obj
            assert entry.mbr == obj.mbr
            assert entry.radius == pytest.approx(
                min_max_radius(pf, 0.7, obj.n_positions)
            )

    def test_radius_cache_shared(self, pf, rng):
        # Many objects with the same n: only one radius computation.
        objects = [
            MovingObject(i, rng.uniform(0, 10, size=(12, 2))) for i in range(30)
        ]
        table = ObjectTable(objects, pf, 0.7)
        assert len(table.radius_cache) == 1

    def test_dead_objects_excluded(self):
        # rho=0.5 linear PF: 1-position objects cannot reach tau=0.7.
        pf = LinearPF(rho=0.5, scale=10.0)
        rng = np.random.default_rng(0)
        objects = [
            MovingObject(0, rng.uniform(0, 5, size=(1, 2))),   # dead
            MovingObject(1, rng.uniform(0, 5, size=(30, 2))),  # live
        ]
        table = ObjectTable(objects, pf, 0.7)
        assert table.dead_objects == 1
        assert table.live_count == 1
        assert table.entries[0].obj.object_id == 1

    def test_iteration_and_len(self, pf, rng):
        objects = make_objects(rng, 5)
        table = ObjectTable(objects, pf, 0.5)
        assert len(table) == 5
        assert [e.obj.object_id for e in table] == [0, 1, 2, 3, 4]


class TestObjectEntry:
    def test_regions_derived_from_radius(self, pf, rng):
        obj = MovingObject(0, rng.uniform(0, 10, size=(20, 2)))
        radius = min_max_radius(pf, 0.7, 20)
        entry = ObjectEntry(obj, radius, obj.mbr)
        assert entry.ia.radius == radius
        assert entry.nib.radius == radius
        assert entry.nib_bbox == obj.mbr.expanded(radius)

    def test_nib_bbox_bounds_nib_region(self, pf, rng):
        obj = MovingObject(0, rng.uniform(0, 10, size=(8, 2)))
        radius = min_max_radius(pf, 0.5, 8)
        entry = ObjectEntry(obj, radius, obj.mbr)
        pts = rng.uniform(-30, 40, size=(200, 2))
        inside_nib = entry.nib.contains_many(pts)
        bbox = entry.nib_bbox
        for i in range(200):
            if inside_nib[i]:
                assert bbox.contains_point(*pts[i])


class TestPowerLawNeverDead:
    def test_powerlaw_objects_always_live(self, rng):
        # PowerLawPF has unbounded support and PF(0)=0.9 > any
        # per-position requirement for tau <= 0.9.
        pf = PowerLawPF()
        objects = make_objects(rng, 20, n_range=(1, 5))
        table = ObjectTable(objects, pf, 0.89)
        assert table.dead_objects == 0
