"""Tests for the A2D object table (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.object_table import ObjectEntry, ObjectTable
from repro.core.minmax_radius import min_max_radius
from repro.model import MovingObject
from repro.prob import LinearPF, PowerLawPF

from tests.helpers import make_objects


class TestObjectTable:
    def test_entries_carry_radius_and_mbr(self, pf, rng):
        objects = make_objects(rng, 10)
        table = ObjectTable(objects, pf, 0.7)
        assert table.live_count == 10
        for entry, obj in zip(table.entries, objects):
            assert entry.obj is obj
            assert entry.mbr == obj.mbr
            assert entry.radius == pytest.approx(
                min_max_radius(pf, 0.7, obj.n_positions)
            )

    def test_radius_cache_shared(self, pf, rng):
        # Many objects with the same n: only one radius computation.
        objects = [
            MovingObject(i, rng.uniform(0, 10, size=(12, 2))) for i in range(30)
        ]
        table = ObjectTable(objects, pf, 0.7)
        assert len(table.radius_cache) == 1

    def test_dead_objects_excluded(self):
        # rho=0.5 linear PF: 1-position objects cannot reach tau=0.7.
        pf = LinearPF(rho=0.5, scale=10.0)
        rng = np.random.default_rng(0)
        objects = [
            MovingObject(0, rng.uniform(0, 5, size=(1, 2))),   # dead
            MovingObject(1, rng.uniform(0, 5, size=(30, 2))),  # live
        ]
        table = ObjectTable(objects, pf, 0.7)
        assert table.dead_objects == 1
        assert table.live_count == 1
        assert table.entries[0].obj.object_id == 1

    def test_iteration_and_len(self, pf, rng):
        objects = make_objects(rng, 5)
        table = ObjectTable(objects, pf, 0.5)
        assert len(table) == 5
        assert [e.obj.object_id for e in table] == [0, 1, 2, 3, 4]


class TestObjectEntry:
    def test_regions_derived_from_radius(self, pf, rng):
        obj = MovingObject(0, rng.uniform(0, 10, size=(20, 2)))
        radius = min_max_radius(pf, 0.7, 20)
        entry = ObjectEntry(obj, radius, obj.mbr)
        assert entry.ia.radius == radius
        assert entry.nib.radius == radius
        assert entry.nib_bbox == obj.mbr.expanded(radius)

    def test_nib_bbox_bounds_nib_region(self, pf, rng):
        obj = MovingObject(0, rng.uniform(0, 10, size=(8, 2)))
        radius = min_max_radius(pf, 0.5, 8)
        entry = ObjectEntry(obj, radius, obj.mbr)
        pts = rng.uniform(-30, 40, size=(200, 2))
        inside_nib = entry.nib.contains_many(pts)
        bbox = entry.nib_bbox
        for i in range(200):
            if inside_nib[i]:
                assert bbox.contains_point(*pts[i])


class TestPowerLawNeverDead:
    def test_powerlaw_objects_always_live(self, rng):
        # PowerLawPF has unbounded support and PF(0)=0.9 > any
        # per-position requirement for tau <= 0.9.
        pf = PowerLawPF()
        objects = make_objects(rng, 20, n_range=(1, 5))
        table = ObjectTable(objects, pf, 0.89)
        assert table.dead_objects == 0


class TestColumnarCaching:
    """Table-cached columnar arrays and the lazy rebuild path."""

    def test_to_columnar_is_memoised(self, pf, rng):
        table = ObjectTable(make_objects(rng, 8), pf, 0.7)
        assert table.to_columnar() is table.to_columnar()

    def test_mbr_radius_arrays_match_entries(self, pf, rng):
        table = ObjectTable(make_objects(rng, 12), pf, 0.7)
        mbrs, radii = table.mbr_radius_arrays()
        assert mbrs.shape == (12, 4)
        for i, e in enumerate(table.entries):
            assert tuple(mbrs[i]) == e.mbr.as_tuple()
            assert radii[i] == e.radius
        # Cached: same arrays every call, also after to_columnar().
        assert table.mbr_radius_arrays()[0] is mbrs
        cols = table.to_columnar()
        np.testing.assert_array_equal(cols.mbrs, mbrs)

    def test_positions_offsets_cover_entries(self, pf, rng):
        table = ObjectTable(make_objects(rng, 9, n_range=(1, 7)), pf, 0.7)
        positions, offsets = table.positions_offsets()
        for i, e in enumerate(table.entries):
            np.testing.assert_array_equal(
                positions[offsets[i] : offsets[i + 1]], e.obj.positions
            )

    def test_from_columnar_defers_entry_materialisation(self, pf, rng):
        table = ObjectTable(make_objects(rng, 10, n_range=(1, 6)), pf, 0.7)
        rebuilt = ObjectTable.from_columnar(table.to_columnar(), pf, 0.7)
        assert not rebuilt.entries_materialised
        # The columnar accessors must not wake the wrappers either.
        assert rebuilt.live_count == table.live_count
        assert len(rebuilt) == len(table)
        rebuilt.mbr_radius_arrays()
        rebuilt.positions_offsets()
        assert rebuilt.to_columnar() is table.to_columnar()
        assert not rebuilt.entries_materialised
        # Touching .entries materialises zero-copy views, bit-identical.
        for got, want in zip(rebuilt.entries, table.entries):
            assert got.obj.object_id == want.obj.object_id
            assert got.radius == want.radius
            assert got.mbr == want.mbr
            np.testing.assert_array_equal(
                got.obj.positions, want.obj.positions
            )
        assert rebuilt.entries_materialised

    def test_from_columnar_radius_cache_is_lazy(self, pf, rng):
        table = ObjectTable(make_objects(rng, 4), pf, 0.7)
        rebuilt = ObjectTable.from_columnar(table.to_columnar(), pf, 0.7)
        assert rebuilt._radius_cache is None
        assert rebuilt.radius_cache is not None

    def test_empty_table_columnar_roundtrip(self, pf):
        table = ObjectTable([], pf, 0.7)
        mbrs, radii = table.mbr_radius_arrays()
        assert mbrs.shape == (0, 4) and radii.shape == (0,)
        rebuilt = ObjectTable.from_columnar(table.to_columnar(), pf, 0.7)
        assert rebuilt.live_count == 0
        assert rebuilt.entries == []
