"""Tests for the probability-function substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prob import (
    ConcavePF,
    ConvexPF,
    ExponentialPF,
    LinearPF,
    LogsigPF,
    PowerLawPF,
)

ALL_PFS = [
    PowerLawPF(),
    PowerLawPF(rho=0.5, lam=0.75),
    PowerLawPF(rho=0.7, lam=1.25),
    LogsigPF(),
    LogsigPF(rho=0.9, scale=2.0),
    ConvexPF(),
    ConcavePF(),
    LinearPF(),
    ExponentialPF(),
]


@pytest.mark.parametrize("pf", ALL_PFS, ids=lambda f: repr(f))
class TestCommonContract:
    def test_monotone_decreasing(self, pf):
        pf.check_monotone()

    def test_values_are_probabilities(self, pf):
        d = np.linspace(0, 50, 200)
        p = pf(d)
        assert np.all(p >= 0.0)
        assert np.all(p <= 1.0)

    def test_scalar_returns_float(self, pf):
        assert isinstance(pf(1.5), float)

    def test_vector_matches_scalar(self, pf):
        ds = np.array([0.0, 0.3, 1.7, 9.9, 42.0])
        vec = pf(ds)
        for i, d in enumerate(ds):
            assert vec[i] == pytest.approx(pf(float(d)))

    def test_inverse_round_trip(self, pf):
        for frac in (0.999, 0.7, 0.4, 0.1, 0.01):
            p = pf.max_probability * frac
            d = pf.inverse(p)
            assert pf(d) == pytest.approx(p, abs=1e-9)

    def test_inverse_rejects_zero_and_negative(self, pf):
        with pytest.raises(ValueError):
            pf.inverse(0.0)
        with pytest.raises(ValueError):
            pf.inverse(-0.2)

    def test_inverse_rejects_above_max(self, pf):
        with pytest.raises(ValueError):
            pf.inverse(pf.max_probability * 1.5 + 0.1)

    def test_max_probability_is_value_at_zero(self, pf):
        assert pf.max_probability == pytest.approx(float(pf(0.0)))

    def test_support_radius(self, pf):
        r = pf.support_radius(min_prob=1e-6)
        assert float(pf(r)) <= 1e-6 + 1e-9


class TestPowerLaw:
    def test_paper_default_at_zero(self):
        assert PowerLawPF()(0.0) == pytest.approx(0.9)

    def test_power_law_shape(self):
        pf = PowerLawPF(rho=0.9, lam=1.0, d0=1.0)
        assert pf(1.0) == pytest.approx(0.45)
        assert pf(9.0) == pytest.approx(0.09)

    def test_lambda_controls_decay(self):
        slow = PowerLawPF(lam=0.75)
        fast = PowerLawPF(lam=1.25)
        assert slow(10.0) > fast(10.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PowerLawPF(rho=0.0)
        with pytest.raises(ValueError):
            PowerLawPF(rho=1.5)
        with pytest.raises(ValueError):
            PowerLawPF(lam=0.0)
        with pytest.raises(ValueError):
            PowerLawPF(d0=0.0)

    def test_rejects_pf0_above_one(self):
        with pytest.raises(ValueError):
            PowerLawPF(rho=0.9, lam=1.0, d0=0.5)  # 0.9 / 0.5 = 1.8 > 1

    @settings(max_examples=60)
    @given(st.floats(0.01, 0.89))
    def test_inverse_property(self, p):
        pf = PowerLawPF()
        assert pf(pf.inverse(p)) == pytest.approx(p, rel=1e-9)


class TestSigmoidFamily:
    def test_logsig_paper_form(self):
        # logsig(d) = rho / (1 + e^d) with rho = 0.5 (Fig 16a).
        pf = LogsigPF(rho=0.5, scale=1.0)
        assert pf(0.0) == pytest.approx(0.25)
        assert pf(1.0) == pytest.approx(0.5 / (1 + np.e))

    def test_convex_hits_rho_at_zero_and_zero_at_scale(self):
        pf = ConvexPF(rho=0.5, scale=10.0)
        assert pf(0.0) == pytest.approx(0.5)
        assert pf(10.0) == pytest.approx(0.0, abs=1e-12)
        assert pf(15.0) == 0.0

    def test_concave_hits_rho_at_zero_and_zero_at_scale(self):
        pf = ConcavePF(rho=0.5, scale=10.0)
        assert pf(0.0) == pytest.approx(0.5)
        assert pf(10.0) == pytest.approx(0.0, abs=1e-12)

    def test_convexity_direction(self):
        convex = ConvexPF(rho=0.5, scale=10.0, steepness=0.5)
        concave = ConcavePF(rho=0.5, scale=10.0, steepness=0.5)
        d = np.linspace(0, 10, 101)
        mid_convex = convex(d)
        mid_concave = concave(d)
        # Convex: chord above curve; concave: chord below curve.
        chord = np.linspace(float(mid_convex[0]), float(mid_convex[-1]), 101)
        assert np.all(mid_convex <= chord + 1e-9)
        chord_c = np.linspace(float(mid_concave[0]), float(mid_concave[-1]), 101)
        assert np.all(mid_concave >= chord_c - 1e-9)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LogsigPF(rho=0.0)
        with pytest.raises(ValueError):
            LogsigPF(scale=-1.0)
        with pytest.raises(ValueError):
            ConvexPF(steepness=0.0)
        with pytest.raises(ValueError):
            ConcavePF(scale=0.0)


class TestLinearAndExponential:
    def test_linear_values(self):
        pf = LinearPF(rho=0.5, scale=10.0)
        assert pf(0.0) == pytest.approx(0.5)
        assert pf(5.0) == pytest.approx(0.25)
        assert pf(10.0) == 0.0
        assert pf(20.0) == 0.0

    def test_linear_inverse(self):
        pf = LinearPF(rho=0.5, scale=10.0)
        assert pf.inverse(0.25) == pytest.approx(5.0)

    def test_exponential_halves_at_log2_lengths(self):
        pf = ExponentialPF(rho=0.8, length=2.0)
        assert pf(2.0 * np.log(2)) == pytest.approx(0.4)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LinearPF(scale=0.0)
        with pytest.raises(ValueError):
            ExponentialPF(length=-2.0)
        with pytest.raises(ValueError):
            ExponentialPF(rho=1.2)
