"""Tests for the exhaustive NA baseline."""

import numpy as np
import pytest

from repro.core.influence import cumulative_probability
from repro.core.naive import NaiveAlgorithm, exact_influence, exact_probability
from repro.model import Candidate, MovingObject

from tests.helpers import make_candidates, make_objects


class TestNaive:
    def test_influence_matches_definition(self, pf, rng):
        objects = make_objects(rng, 12, n_range=(1, 20))
        candidates = make_candidates(rng, 10)
        tau = 0.6
        result = NaiveAlgorithm().select(objects, candidates, pf, tau)
        for j, cand in enumerate(candidates):
            expected = sum(
                1
                for obj in objects
                if cumulative_probability(pf, obj.positions, cand.x, cand.y) >= tau
            )
            assert result.influences[j] == expected

    def test_scalar_and_vector_agree(self, pf, rng):
        objects = make_objects(rng, 10, n_range=(1, 15))
        candidates = make_candidates(rng, 8)
        rv = NaiveAlgorithm(kernel="vector").select(objects, candidates, pf, 0.5)
        rs = NaiveAlgorithm(kernel="scalar").select(objects, candidates, pf, 0.5)
        assert rv.influences == rs.influences
        assert rv.best_influence == rs.best_influence

    def test_best_is_argmax(self, pf, rng):
        objects = make_objects(rng, 15)
        candidates = make_candidates(rng, 12)
        result = NaiveAlgorithm().select(objects, candidates, pf, 0.7)
        assert result.best_influence == max(result.influences.values())

    def test_tie_break_lowest_index(self, pf):
        # Two identical candidates: the first wins deterministically.
        objects = [MovingObject(0, np.array([[0.0, 0.0]]))]
        candidates = [Candidate(0, 0.0, 0.0), Candidate(1, 0.0, 0.0)]
        result = NaiveAlgorithm().select(objects, candidates, pf, 0.5)
        assert result.best_candidate.candidate_id == 0

    def test_validates_inputs(self, pf, rng):
        objects = make_objects(rng, 2)
        candidates = make_candidates(rng, 2)
        algo = NaiveAlgorithm()
        with pytest.raises(ValueError):
            algo.select([], candidates, pf, 0.5)
        with pytest.raises(ValueError):
            algo.select(objects, [], pf, 0.5)
        with pytest.raises(ValueError):
            algo.select(objects, candidates, pf, 0.0)
        with pytest.raises(ValueError):
            algo.select(objects, candidates, pf, 1.0)

    def test_unknown_kernel_raises(self):
        with pytest.raises(ValueError):
            NaiveAlgorithm(kernel="quantum")

    def test_elapsed_recorded(self, pf, rng):
        objects = make_objects(rng, 3)
        candidates = make_candidates(rng, 3)
        result = NaiveAlgorithm().select(objects, candidates, pf, 0.5)
        assert result.elapsed_seconds > 0

    def test_counters(self, pf, rng):
        objects = make_objects(rng, 4, n_range=(5, 5))
        candidates = make_candidates(rng, 3)
        result = NaiveAlgorithm().select(objects, candidates, pf, 0.5)
        inst = result.instrumentation
        assert inst.pairs_total == 12
        assert inst.positions_evaluated == 3 * 4 * 5


class TestHelpers:
    def test_exact_influence_consistent(self, pf, rng):
        objects = make_objects(rng, 10)
        candidates = make_candidates(rng, 5)
        result = NaiveAlgorithm().select(objects, candidates, pf, 0.6)
        for j, cand in enumerate(candidates):
            assert exact_influence(objects, cand.x, cand.y, pf, 0.6) == (
                result.influences[j]
            )

    def test_exact_probability(self, pf):
        obj = MovingObject(0, np.array([[3.0, 4.0]]))
        assert exact_probability(obj, 0.0, 0.0, pf) == pytest.approx(float(pf(5.0)))
