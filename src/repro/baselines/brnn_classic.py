"""Classic bichromatic reverse nearest neighbours (Korn & Muthukrishnan [2]).

The foundation of the MAX-INF line of location selection the paper
builds on: the *influence set* of a candidate ``c`` over a static point
set ``P`` is ``{p ∈ P : NN_C(p) = c}``, and classical LS picks the
candidate with the largest influence set (BRNN cardinality).

Provided both as a substrate for the BRNN* baseline and as a standalone
implementation of the classical static-object problem, with a
vectorised assignment kernel and an R-tree-backed variant for large
candidate sets.
"""

from __future__ import annotations

import numpy as np

from repro.index.rtree import RTree


def nearest_candidate_assignment(
    points: np.ndarray, cand_xy: np.ndarray, chunk: int = 4096
) -> np.ndarray:
    """For each point the index of its nearest candidate.

    Vectorised over chunks of points; ties break toward the lower
    candidate index (``argmin`` semantics).
    """
    points = np.asarray(points, dtype=float)
    cand_xy = np.asarray(cand_xy, dtype=float)
    if cand_xy.shape[0] == 0:
        raise ValueError("need at least one candidate")
    out = np.empty(points.shape[0], dtype=int)
    for start in range(0, points.shape[0], chunk):
        seg = points[start : start + chunk]
        dx = seg[:, 0][:, None] - cand_xy[:, 0][None, :]
        dy = seg[:, 1][:, None] - cand_xy[:, 1][None, :]
        out[start : start + chunk] = np.argmin(dx * dx + dy * dy, axis=1)
    return out


def nearest_candidate_assignment_rtree(
    points: np.ndarray, rtree: RTree
) -> np.ndarray:
    """R-tree-backed variant: one best-first NN query per point."""
    points = np.asarray(points, dtype=float)
    out = np.empty(points.shape[0], dtype=int)
    for i in range(points.shape[0]):
        out[i], _ = rtree.nearest(points[i, 0], points[i, 1])
    return out


def influence_sets(
    points: np.ndarray, cand_xy: np.ndarray
) -> dict[int, np.ndarray]:
    """The BRNN influence set of every candidate.

    Returns ``{candidate_index: point_indexes}``; candidates with empty
    influence sets are present with empty arrays.
    """
    assignment = nearest_candidate_assignment(points, cand_xy)
    m = cand_xy.shape[0]
    order = np.argsort(assignment, kind="stable")
    sorted_assignment = assignment[order]
    boundaries = np.searchsorted(sorted_assignment, np.arange(m + 1))
    return {
        j: order[boundaries[j] : boundaries[j + 1]] for j in range(m)
    }


def max_influence_location(
    points: np.ndarray, cand_xy: np.ndarray
) -> tuple[int, int]:
    """Classical MAX-INF LS over static points.

    Returns ``(candidate_index, influence_set_size)`` for the candidate
    with the largest BRNN set (ties to the lower index).
    """
    assignment = nearest_candidate_assignment(points, cand_xy)
    counts = np.bincount(assignment, minlength=cand_xy.shape[0])
    best = int(np.argmax(counts))
    return best, int(counts[best])
