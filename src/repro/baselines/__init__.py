"""Classical LS baselines the paper compares against (§6.1).

* :class:`repro.baselines.brnn_star.BRNNStar` — "BRNN*": the
  MaxOverlap/MaxBRNN technique of Wong et al. [16], extended to moving
  objects exactly as the paper does: each object selects the candidate
  that is the nearest neighbour of the most of its positions, and
  candidates are ranked by how many objects selected them.
* :class:`repro.baselines.range_based.RangeBaseline` — "RANGE": an
  object is influenced when at least a given proportion of its
  positions lie within a given range of the candidate; the paper
  averages a 3×3 grid of (proportion, range) combinations.
"""

from repro.baselines.brnn_star import BRNNStar
from repro.baselines.brnn_classic import (
    influence_sets,
    max_influence_location,
    nearest_candidate_assignment,
)
from repro.baselines.range_based import RangeBaseline, range_parameter_grid
from repro.baselines.maxrs import MaxRSResult, max_rs, max_rs_over_objects

__all__ = [
    "MaxRSResult",
    "max_rs",
    "max_rs_over_objects",
    "BRNNStar",
    "RangeBaseline",
    "range_parameter_grid",
    "influence_sets",
    "max_influence_location",
    "nearest_candidate_assignment",
]
