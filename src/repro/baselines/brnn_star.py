"""BRNN* — nearest-neighbour location selection extended to mobility.

§6.2: "we run MaxOverlap algorithm [16] to select for each object O
the best location c, which influences the most positions in O.
Afterwards, we choose the location that has been selected by the most
objects."

Positions vote for their nearest candidate; each object endorses the
candidate collecting the most of its position votes (ties broken by
candidate index for determinism); candidates are ranked by
endorsements.  This inherits the limitations PRIME-LS lifts — binary
influence, NN-only, one facility per object — which is exactly why the
paper uses it as the classical-semantics representative.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import LocationSelector, candidates_to_array
from repro.core.result import Instrumentation, LSResult
from repro.model.candidate import Candidate
from repro.model.moving_object import MovingObject
from repro.prob.base import ProbabilityFunction


class BRNNStar(LocationSelector):
    """Each object endorses the candidate that is NN of most positions."""

    name = "BRNN*"

    def _run(
        self,
        objects: list[MovingObject],
        candidates: list[Candidate],
        pf: ProbabilityFunction,
        tau: float,
    ) -> LSResult:
        # pf and tau are part of the common interface but NN semantics
        # ignore them (binary, probability-free influence).
        cand_xy = candidates_to_array(candidates)
        m = cand_xy.shape[0]
        votes = np.zeros(m, dtype=int)
        counters = Instrumentation()
        counters.pairs_total = len(objects) * m
        for obj in objects:
            dx = obj.positions[:, 0][:, None] - cand_xy[:, 0][None, :]
            dy = obj.positions[:, 1][:, None] - cand_xy[:, 1][None, :]
            nearest = np.argmin(np.hypot(dx, dy), axis=1)
            counts = np.bincount(nearest, minlength=m)
            votes[int(np.argmax(counts))] += 1
            counters.positions_evaluated += obj.n_positions * m
        influences = {j: int(votes[j]) for j in range(m)}
        best_idx = max(influences, key=lambda idx: (influences[idx], -idx))
        return LSResult(
            algorithm=self.name,
            best_candidate=candidates[best_idx],
            best_influence=influences[best_idx],
            influences=influences,
            elapsed_seconds=0.0,
            instrumentation=counters,
        )
