"""RANGE — proportion-within-range location selection (§6.2).

"an object is influenced if at least a certain proportion of its
positions lie within a given range of a candidate."  The paper sweeps
proportions {25%, 50%, 75%} and ranges {base/2, base, 2·base} where
``base`` is 5‰ of the complete scale (0.2 km for Foursquare), and
compares against the average of the nine combinations.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import LocationSelector, candidates_to_array
from repro.core.result import Instrumentation, LSResult
from repro.model.candidate import Candidate
from repro.model.moving_object import MovingObject
from repro.prob.base import ProbabilityFunction


class RangeBaseline(LocationSelector):
    """One (proportion, range) combination of the RANGE semantics."""

    name = "RANGE"

    def __init__(self, proportion: float = 0.5, range_km: float = 0.2):
        if not 0.0 < proportion <= 1.0:
            raise ValueError(f"proportion must be in (0, 1], got {proportion}")
        if range_km <= 0.0:
            raise ValueError(f"range_km must be positive, got {range_km}")
        self.proportion = proportion
        self.range_km = range_km

    def _run(
        self,
        objects: list[MovingObject],
        candidates: list[Candidate],
        pf: ProbabilityFunction,
        tau: float,
    ) -> LSResult:
        # pf and tau are ignored: RANGE influence is binary and
        # distance-threshold based.
        cand_xy = candidates_to_array(candidates)
        m = cand_xy.shape[0]
        all_xy = np.concatenate([o.positions for o in objects], axis=0)
        lengths = np.array([o.n_positions for o in objects], dtype=float)
        offsets = np.concatenate([[0], np.cumsum(lengths.astype(int))[:-1]])
        counters = Instrumentation()
        counters.pairs_total = len(objects) * m
        influence = np.zeros(m, dtype=int)
        for j in range(m):
            d = np.hypot(all_xy[:, 0] - cand_xy[j, 0], all_xy[:, 1] - cand_xy[j, 1])
            within = (d <= self.range_km).astype(float)
            fraction = np.add.reduceat(within, offsets) / lengths
            influence[j] = int(np.count_nonzero(fraction >= self.proportion))
            counters.positions_evaluated += all_xy.shape[0]
        influences = {j: int(influence[j]) for j in range(m)}
        best_idx = max(influences, key=lambda idx: (influences[idx], -idx))
        return LSResult(
            algorithm=self.name,
            best_candidate=candidates[best_idx],
            best_influence=influences[best_idx],
            influences=influences,
            elapsed_seconds=0.0,
            instrumentation=counters,
        )


def range_parameter_grid(scale_km: float) -> list[tuple[float, float]]:
    """The paper's nine (proportion, range) combinations.

    ``scale_km`` is the complete scale of the dataset (its larger
    dimension); the base range is 5‰ of it, bracketed by half and
    twice (§6.2, following Yiu et al. [27]).
    """
    if scale_km <= 0:
        raise ValueError(f"scale_km must be positive, got {scale_km}")
    base = 0.005 * scale_km
    return [
        (proportion, rng)
        for proportion in (0.25, 0.50, 0.75)
        for rng in (base / 2, base, base * 2)
    ]


def averaged_range_scores(
    objects: list[MovingObject],
    candidates: list[Candidate],
    scale_km: float,
    pf: ProbabilityFunction,
    tau: float,
) -> dict[int, float]:
    """Mean RANGE influence per candidate over the nine-combination grid.

    This is the "Avg. RANGE" row of Tables 3-4.
    """
    totals = np.zeros(len(candidates), dtype=float)
    grid = range_parameter_grid(scale_km)
    for proportion, rng in grid:
        result = RangeBaseline(proportion, rng).select(objects, candidates, pf, tau)
        for idx, value in result.influences.items():
            totals[idx] += value
    totals /= len(grid)
    return {j: float(totals[j]) for j in range(len(candidates))}
