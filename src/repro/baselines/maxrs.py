"""Exact MaxRS — maximising range sum (Choi et al. [18], §2.1).

Another classical LS variant from the paper's related work: find the
position of an axis-aligned ``w × h`` rectangle that maximises the
total weight of the points it covers.  The textbook reduction: a
rectangle centred at ``q`` covers point ``p`` iff ``q`` lies in the
``w × h`` rectangle centred at ``p``; MaxRS therefore equals the
maximum-depth point over ``n`` weighted rectangles, found by a plane
sweep over x with a segment tree (max + range-add) over compressed y
intervals — ``O(n log n)``.

Provided as a substrate/baseline: applied to a moving-object workload
(each position a point, optionally weighted ``1/n_O`` so every object
contributes equally) it is the strongest "range semantics" competitor
— still blind to the probabilistic, cumulative influence PRIME-LS
models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.model.moving_object import MovingObject


class _MaxAddSegmentTree:
    """Segment tree over ``k`` slots supporting range-add and global max."""

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("need at least one slot")
        self.k = k
        size = 1
        while size < k:
            size *= 2
        self.size = size
        self.max = [0.0] * (2 * size)
        self.lazy = [0.0] * (2 * size)

    def add(self, lo: int, hi: int, value: float) -> None:
        """Add ``value`` on the slot range ``[lo, hi]`` (inclusive)."""
        self._add(1, 0, self.size - 1, lo, hi, value)

    def _add(self, node: int, node_lo: int, node_hi: int,
             lo: int, hi: int, value: float) -> None:
        if hi < node_lo or node_hi < lo:
            return
        if lo <= node_lo and node_hi <= hi:
            self.max[node] += value
            self.lazy[node] += value
            return
        mid = (node_lo + node_hi) // 2
        self._add(2 * node, node_lo, mid, lo, hi, value)
        self._add(2 * node + 1, mid + 1, node_hi, lo, hi, value)
        self.max[node] = self.lazy[node] + max(
            self.max[2 * node], self.max[2 * node + 1]
        )

    @property
    def global_max(self) -> float:
        return self.max[1]

    def argmax_slot(self) -> int:
        """A slot index achieving the global maximum.

        Invariant: for internal nodes,
        ``max[node] = lazy[node] + max(max[left], max[right])`` — so the
        descent simply follows the child with the larger stored max.
        """
        node = 1
        while node < self.size:
            left, right = 2 * node, 2 * node + 1
            node = left if self.max[left] >= self.max[right] else right
        return node - self.size


@dataclass(frozen=True, slots=True)
class MaxRSResult:
    """The best rectangle centre and the weight it covers."""

    x: float
    y: float
    weight: float


def max_rs(
    points: np.ndarray,
    width: float,
    height: float,
    weights: Sequence[float] | None = None,
) -> MaxRSResult:
    """Exact MaxRS over weighted points by plane sweep.

    ``points`` is ``(n, 2)``; the rectangle is ``width × height``,
    closed on all sides; uniform unit weights by default.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2 or points.shape[0] == 0:
        raise ValueError("points must be a non-empty (n, 2) array")
    if width <= 0 or height <= 0:
        raise ValueError("rectangle dimensions must be positive")
    n = points.shape[0]
    if weights is None:
        w = np.ones(n)
    else:
        w = np.asarray(weights, dtype=float)
        if w.shape != (n,):
            raise ValueError("weights must align with points")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")

    # Dual rectangles: centre q covers p iff |qx - px| <= width/2 etc.
    x_lo = points[:, 0] - width / 2
    x_hi = points[:, 0] + width / 2
    y_lo = points[:, 1] - height / 2
    y_hi = points[:, 1] + height / 2

    # Compress y into elementary intervals between consecutive
    # boundaries; slot i spans [ys[i], ys[i+1]).  Using closed
    # rectangles, interval endpoints themselves are covered, which the
    # slot containing the boundary value handles.
    ys = np.unique(np.concatenate([y_lo, y_hi]))
    slot_lo = np.searchsorted(ys, y_lo, side="left")
    slot_hi = np.searchsorted(ys, y_hi, side="left")
    tree = _MaxAddSegmentTree(len(ys))

    # Sweep events: add at x_lo, remove just after x_hi (closed edges:
    # process all additions at an x before removals at the same x).
    events = []  # (x, order, idx, delta)
    for i in range(n):
        events.append((x_lo[i], 0, i, +1.0))
        events.append((x_hi[i], 1, i, -1.0))
    events.sort(key=lambda e: (e[0], e[1]))

    best = MaxRSResult(x=float(points[0, 0]), y=float(points[0, 1]), weight=0.0)
    for x, order, i, delta in events:
        tree.add(int(slot_lo[i]), int(slot_hi[i]), float(delta) * float(w[i]))
        if order == 0 and tree.global_max > best.weight + 1e-12:
            slot = tree.argmax_slot()
            slot = min(slot, len(ys) - 1)
            best = MaxRSResult(
                x=float(x), y=float(ys[slot]), weight=float(tree.global_max)
            )
    return best


def max_rs_brute(
    points: np.ndarray,
    width: float,
    height: float,
    weights: Sequence[float] | None = None,
) -> float:
    """Brute-force MaxRS weight (candidate centres at point pairs).

    The optimum is attained with the rectangle's left and bottom edges
    touching some points, so scanning all ``(x_i, y_j)`` anchor pairs
    is exhaustive — ``O(n³)``, for tests only.
    """
    points = np.asarray(points, dtype=float)
    n = points.shape[0]
    w = np.ones(n) if weights is None else np.asarray(weights, dtype=float)
    best = 0.0
    for i in range(n):
        for j in range(n):
            cx = points[i, 0] + width / 2
            cy = points[j, 1] + height / 2
            inside = (
                (np.abs(points[:, 0] - cx) <= width / 2 + 1e-12)
                & (np.abs(points[:, 1] - cy) <= height / 2 + 1e-12)
            )
            best = max(best, float(w[inside].sum()))
    return best


def max_rs_over_objects(
    objects: Sequence[MovingObject],
    width: float,
    height: float,
    per_object_normalised: bool = True,
) -> MaxRSResult:
    """MaxRS over a moving-object workload.

    With ``per_object_normalised`` each position weighs ``1/n_O`` so an
    object contributes at most 1 in total (the rough analogue of the
    one-vote-per-object influence semantics).
    """
    all_points = np.concatenate([o.positions for o in objects], axis=0)
    if per_object_normalised:
        weights = np.concatenate(
            [np.full(o.n_positions, 1.0 / o.n_positions) for o in objects]
        )
    else:
        weights = None
    return max_rs(all_points, width, height, weights)
