"""The synthetic check-in generator.

Pipeline (all deterministic given ``seed``):

1. Lay out a city (:class:`repro.datasets.city.CityModel`) and place
   venues from its hotspot mixture; assign each venue a Zipf
   attractiveness weight.
2. Give every user a handful of *anchor points* (home, work, ...) drawn
   from the city mixture.  Multiple well-separated anchors reproduce
   the paper's observation that an average object's activity MBR spans
   roughly half of each city dimension (§4.3: 22.51 of 39.22 km and
   14.99 of 27.03 km).
3. Draw each user's check-in count from the Table 2-matched heavy-tail
   sampler, then assign each check-in to a venue with a gravity model:
   ``weight(v) ∝ attractiveness(v) · (d0 + dist(anchor, v))^(−γ)`` —
   the same distance-decay mechanism as the paper's default ``PF``
   (Liu et al. [21]).  Check-in positions are the venue coordinates
   plus small GPS jitter.
4. Ground truth: per-venue check-in totals — exactly the "actual
   number of visitors for each POI" the paper uses to score
   effectiveness (§6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.city import CityModel
from repro.datasets.counts import sample_checkin_counts
from repro.model.dataset import CheckinDataset
from repro.model.moving_object import MovingObject


@dataclass(frozen=True, slots=True)
class SyntheticConfig:
    """All knobs of the synthetic generator.

    The defaults produce a small, fast dataset; the Table 2 presets in
    :mod:`repro.datasets.presets` override them.
    """

    name: str = "synthetic"
    n_users: int = 200
    n_venues: int = 500
    width_km: float = 39.22   # Foursquare/Singapore extent from §4.3
    height_km: float = 27.03
    n_hotspots: int = 6
    avg_checkins: float = 40.0
    min_checkins: int = 2
    max_checkins: int = 400
    count_sigma: float = 1.0
    anchors_per_user: tuple[int, int] = (2, 4)   # inclusive range
    #: when set, a user's anchors are drawn within this radius (km,
    #: Gaussian sigma) of a single home point instead of city-wide —
    #: models wide-area datasets (Gowalla/California) where each user
    #: stays local while the dataset spans hundreds of km
    anchor_spread_km: float | None = None
    gravity_gamma: float = 1.0                   # distance-decay exponent
    gravity_d0: float = 1.0                      # km offset, as in PF
    zipf_exponent: float = 0.8                   # venue attractiveness skew
    #: 0 = attractiveness assigned at random; 1 = strictly by local
    #: density (downtown venues are the popular ones).  Real check-in
    #: data sits in between: popularity and footfall correlate.
    attractiveness_from_density: float = 0.0
    gps_noise_km: float = 0.05
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_users < 1 or self.n_venues < 2:
            raise ValueError("need at least 1 user and 2 venues")
        lo, hi = self.anchors_per_user
        if not 1 <= lo <= hi:
            raise ValueError(f"bad anchors_per_user range: {self.anchors_per_user}")
        if self.gravity_gamma <= 0 or self.gravity_d0 <= 0:
            raise ValueError("gravity parameters must be positive")
        if self.gps_noise_km < 0:
            raise ValueError("gps_noise_km must be non-negative")
        if self.anchor_spread_km is not None and self.anchor_spread_km <= 0:
            raise ValueError("anchor_spread_km must be positive when set")


@dataclass
class SyntheticWorld:
    """The generated dataset plus the latent structure behind it.

    Exposed for tests and examples that want to inspect the latent
    venue attractiveness or user anchors.
    """

    dataset: CheckinDataset
    city: CityModel
    venue_attractiveness: np.ndarray
    user_anchors: list[np.ndarray] = field(default_factory=list)


def generate_checkin_dataset(config: SyntheticConfig) -> SyntheticWorld:
    """Generate a full synthetic check-in world from ``config``."""
    rng = np.random.default_rng(config.seed)
    city = CityModel.random(
        config.width_km, config.height_km, config.n_hotspots, rng
    )

    venue_xy = city.sample_points(config.n_venues, rng)
    # Zipf attractiveness.  With attractiveness_from_density = 0 the
    # ranks are a random permutation; with 1 they follow local density
    # exactly; in between, a noisy blend of the two orderings.
    coupling = config.attractiveness_from_density
    if coupling > 0.0:
        density = city.density(venue_xy)
        density_rank = np.empty(config.n_venues)
        density_rank[np.argsort(-density)] = np.arange(config.n_venues)
        random_rank = rng.permutation(config.n_venues).astype(float)
        blended = coupling * density_rank + (1.0 - coupling) * random_rank
        ranks = np.empty(config.n_venues, dtype=int)
        ranks[np.argsort(blended)] = np.arange(1, config.n_venues + 1)
    else:
        ranks = rng.permutation(config.n_venues) + 1
    attractiveness = ranks.astype(float) ** -config.zipf_exponent

    counts = sample_checkin_counts(
        config.n_users,
        config.avg_checkins,
        config.min_checkins,
        config.max_checkins,
        rng,
        sigma=config.count_sigma,
    )

    objects: list[MovingObject] = []
    user_anchors: list[np.ndarray] = []
    venue_visit_totals = np.zeros(config.n_venues, dtype=int)
    lo, hi = config.anchors_per_user
    for user_id in range(config.n_users):
        n_anchors = int(rng.integers(lo, hi + 1))
        if config.anchor_spread_km is None:
            anchors = city.sample_points(n_anchors, rng)
        else:
            home = city.sample_points(1, rng)[0]
            anchors = home + rng.normal(
                0.0, config.anchor_spread_km, size=(n_anchors, 2)
            )
            anchors[:, 0] = np.clip(anchors[:, 0], 0.0, config.width_km)
            anchors[:, 1] = np.clip(anchors[:, 1], 0.0, config.height_km)
        user_anchors.append(anchors)

        # Gravity weights, mixed uniformly over the user's anchors.
        weights = np.zeros(config.n_venues, dtype=float)
        for ax, ay in anchors:
            dist = np.hypot(venue_xy[:, 0] - ax, venue_xy[:, 1] - ay)
            weights += attractiveness * (config.gravity_d0 + dist) ** -config.gravity_gamma
        weights /= weights.sum()

        visited = rng.choice(config.n_venues, size=int(counts[user_id]), p=weights)
        np.add.at(venue_visit_totals, visited, 1)

        positions = venue_xy[visited]
        if config.gps_noise_km > 0:
            positions = positions + rng.normal(
                0.0, config.gps_noise_km, size=positions.shape
            )
        objects.append(MovingObject(user_id, positions))

    dataset = CheckinDataset(
        objects, venue_xy, venue_visit_totals, name=config.name
    )
    return SyntheticWorld(
        dataset=dataset,
        city=city,
        venue_attractiveness=attractiveness,
        user_anchors=user_anchors,
    )
