"""Heavy-tailed per-user check-in count sampling.

Table 2 of the paper reports strongly skewed check-in counts
(Foursquare: avg 72, min 3, max 661 over 2,321 users; Gowalla: avg 37,
min 2, max 780 over 10,162 users).  A clipped log-normal reproduces
that shape; the mean of the underlying normal is calibrated so the
post-clip average lands on the requested value.
"""

from __future__ import annotations

import math

import numpy as np


def sample_checkin_counts(
    n_users: int,
    avg: float,
    min_count: int,
    max_count: int,
    rng: np.random.Generator,
    sigma: float = 1.0,
) -> np.ndarray:
    """Integer check-in counts per user with a log-normal body.

    ``avg`` is the target post-clip mean; ``min_count``/``max_count``
    bound the support (matching Table 2's min/max columns).
    """
    if n_users < 1:
        raise ValueError("n_users must be positive")
    if not min_count <= avg <= max_count:
        raise ValueError(
            f"avg={avg} must lie within [{min_count}, {max_count}]"
        )
    if sigma <= 0:
        raise ValueError("sigma must be positive")

    # Calibrate mu so that the clipped mean matches `avg`.  Start from
    # the unclipped log-normal mean and refine with a few secant steps
    # against a fixed quasi-random sample of the standard normal.
    z = _standard_normal_grid(max(n_users, 1024))

    def clipped_mean(mu: float) -> float:
        values = np.exp(mu + sigma * z)
        return float(np.clip(values, min_count, max_count).mean())

    mu = math.log(avg) - sigma * sigma / 2.0
    lo, hi = mu - 4.0, mu + 4.0
    for _ in range(60):
        mid = (lo + hi) / 2.0
        if clipped_mean(mid) < avg:
            lo = mid
        else:
            hi = mid
    mu = (lo + hi) / 2.0

    raw = rng.lognormal(mean=mu, sigma=sigma, size=n_users)
    counts = np.clip(np.rint(raw), min_count, max_count).astype(int)
    # Force the extremes to be represented so Table 2's min/max columns
    # are faithful even for small user counts.
    if n_users >= 2:
        counts[int(np.argmin(counts))] = min_count
        counts[int(np.argmax(counts))] = max_count
    return counts


def _standard_normal_grid(k: int) -> np.ndarray:
    """Deterministic standard-normal quantiles used for calibration."""
    # Midpoint probabilities avoid the infinite tails.
    ps = (np.arange(k) + 0.5) / k
    return _norm_ppf(ps)


def _norm_ppf(p: np.ndarray) -> np.ndarray:
    """Acklam's rational approximation of the normal quantile function.

    Keeps the module dependency-free (no SciPy needed at runtime);
    absolute error is below 1.2e-9 which is far finer than needed for
    mean calibration.
    """
    p = np.asarray(p, dtype=float)
    a = [-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00]
    b = [-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00]
    p_low = 0.02425
    out = np.empty_like(p)

    lower = p < p_low
    upper = p > 1 - p_low
    middle = ~(lower | upper)

    if np.any(lower):
        q = np.sqrt(-2 * np.log(p[lower]))
        out[lower] = (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if np.any(upper):
        q = np.sqrt(-2 * np.log(1 - p[upper]))
        out[upper] = -(
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if np.any(middle):
        q = p[middle] - 0.5
        r = q * q
        out[middle] = (
            ((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]
        ) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
        )
    return out
