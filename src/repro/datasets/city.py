"""A hotspot-mixture city model.

Venue and anchor positions in real LBS data are heavily skewed toward
a handful of dense centres (the paper's Fig 6a).  We model a city as a
rectangular extent plus a mixture of Gaussian hotspots with a uniform
background component; samples are clipped to the extent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class Hotspot:
    """One Gaussian component: centre (km), spread (km), mixture weight."""

    x: float
    y: float
    sigma: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")


class CityModel:
    """A rectangular city with Gaussian hotspots over a uniform background."""

    def __init__(
        self,
        width_km: float,
        height_km: float,
        hotspots: list[Hotspot],
        background_weight: float = 0.1,
    ):
        if width_km <= 0 or height_km <= 0:
            raise ValueError("city extent must be positive")
        if not hotspots:
            raise ValueError("at least one hotspot is required")
        if background_weight < 0:
            raise ValueError("background_weight must be non-negative")
        self.width_km = width_km
        self.height_km = height_km
        self.hotspots = list(hotspots)
        self.background_weight = background_weight
        weights = np.array([h.weight for h in self.hotspots] + [background_weight])
        self._mix = weights / weights.sum()

    @classmethod
    def random(
        cls,
        width_km: float,
        height_km: float,
        n_hotspots: int,
        rng: np.random.Generator,
        sigma_range: tuple[float, float] = (1.0, 4.0),
        background_weight: float = 0.1,
    ) -> "CityModel":
        """A city with ``n_hotspots`` random centres; weights are Zipf-ish
        so a couple of hotspots dominate, as in real check-in maps."""
        if n_hotspots < 1:
            raise ValueError("need at least one hotspot")
        hotspots = []
        for rank in range(n_hotspots):
            hotspots.append(
                Hotspot(
                    x=float(rng.uniform(0.1, 0.9) * width_km),
                    y=float(rng.uniform(0.1, 0.9) * height_km),
                    sigma=float(rng.uniform(*sigma_range)),
                    weight=1.0 / (rank + 1),
                )
            )
        return cls(width_km, height_km, hotspots, background_weight)

    def density(self, xy: np.ndarray) -> np.ndarray:
        """Unnormalised mixture density at each row of ``xy``.

        Used to couple venue attractiveness to local footfall: venues
        in dense areas are more popular, as in real check-in data.
        """
        xy = np.asarray(xy, dtype=float)
        out = np.full(
            xy.shape[0],
            self._mix[-1] / (self.width_km * self.height_km),
        )
        for k, hotspot in enumerate(self.hotspots):
            d2 = (xy[:, 0] - hotspot.x) ** 2 + (xy[:, 1] - hotspot.y) ** 2
            norm = 2 * np.pi * hotspot.sigma**2
            out += self._mix[k] * np.exp(-d2 / (2 * hotspot.sigma**2)) / norm
        return out

    def sample_points(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` points from the mixture, clipped to the extent."""
        if count < 0:
            raise ValueError("count must be non-negative")
        component = rng.choice(len(self._mix), size=count, p=self._mix)
        xy = np.empty((count, 2), dtype=float)
        background = component == len(self.hotspots)
        n_background = int(background.sum())
        if n_background:
            xy[background, 0] = rng.uniform(0, self.width_km, n_background)
            xy[background, 1] = rng.uniform(0, self.height_km, n_background)
        for k, hotspot in enumerate(self.hotspots):
            mask = component == k
            n_k = int(mask.sum())
            if n_k:
                xy[mask, 0] = rng.normal(hotspot.x, hotspot.sigma, n_k)
                xy[mask, 1] = rng.normal(hotspot.y, hotspot.sigma, n_k)
        xy[:, 0] = np.clip(xy[:, 0], 0.0, self.width_km)
        xy[:, 1] = np.clip(xy[:, 1], 0.0, self.height_km)
        return xy
