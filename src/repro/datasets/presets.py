"""Dataset presets mirroring the paper's Table 2.

``scale`` shrinks user/venue counts proportionally (check-in counts per
user are kept, so the *shape* of the workload survives) — the paper's
C++ implementation handles the full datasets; a pure-Python
reproduction uses ``scale < 1`` for the timing experiments and records
the scale in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.datasets.generator import (
    SyntheticConfig,
    SyntheticWorld,
    generate_checkin_dataset,
)

#: Full-size Table 2 statistics, for reference and for the Table 2 bench.
FOURSQUARE_TABLE2 = {
    "user count": 2_321,
    "venue count": 5_594,
    "check-ins": 167_231,
    "avg. check-ins": 72,
    "min check-ins": 3,
    "max check-ins": 661,
}

GOWALLA_TABLE2 = {
    "user count": 10_162,
    "venue count": 24_081,
    "check-ins": 381_165,
    "avg. check-ins": 37,
    "min check-ins": 2,
    "max check-ins": 780,
}


def foursquare_like(scale: float = 1.0, seed: int = 42) -> SyntheticWorld:
    """A Foursquare/Singapore-like world (Table 2, column F).

    Dense city, fewer users with many check-ins each.
    """
    if not 0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    config = SyntheticConfig(
        name=f"foursquare-like(x{scale:g})",
        n_users=max(10, round(2_321 * scale)),
        n_venues=max(20, round(5_594 * scale)),
        width_km=39.22,
        height_km=27.03,
        n_hotspots=8,
        avg_checkins=72.0,
        min_checkins=3,
        max_checkins=661,
        count_sigma=1.05,
        anchors_per_user=(2, 4),
        gravity_gamma=1.0,
        seed=seed,
    )
    return generate_checkin_dataset(config)


def gowalla_like(scale: float = 1.0, seed: int = 43) -> SyntheticWorld:
    """A Gowalla/California-like world (Table 2, column G).

    More users and venues, fewer check-ins per user, wider extent.
    """
    if not 0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    config = SyntheticConfig(
        name=f"gowalla-like(x{scale:g})",
        n_users=max(10, round(10_162 * scale)),
        n_venues=max(20, round(24_081 * scale)),
        # "mainly in California": hundreds of km between metro areas,
        # while each user's activity stays local (anchor_spread_km).
        # Calibrated so NIB pruning dominates IA pruning, matching the
        # paper's Fig 10b, with ~2/3 of pairs pruned overall.
        width_km=800.0,
        height_km=600.0,
        n_hotspots=12,
        avg_checkins=37.0,
        min_checkins=2,
        max_checkins=780,
        count_sigma=1.1,
        anchors_per_user=(2, 3),
        anchor_spread_km=8.0,
        gravity_gamma=1.5,
        seed=seed,
    )
    return generate_checkin_dataset(config)


def tiny_demo(seed: int = 7) -> SyntheticWorld:
    """A small, fast world for the quickstart example and smoke tests."""
    config = SyntheticConfig(
        name="tiny-demo",
        n_users=60,
        n_venues=150,
        width_km=12.0,
        height_km=9.0,
        n_hotspots=4,
        avg_checkins=25.0,
        min_checkins=3,
        max_checkins=120,
        seed=seed,
    )
    return generate_checkin_dataset(config)
