"""Synthetic LBS check-in data (the paper's Foursquare/Gowalla stand-in).

The paper evaluates on two proprietary-ish check-in dumps (Table 2).
This package generates statistically matched substitutes:

* a hotspot-mixture *city model* producing the skewed geographic venue
  distribution of Fig 6,
* a heavy-tailed per-user check-in count sampler matched to Table 2's
  avg/min/max,
* a distance-decay *gravity model* (the same mechanism as the paper's
  power-law ``PF``, after Liu et al. [21]) assigning each check-in to a
  venue given the user's anchor points — which simultaneously yields
  the ground-truth per-venue visit counts used by the effectiveness
  experiments (Tables 3-4).

Everything is deterministic given a seed.
"""

from repro.datasets.city import CityModel, Hotspot
from repro.datasets.counts import sample_checkin_counts
from repro.datasets.generator import SyntheticConfig, generate_checkin_dataset
from repro.datasets.presets import foursquare_like, gowalla_like, tiny_demo

__all__ = [
    "CityModel",
    "Hotspot",
    "sample_checkin_counts",
    "SyntheticConfig",
    "generate_checkin_dataset",
    "foursquare_like",
    "gowalla_like",
    "tiny_demo",
]
