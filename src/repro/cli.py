"""Command-line interface: ``prime-ls <experiment>`` or ``python -m repro``.

Runs any of the paper's experiments and prints its table; ``list``
shows what is available.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

import repro.experiments as experiments


def _registry() -> dict[str, tuple[str, Callable[[], object]]]:
    """Experiment name -> (description, zero-arg runner)."""
    return {
        "table2": (
            "dataset statistics vs the paper's Table 2",
            experiments.run_table2,
        ),
        "precision": (
            "Tables 3-4: P@K / AP@K of PRIME-LS vs RANGE vs BRNN*",
            lambda: experiments.run_precision_experiment(groups=10),
        ),
        "fig8-f": (
            "Fig 8: runtime vs #candidates (Foursquare-like)",
            lambda: experiments.run_candidate_scalability("F"),
        ),
        "fig8-g": (
            "Fig 8: runtime vs #candidates (Gowalla-like)",
            lambda: experiments.run_candidate_scalability("G"),
        ),
        "fig9": (
            "Fig 9: runtime vs #objects (Gowalla-like)",
            lambda: experiments.run_object_scalability("G"),
        ),
        "fig10-f": (
            "Fig 10: pruning effect vs tau (Foursquare-like)",
            lambda: experiments.run_pruning_effect("F"),
        ),
        "fig10-g": (
            "Fig 10: pruning effect vs tau (Gowalla-like)",
            lambda: experiments.run_pruning_effect("G"),
        ),
        "remark": (
            "S4.3 Remark: analytic vs measured pruning model",
            experiments.run_pruning_model_check,
        ),
        "fig11a": (
            "Fig 11a / Table 5: effect of n (natural groups)",
            lambda: experiments.run_effect_n_groups("G"),
        ),
        "fig11b": (
            "Fig 11b: effect of n (subsampled instances)",
            lambda: experiments.run_effect_n_resampled("G"),
        ),
        "fig12-f": (
            "Fig 12: effect of tau (Foursquare-like)",
            lambda: experiments.run_effect_tau("F"),
        ),
        "fig12-g": (
            "Fig 12: effect of tau (Gowalla-like)",
            lambda: experiments.run_effect_tau("G"),
        ),
        "fig13": (
            "Fig 13: <n, tau> level curve",
            lambda: experiments.run_n_tau_levelcurve("G"),
        ),
        "fig14-f": (
            "Fig 14: effect of lambda (Foursquare-like)",
            lambda: experiments.run_effect_lambda("F"),
        ),
        "fig14-g": (
            "Fig 14: effect of lambda (Gowalla-like)",
            lambda: experiments.run_effect_lambda("G"),
        ),
        "fig15-f": (
            "Fig 15: effect of rho (Foursquare-like)",
            lambda: experiments.run_effect_rho("F"),
        ),
        "fig15-g": (
            "Fig 15: effect of rho (Gowalla-like)",
            lambda: experiments.run_effect_rho("G"),
        ),
        "fig16": (
            "Fig 16: alternative probability functions",
            lambda: experiments.run_pf_variants("F"),
        ),
        "sampling": (
            "S6.2: how many trajectory samples suffice (24-48 claim)",
            experiments.run_sampling_tradeoff,
        ),
        "stability": (
            "extension: bootstrap/noise robustness of the mined location",
            experiments.run_location_stability,
        ),
    }


def _cmd_demo(out_svg: str | None) -> int:
    """Solve the quickstart world and optionally render the scene."""
    import numpy as np

    from repro import PowerLawPF, select_location
    from repro.datasets import tiny_demo

    world = tiny_demo()
    dataset = world.dataset
    candidates, _ = dataset.sample_candidates(40, np.random.default_rng(0))
    pf = PowerLawPF()
    result = select_location(dataset.objects, candidates, pf=pf, tau=0.7)
    best = result.best_candidate
    print(
        f"optimal location: candidate {best.candidate_id} at "
        f"({best.x:.2f}, {best.y:.2f}) km, influence "
        f"{result.best_influence}/{dataset.n_objects}"
    )
    print(
        f"pruned {result.instrumentation.pruned_fraction():.0%} of pairs, "
        f"{result.elapsed_seconds * 1000:.1f} ms"
    )
    if out_svg:
        from repro.viz import render_scene
        from repro.viz.scene import save_scene

        svg = render_scene(dataset.objects[:4], candidates, pf, 0.7, best=best)
        print(f"scene written to {save_scene(out_svg, svg)}")
    return 0


def _cmd_export(registry, name: str, out_csv: str) -> int:
    from repro.experiments.export import export_result

    if name not in registry:
        print(f"unknown experiment {name!r}; run 'prime-ls list'", file=sys.stderr)
        return 2
    __, runner = registry[name]
    result = runner()
    print(result.render())
    print(f"\nCSV written to {export_result(result, out_csv)}")
    return 0


def _cmd_trace_summary(path: str | None) -> int:
    """Print the per-phase breakdown of a trace file's span trees."""
    from repro.engine import TraceReadError, read_trace_file, summarize_traces

    if not path:
        print(
            "prime-ls trace-summary: needs a trace file, e.g. "
            "'prime-ls trace-summary traces.jsonl' (write one with "
            "'prime-ls serve-bench --trace traces.jsonl')",
            file=sys.stderr,
        )
        return 2
    try:
        traces = read_trace_file(path)
    except TraceReadError as exc:
        print(f"prime-ls trace-summary: {exc}", file=sys.stderr)
        return 2
    print(summarize_traces(traces))
    return 0


def _cmd_serve(
    port: int,
    host: str,
    workers: int,
    pool: bool,
    approx: bool,
    max_inflight: int | None,
    max_queue_depth: int | None,
    shed_policy: str | None,
    drain_seconds: float | None,
    inject_faults: list[str] | None,
) -> int:
    """Run the HTTP front end over a synthetic world until SIGTERM."""
    from repro.engine import (
        SHED_POLICIES,
        FaultSpec,
        TenantAdmission,
        TenantBudget,
        build_serving_engine,
        run_server,
    )

    if not 0 <= port <= 65535:
        print(f"--port must be in [0, 65535], got {port}", file=sys.stderr)
        return 2
    if workers < 0:
        print(f"--workers must be >= 0, got {workers}", file=sys.stderr)
        return 2
    if pool and workers < 2:
        print("--pool needs --workers >= 2", file=sys.stderr)
        return 2
    if max_inflight is not None and max_inflight < 1:
        print(
            f"--max-inflight must be >= 1, got {max_inflight}",
            file=sys.stderr,
        )
        return 2
    if max_queue_depth is not None and max_queue_depth < 0:
        print(
            f"--max-queue-depth must be >= 0, got {max_queue_depth}",
            file=sys.stderr,
        )
        return 2
    if shed_policy is not None and shed_policy not in SHED_POLICIES:
        print(
            f"--shed-policy must be one of {', '.join(SHED_POLICIES)}; "
            f"got {shed_policy!r}",
            file=sys.stderr,
        )
        return 2
    if drain_seconds is not None and drain_seconds < 0:
        print(
            f"--drain-seconds must be >= 0, got {drain_seconds}",
            file=sys.stderr,
        )
        return 2
    faults = []
    for text in inject_faults or []:
        try:
            faults.append(FaultSpec.parse(text))
        except ValueError as exc:
            print(f"--inject-fault: {exc}", file=sys.stderr)
            return 2
    engine, _ = build_serving_engine(
        workers=workers, pool=pool, approx=approx, faults=faults
    )
    tenants = TenantAdmission(
        default=TenantBudget(
            max_inflight=max_inflight if max_inflight is not None else 4,
            max_queue_depth=max_queue_depth,
            policy=shed_policy or "reject",
        )
    )
    from repro.engine.server import DEFAULT_DRAIN_SECONDS

    return run_server(
        engine,
        host=host,
        port=port,
        tenants=tenants,
        drain_seconds=(
            drain_seconds if drain_seconds is not None
            else DEFAULT_DRAIN_SECONDS
        ),
    )


def _cmd_serve_bench_server(
    offered_qps: float,
    duration: float,
    tenants: int,
    workers: int,
    pool: bool,
    approx: bool,
    max_inflight: int | None,
    shed_policy: str | None,
    server_url: str | None,
) -> int:
    """Open-loop HTTP bench: serve-bench with --server/--server-url."""
    from repro.engine import run_server_bench

    if offered_qps <= 0:
        print(
            f"--offered-qps must be > 0, got {offered_qps}", file=sys.stderr
        )
        return 2
    if duration <= 0:
        print(f"--duration must be > 0, got {duration}", file=sys.stderr)
        return 2
    if tenants < 1:
        print(f"--tenants must be >= 1, got {tenants}", file=sys.stderr)
        return 2
    try:
        out = run_server_bench(
            offered_qps=offered_qps,
            duration=duration,
            tenants=tenants,
            workers=workers,
            pool=pool,
            approx=approx,
            max_inflight=max_inflight if max_inflight is not None else 2,
            shed_policy=shed_policy or "reject",
            server_url=server_url,
        )
    except ValueError as exc:
        print(f"serve-bench --server: {exc}", file=sys.stderr)
        return 2
    for line in out["summary_lines"]:
        print(line)
    if "drain" in out:
        tenants_snap = out["drain"]["tenants"]
        for name in sorted(tenants_snap):
            snap = tenants_snap[name]
            print(
                f"tenant {name}: offered={snap['offered']} "
                f"admitted={snap['admitted']} shed={snap['shed']} "
                f"(policy {snap['policy']})"
            )
    return 0


def _cmd_serve_bench(
    queries: int,
    workers: int,
    out_csv: str | None,
    deadline: float | None,
    inject_faults: list[str] | None,
    pool: bool = False,
    batch: bool = False,
    max_inflight: int | None = None,
    shed_policy: str | None = None,
    breaker: int | None = None,
    trace: str | None = None,
    metrics_port: int | None = None,
    approx: bool = False,
) -> int:
    """Run the warm-vs-cold serving benchmark (see repro.engine.bench)."""
    from repro.engine import SHED_POLICIES, FaultSpec, run_serve_bench
    from repro.engine.faults import WORKER_FAULT_KINDS

    if queries < 1:
        print(f"--queries must be >= 1, got {queries}", file=sys.stderr)
        return 2
    if workers < 0:
        print(f"--workers must be >= 0, got {workers}", file=sys.stderr)
        return 2
    if deadline is not None and deadline <= 0:
        print(f"--deadline must be > 0, got {deadline}", file=sys.stderr)
        return 2
    if max_inflight is not None and max_inflight <= 0:
        print(
            f"--max-inflight must be >= 1, got {max_inflight}",
            file=sys.stderr,
        )
        return 2
    if shed_policy is not None and shed_policy not in SHED_POLICIES:
        print(
            f"--shed-policy must be one of {', '.join(SHED_POLICIES)}; "
            f"got {shed_policy!r}",
            file=sys.stderr,
        )
        return 2
    if shed_policy is not None and max_inflight is None:
        print(
            "--shed-policy needs --max-inflight (admission control is "
            "off without an in-flight budget)",
            file=sys.stderr,
        )
        return 2
    if breaker is not None and breaker <= 0:
        print(f"--breaker must be >= 1, got {breaker}", file=sys.stderr)
        return 2
    if metrics_port is not None and not 0 <= metrics_port <= 65535:
        print(
            f"--metrics-port must be in [0, 65535], got {metrics_port}",
            file=sys.stderr,
        )
        return 2
    if trace is not None:
        # Fail fast (exit 2, like every other bad flag) instead of
        # discovering an unwritable trace path mid-benchmark.
        from pathlib import Path

        trace_file = Path(trace)
        try:
            trace_file.parent.mkdir(parents=True, exist_ok=True)
            with open(trace_file, "a"):
                pass
        except OSError as exc:
            print(f"--trace: cannot write {trace!r}: {exc}", file=sys.stderr)
            return 2
    faults = []
    for text in inject_faults or []:
        try:
            faults.append(FaultSpec.parse(text))
        except ValueError as exc:
            print(f"--inject-fault: {exc}", file=sys.stderr)
            return 2
    worker_faults = [f for f in faults if f.kind in WORKER_FAULT_KINDS]
    if worker_faults and workers < 2:
        print(
            "--inject-fault needs --workers >= 2 for worker fault "
            "kinds (they only fire in worker processes)",
            file=sys.stderr,
        )
        return 2
    if (pool or batch) and workers < 2:
        print(
            "--pool/--batch need --workers >= 2 (a worker pool needs "
            "at least two workers)",
            file=sys.stderr,
        )
        return 2
    result = run_serve_bench(
        n_queries=queries,
        workers=workers,
        deadline_seconds=deadline,
        faults=faults,
        pool=pool or batch,
        batch=batch,
        max_inflight=max_inflight,
        shed_policy=shed_policy or "reject",
        breaker_threshold=breaker,
        trace_path=trace,
        metrics_port=metrics_port,
        approx=approx,
    )
    print(result.render())
    if out_csv:
        from repro.experiments.export import export_result

        print(f"\nCSV written to {export_result(result, out_csv)}")
    return 0


#: which option flags each command actually consumes; anything else on
#: the command line would be silently dropped, so we reject it instead
_ALLOWED_FLAGS = {
    "demo": {"--svg"},
    "serve-bench": {
        "--csv", "--queries", "--workers", "--deadline", "--inject-fault",
        "--pool", "--batch", "--max-inflight", "--shed-policy", "--breaker",
        "--trace", "--metrics-port", "--approx", "--server", "--server-url",
        "--offered-qps", "--duration", "--tenants",
    },
    "serve": {
        "--port", "--host", "--workers", "--pool", "--approx",
        "--max-inflight", "--max-queue-depth", "--shed-policy",
        "--drain-seconds", "--inject-fault",
    },
    "trace-summary": set(),
    "list": set(),
    "report": set(),
    "all": set(),
}
_EXPERIMENT_FLAGS = {"--csv"}


def _check_flags(command: str, provided: set[str], is_experiment: bool) -> int:
    """Exit code 0 if every provided flag is consumed, else 2."""
    allowed = _EXPERIMENT_FLAGS if is_experiment else _ALLOWED_FLAGS.get(
        command, set()
    )
    ignored = sorted(provided - allowed)
    if not ignored:
        return 0
    print(
        f"prime-ls {command}: {', '.join(ignored)} "
        f"{'is' if len(ignored) == 1 else 'are'} not used by this command",
        file=sys.stderr,
    )
    return 2


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    registry = _registry()
    parser = argparse.ArgumentParser(
        prog="prime-ls",
        description="Reproduce the PINOCCHIO paper's experiments.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="list",
        help=(
            "experiment name, 'all', 'list' (default), 'demo', "
            "'serve-bench', 'serve', or 'trace-summary'"
        ),
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="with 'trace-summary': the trace JSONL file to summarise",
    )
    parser.add_argument(
        "--svg",
        metavar="PATH",
        help="with 'demo': also render the scene to an SVG file",
    )
    parser.add_argument(
        "--csv",
        metavar="PATH",
        help="export the experiment's sweep series to a CSV file",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=None,
        metavar="N",
        help="with 'serve-bench': number of measured queries (default 12)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="with 'serve-bench': worker processes (default 0 = serial)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with 'serve-bench': per-query deadline for warm queries",
    )
    parser.add_argument(
        "--inject-fault",
        action="append",
        default=None,
        metavar="SPEC",
        help=(
            "with 'serve-bench': inject a fault, "
            "KIND[:WORKER[:QUERY[:SECONDS]]] with KIND one of "
            "crash/exception/delay (worker kinds) or "
            "overload/memory-pressure/exact-down (parent kinds) and "
            "'*' meaning any (e.g. crash:1, exact-down::2); repeatable"
        ),
    )
    parser.add_argument(
        "--pool",
        action="store_true",
        default=False,
        help=(
            "with 'serve-bench': serve warm queries from the "
            "persistent shared-memory worker pool instead of forking "
            "per query (needs --workers >= 2)"
        ),
    )
    parser.add_argument(
        "--batch",
        action="store_true",
        default=False,
        help=(
            "with 'serve-bench': admit all warm queries in one "
            "query_batch round through the pool (implies --pool)"
        ),
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help=(
            "with 'serve-bench': admission budget for concurrently "
            "admitted warm queries; excess queries are shed (with "
            "--batch, at most N + queue-depth requests per round run)"
        ),
    )
    parser.add_argument(
        "--shed-policy",
        default=None,
        metavar="POLICY",
        help=(
            "with 'serve-bench': which queries to shed when admission "
            "overflows — reject, oldest, or by-priority (needs "
            "--max-inflight)"
        ),
    )
    parser.add_argument(
        "--breaker",
        type=int,
        default=None,
        metavar="N",
        help=(
            "with 'serve-bench': consecutive shard failures that trip "
            "an execution tier's circuit breaker (default 3)"
        ),
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help=(
            "with 'serve-bench': append every warm query's span tree "
            "to this JSONL file (read it with 'prime-ls trace-summary "
            "FILE')"
        ),
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "with 'serve-bench': serve the warm engine's Prometheus "
            "page on http://127.0.0.1:PORT/metrics for the bench's "
            "duration (0 = ephemeral port)"
        ),
    )
    parser.add_argument(
        "--approx",
        action="store_true",
        default=False,
        help=(
            "with 'serve-bench': arm the warm engine's approximate "
            "tier — queries shed by admission, or stranded by open "
            "exact-tier breakers (inject with "
            "--inject-fault exact-down), are answered from influence "
            "sketches with an advertised error bound"
        ),
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="PORT",
        help="with 'serve': port to bind (0 = ephemeral; default 8321)",
    )
    parser.add_argument(
        "--host",
        default=None,
        metavar="HOST",
        help="with 'serve': address to bind (default 127.0.0.1)",
    )
    parser.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        metavar="N",
        help=(
            "with 'serve': per-tenant waiting-line depth behind "
            "--max-inflight (default: equal to --max-inflight)"
        ),
    )
    parser.add_argument(
        "--drain-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "with 'serve': how long a SIGTERM drain waits for "
            "in-flight requests before cancelling them (default 5)"
        ),
    )
    parser.add_argument(
        "--server",
        action="store_true",
        default=False,
        help=(
            "with 'serve-bench': benchmark through the HTTP front end "
            "— start an in-process server and drive it with open-loop "
            "Poisson arrivals (see --offered-qps/--duration/--tenants)"
        ),
    )
    parser.add_argument(
        "--server-url",
        default=None,
        metavar="URL",
        help=(
            "with 'serve-bench --server': drive an already-running "
            "front end at http://host:port instead of starting one"
        ),
    )
    parser.add_argument(
        "--offered-qps",
        type=float,
        default=None,
        metavar="QPS",
        help=(
            "with 'serve-bench --server': per-victim-tenant offered "
            "rate; the 'bulk' tenant offers 4x this (default 10)"
        ),
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with 'serve-bench --server': load duration (default 3)",
    )
    parser.add_argument(
        "--tenants",
        type=int,
        default=None,
        metavar="N",
        help=(
            "with 'serve-bench --server': tenant count — one 'bulk' "
            "overloader plus N-1 victims (default 2)"
        ),
    )
    args = parser.parse_args(argv)

    provided = set()
    if args.svg is not None:
        provided.add("--svg")
    if args.csv is not None:
        provided.add("--csv")
    if args.queries is not None:
        provided.add("--queries")
    if args.workers is not None:
        provided.add("--workers")
    if args.deadline is not None:
        provided.add("--deadline")
    if args.inject_fault is not None:
        provided.add("--inject-fault")
    if args.pool:
        provided.add("--pool")
    if args.batch:
        provided.add("--batch")
    if args.max_inflight is not None:
        provided.add("--max-inflight")
    if args.shed_policy is not None:
        provided.add("--shed-policy")
    if args.breaker is not None:
        provided.add("--breaker")
    if args.trace is not None:
        provided.add("--trace")
    if args.metrics_port is not None:
        provided.add("--metrics-port")
    if args.approx:
        provided.add("--approx")
    if args.port is not None:
        provided.add("--port")
    if args.host is not None:
        provided.add("--host")
    if args.max_queue_depth is not None:
        provided.add("--max-queue-depth")
    if args.drain_seconds is not None:
        provided.add("--drain-seconds")
    if args.server:
        provided.add("--server")
    if args.server_url is not None:
        provided.add("--server-url")
    if args.offered_qps is not None:
        provided.add("--offered-qps")
    if args.duration is not None:
        provided.add("--duration")
    if args.tenants is not None:
        provided.add("--tenants")
    is_experiment = args.experiment in registry
    code = _check_flags(args.experiment, provided, is_experiment)
    if code:
        return code
    if args.path is not None and args.experiment != "trace-summary":
        print(
            f"prime-ls {args.experiment}: unexpected argument "
            f"{args.path!r} (only 'trace-summary' takes a file)",
            file=sys.stderr,
        )
        return 2

    if args.experiment == "list":
        width = max(len(name) for name in registry)
        for name, (description, _) in registry.items():
            print(f"{name.ljust(width)}  {description}")
        return 0
    if args.experiment == "demo":
        return _cmd_demo(args.svg)
    if args.experiment == "trace-summary":
        return _cmd_trace_summary(args.path)
    if args.experiment == "serve":
        return _cmd_serve(
            port=args.port if args.port is not None else 8321,
            host=args.host or "127.0.0.1",
            workers=args.workers if args.workers is not None else 0,
            pool=args.pool,
            approx=args.approx,
            max_inflight=args.max_inflight,
            max_queue_depth=args.max_queue_depth,
            shed_policy=args.shed_policy,
            drain_seconds=args.drain_seconds,
            inject_faults=args.inject_fault,
        )
    if args.experiment == "serve-bench" and (args.server or args.server_url):
        return _cmd_serve_bench_server(
            offered_qps=(
                args.offered_qps if args.offered_qps is not None else 10.0
            ),
            duration=args.duration if args.duration is not None else 3.0,
            tenants=args.tenants if args.tenants is not None else 2,
            workers=args.workers if args.workers is not None else 0,
            pool=args.pool,
            approx=args.approx,
            max_inflight=args.max_inflight,
            shed_policy=args.shed_policy,
            server_url=args.server_url,
        )
    if args.experiment == "serve-bench":
        return _cmd_serve_bench(
            queries=args.queries if args.queries is not None else 12,
            workers=args.workers if args.workers is not None else 0,
            out_csv=args.csv,
            deadline=args.deadline,
            inject_faults=args.inject_fault,
            pool=args.pool,
            batch=args.batch,
            max_inflight=args.max_inflight,
            shed_policy=args.shed_policy,
            breaker=args.breaker,
            trace=args.trace,
            metrics_port=args.metrics_port,
            approx=args.approx,
        )
    if args.experiment == "report":
        from repro.experiments.report import generate_report

        path, checks = generate_report()
        failed = [c for c in checks if not c.passed]
        print(f"report written to {path} ({len(checks)} claims checked)")
        for check in failed:
            print(f"FAILED: {check.claim} — {check.measured}", file=sys.stderr)
        return 1 if failed else 0
    if args.experiment == "all":
        for name, (_, runner) in registry.items():
            print(f"=== {name} ===")
            print(runner().render())
            print()
        return 0
    if args.csv:
        return _cmd_export(registry, args.experiment, args.csv)
    if args.experiment not in registry:
        print(
            f"unknown experiment {args.experiment!r}; run 'prime-ls list'",
            file=sys.stderr,
        )
        return 2
    __, runner = registry[args.experiment]
    print(runner().render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
