"""Competitive PRIME-LS: location selection against existing facilities.

Huang et al. [6] (related work, §2.1) study MAX-INF location selection
*with existing facilities*: a new facility only gains the customers it
serves better than the incumbents.  This module adapts that setting to
PRIME-LS semantics:

an object ``O`` counts toward candidate ``c``'s **marginal influence**
iff

* ``Pr_c(O) ≥ τ`` (c influences O, Definition 2), and
* ``Pr_c(O) ≥ max_f Pr_f(O)`` over the existing facilities ``f`` —
  the new site reaches O at least as credibly as every incumbent
  (ties count for the newcomer, keeping the test consistent with the
  closed-region pruning of Lemma 2; an incumbent that reaches O with
  probability exactly 1 is unbeatable and such objects are dropped).

The solver precomputes each object's best incumbent probability once
(one pass over facilities), turning the marginal test into a
per-object *effective threshold* ``τ_O = max(τ, bestIncumbent_O)``
— at which point the standard machinery applies per object with its own
threshold.  Pruning uses each object's ``minMaxRadius(τ_O, n)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.base import LocationSelector, candidates_to_array
from repro.core.influence import batch_log_non_influence, log1m_safe
from repro.core.minmax_radius import min_max_radius
from repro.core.result import Instrumentation, LSResult
from repro.model.candidate import Candidate
from repro.model.moving_object import MovingObject
from repro.prob.base import ProbabilityFunction


class CompetitivePrimeLS(LocationSelector):
    """Marginal-influence location selection against incumbents."""

    name = "COMPETITIVE"

    def __init__(self, facilities: list[Candidate]):
        """``facilities`` are the existing sites competed against
        (may be empty, in which case this reduces to plain PRIME-LS)."""
        self.facilities = list(facilities)

    def _run(
        self,
        objects: list[MovingObject],
        candidates: list[Candidate],
        pf: ProbabilityFunction,
        tau: float,
    ) -> LSResult:
        counters = Instrumentation()
        cand_xy = candidates_to_array(candidates)
        m = cand_xy.shape[0]
        counters.pairs_total = len(objects) * m

        # Per-object effective log threshold:
        # log(1 − max(τ, best incumbent probability)).
        incumbent_xy = (
            np.array([(f.x, f.y) for f in self.facilities], dtype=float)
            if self.facilities
            else np.empty((0, 2))
        )
        influence = np.zeros(m, dtype=int)
        for obj in objects:
            log_thr = self._effective_log_threshold(
                obj, incumbent_xy, pf, tau, counters
            )
            if log_thr is None:
                counters.dead_objects += 1
                continue
            # Derive the per-object radius from the effective threshold
            # (strict inequality against incumbents is handled below).
            radius = self._radius_for(pf, obj.n_positions, log_thr)
            if radius is None:
                counters.dead_objects += 1
                continue
            mbr = obj.mbr
            max_d = mbr.max_dist_many(cand_xy)
            min_d = mbr.min_dist_many(cand_xy)
            ia = max_d <= radius
            band = ~ia & (min_d <= radius)
            counters.pairs_pruned_ia += int(np.count_nonzero(ia))
            counters.pairs_pruned_nib += int(
                m - np.count_nonzero(ia) - np.count_nonzero(band)
            )
            influence[ia] += 1
            band_idx = np.nonzero(band)[0]
            if band_idx.size:
                logs = batch_log_non_influence(
                    pf, obj.positions, cand_xy[band_idx]
                )
                influence[band_idx[logs <= log_thr]] += 1
                counters.pairs_validated += band_idx.size
                n = obj.n_positions
                counters.positions_total += n * band_idx.size
                counters.positions_evaluated += n * band_idx.size
        influences = {j: int(influence[j]) for j in range(m)}
        best_idx = max(influences, key=lambda idx: (influences[idx], -idx))
        return LSResult(
            algorithm=self.name,
            best_candidate=candidates[best_idx],
            best_influence=influences[best_idx],
            influences=influences,
            elapsed_seconds=0.0,
            instrumentation=counters,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _effective_log_threshold(
        obj: MovingObject,
        incumbent_xy: np.ndarray,
        pf: ProbabilityFunction,
        tau: float,
        counters: Instrumentation,
    ) -> float | None:
        """``log(1 − τ_O)`` with ``τ_O = max(τ, best incumbent)``.

        Returns ``None`` when an incumbent already influences the
        object with probability 1 (nothing can strictly beat it).
        """
        best_log = math.log1p(-tau)  # log(1 - tau)
        if incumbent_xy.shape[0]:
            logs = batch_log_non_influence(pf, obj.positions, incumbent_xy)
            counters.positions_evaluated += (
                obj.n_positions * incumbent_xy.shape[0]
            )
            incumbent_best = float(np.min(logs))  # smallest log-non-influence
            if incumbent_best == -math.inf:
                return None
            best_log = min(best_log, incumbent_best)
        return best_log

    @staticmethod
    def _radius_for(
        pf: ProbabilityFunction, n: int, log_threshold: float
    ) -> float | None:
        """``minMaxRadius`` at the effective threshold.

        ``log_threshold = log(1 − τ_O)`` ⇒ ``τ_O = 1 − e^{log_threshold}``.
        """
        tau_eff = -math.expm1(log_threshold)
        if tau_eff >= 1.0:
            return None
        if tau_eff <= 0.0:
            tau_eff = 1e-12
        return min_max_radius(pf, tau_eff, n)


def marginal_influence(
    obj: MovingObject,
    candidate: Candidate,
    facilities: list[Candidate],
    pf: ProbabilityFunction,
    tau: float,
) -> bool:
    """Reference predicate: does ``candidate`` win ``obj`` marginally?

    Used by tests; mirrors the definition without any pruning.
    """
    def log_non_influence_of(x: float, y: float) -> float:
        d = np.hypot(obj.positions[:, 0] - x, obj.positions[:, 1] - y)
        return float(np.sum(log1m_safe(pf(d))))

    cand_log = log_non_influence_of(candidate.x, candidate.y)
    if cand_log > math.log1p(-tau):  # Pr < tau
        return False
    best_incumbent = min(
        (log_non_influence_of(f.x, f.y) for f in facilities),
        default=math.inf,
    )
    if best_incumbent == -math.inf:
        return False  # an incumbent reaches the object with certainty
    return cand_log <= best_incumbent
