"""Safe regions for incremental PRIME-LS maintenance over moving objects.

The IA/NIB rules (Lemmas 2-3) resolve an (object, candidate) pair from
the object's activity MBR ``M`` and its ``minMaxRadius`` ``r`` alone:

* ``IA``   — ``maxDist(c, M) <= r``: certainly influenced,
* ``OUT``  — ``minDist(c, M) >  r``: certainly not influenced,
* ``BAND`` — neither bound resolves: exact validation required.

A position update changes ``(M, r)``; the *safe region* of an object is
the set of ``(M', r')`` for which no candidate's side can change and no
candidate sits in the band — inside it, the update is absorbed with
**zero candidate work** (the influence marks stay exact by Lemmas 2-3,
because every candidate keeps a *certain* verdict).  This is the
safe-region idea of "Probabilistic Voronoi Diagrams for Probabilistic
Moving Nearest Neighbor Queries" transplanted onto the IA/NIB geometry:
maintenance cost scales with boundary *crossings*, not with
``n_candidates × n_updates``.

The region is kept as a single scalar **slack**: the smallest margin,
over all candidates, between the candidate's min/max distance and the
radius.  Both ``minDist`` and ``maxDist`` are 1-Lipschitz in each MBR
side coordinate, so if every side moves by at most ``d`` (L-infinity on
the four coordinates) the distances move by at most ``d * sqrt(2)``;
adding the radius change gives the deformation bound checked by
:meth:`SafeRegion.covers`:

    sqrt(2) * max_side_delta + |r' - r|  <  slack   =>   no side flips.

A band candidate forces ``slack = 0`` — its exact verdict depends on
the actual positions, so any position change must revalidate it, and
``covers`` (strict inequality) then always reports a miss.

Everything here is pure geometry over ``float64`` and is shared by
:class:`repro.core.streaming.SlidingWindowPrimeLS`,
:class:`repro.core.incremental.IncrementalPrimeLS`, and the serving
layer's :class:`repro.engine.subscriptions.SubscriptionEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.mbr import MBR

#: pair sides; ``BAND`` means "exact validation required"
SIDE_OUT = 0
SIDE_IA = 1
SIDE_BAND = 2

#: ``sqrt(2)`` — the Lipschitz constant of minDist/maxDist under an
#: L-infinity perturbation of the four MBR side coordinates
_LIPSCHITZ = float(np.sqrt(2.0))


def pair_side(mbr: MBR, radius: float, cx: float, cy: float) -> int:
    """The IA/NIB side of one candidate point for one object state."""
    if mbr.max_dist(cx, cy) <= radius:
        return SIDE_IA
    if mbr.min_dist(cx, cy) > radius:
        return SIDE_OUT
    return SIDE_BAND


def side_margins(
    min_d: np.ndarray, max_d: np.ndarray, radius: float
) -> np.ndarray:
    """Per-candidate distance-to-flip margins from min/max distances.

    ``OUT`` candidates get ``minDist - r`` (how far the boundary can
    approach before the NIB proof dies), ``IA`` candidates get
    ``r - maxDist``, and band candidates get ``0`` — they have no safe
    slack at all.  All inputs/outputs are plain float64 arrays so the
    caller can batch objects however it likes.
    """
    ia = max_d <= radius
    out = min_d > radius
    margins = np.zeros_like(min_d)
    np.subtract(min_d, radius, out=margins, where=out)
    np.subtract(radius, max_d, out=margins, where=ia)
    return margins


def margins_span(
    mbrs: np.ndarray, radii: np.ndarray, cand_xy: np.ndarray
) -> np.ndarray:
    """Vectorised ``(r, m)`` margin matrix for a block of objects.

    ``mbrs`` is ``(r, 4)`` rows ``(min_x, min_y, max_x, max_y)``,
    ``radii`` ``(r,)`` and ``cand_xy`` ``(m, 2)`` — the same columnar
    layout as :func:`repro.core.pruning.classify_span`, with the same
    min/max distance expressions, so the margins agree bit-for-bit with
    the classification the engine acted on.
    """
    x = cand_xy[:, 0][None, :]
    y = cand_xy[:, 1][None, :]
    min_x = mbrs[:, 0][:, None]
    min_y = mbrs[:, 1][:, None]
    max_x = mbrs[:, 2][:, None]
    max_y = mbrs[:, 3][:, None]
    dx = np.maximum(np.maximum(min_x - x, 0.0), x - max_x)
    dy = np.maximum(np.maximum(min_y - y, 0.0), y - max_y)
    min_d = np.sqrt(dx * dx + dy * dy)
    dx = np.maximum(np.abs(x - min_x), np.abs(x - max_x))
    dy = np.maximum(np.abs(y - min_y), np.abs(y - max_y))
    max_d = np.sqrt(dx * dx + dy * dy)
    r = radii[:, None]
    ia = max_d <= r
    out = min_d > r
    margins = np.zeros_like(min_d)
    np.subtract(min_d, r, out=margins, where=out)
    np.subtract(r, max_d, out=margins, where=ia)
    return margins


@dataclass(frozen=True, slots=True)
class SafeRegion:
    """One object's safe region: the reference state plus its slack.

    ``slack`` is the minimum :func:`side_margins` value over every
    candidate the owner tracks (``inf`` when there are none).  The
    region is *sound but not tight*: :meth:`covers` returning ``True``
    guarantees no candidate's verdict changed; returning ``False``
    only means the caller must re-examine candidates.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float
    radius: float
    slack: float

    @classmethod
    def from_margins(
        cls, mbr: MBR, radius: float, margins: np.ndarray
    ) -> "SafeRegion":
        """Build the region for ``(mbr, radius)`` from its margin row."""
        slack = float(margins.min()) if margins.size else float("inf")
        return cls(
            mbr.min_x, mbr.min_y, mbr.max_x, mbr.max_y, radius, slack
        )

    @classmethod
    def compute(
        cls, mbr: MBR, radius: float, cand_xy: np.ndarray
    ) -> "SafeRegion":
        """Build the region for ``(mbr, radius)`` against ``cand_xy``."""
        if cand_xy.size == 0:
            return cls(
                mbr.min_x, mbr.min_y, mbr.max_x, mbr.max_y,
                radius, float("inf"),
            )
        min_d = mbr.min_dist_many(cand_xy)
        max_d = mbr.max_dist_many(cand_xy)
        return cls.from_margins(
            mbr, radius, side_margins(min_d, max_d, radius)
        )

    def covers(self, mbr: MBR, radius: float) -> bool:
        """``True`` iff moving to ``(mbr, radius)`` cannot flip any side.

        Strict inequality on purpose: a zero slack (some candidate in
        the band, or a candidate sitting exactly on a boundary) is
        never safe, because band verdicts depend on the positions
        themselves, not only on the MBR.
        """
        delta = max(
            abs(mbr.min_x - self.min_x),
            abs(mbr.min_y - self.min_y),
            abs(mbr.max_x - self.max_x),
            abs(mbr.max_y - self.max_y),
        )
        deformation = _LIPSCHITZ * delta + abs(radius - self.radius)
        return deformation < self.slack
