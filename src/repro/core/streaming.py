"""Sliding-window PRIME-LS over streaming positions.

The dynamic scenario of the paper's §7, taken one step further than
:class:`repro.core.incremental.IncrementalPrimeLS`: positions arrive as
a stream per object, and only the most recent ``window`` positions of
each object count (check-ins older than the window no longer describe
the object's mobility).

Design: per object we keep a deque of its window positions plus a
:class:`repro.core.safe_region.SafeRegion` — the deformation budget
within which no candidate's IA/NIB verdict can change.  An observation
that stays inside the safe region is absorbed with **zero candidate
work** (``counters.safe_region_hits``).  Only a boundary crossing
recomputes, and then only against candidates that could possibly have
changed: those inside the NIB bounding box of the *union* of the old
and new activity MBRs.  For slow-moving objects this touches a handful
of candidates, and for off-boundary objects none at all.

Exactness is preserved: at any instant the reported influences equal a
batch solve over each object's current window.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.influence import influence_threshold_log, validate_pair
from repro.core.minmax_radius import MinMaxRadiusCache
from repro.core.result import Instrumentation
from repro.core.safe_region import SafeRegion
from repro.geo.mbr import MBR
from repro.index.rtree import RTree
from repro.model.candidate import Candidate
from repro.prob.base import ProbabilityFunction


class SlidingWindowPrimeLS:
    """Exact PRIME-LS influence over the last ``window`` positions per object."""

    def __init__(
        self,
        pf: ProbabilityFunction,
        tau: float,
        window: int = 50,
        rtree_max_entries: int = 8,
    ):
        if not 0.0 < tau < 1.0:
            raise ValueError(f"tau must be in (0, 1), got {tau}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.pf = pf
        self.tau = tau
        self.window = window
        self._log_threshold = influence_threshold_log(tau)
        self._radius_cache = MinMaxRadiusCache(pf, tau)
        self._rtree = RTree(max_entries=rtree_max_entries)
        self._candidates: dict[int, Candidate] = {}
        self._influence: dict[int, int] = {}
        self._windows: dict[int, deque] = {}
        self._influenced_by: dict[int, set[int]] = {}
        self._safe_regions: dict[int, SafeRegion] = {}
        self._cand_xy_cache: np.ndarray | None = None
        self.counters = Instrumentation()

    # ------------------------------------------------------------------
    # Candidates
    # ------------------------------------------------------------------
    def add_candidate(self, candidate: Candidate) -> None:
        """Register a candidate and score it against current windows."""
        cid = candidate.candidate_id
        if cid in self._candidates:
            raise KeyError(f"candidate {cid} already present")
        self._candidates[cid] = candidate
        self._rtree.insert(cid, candidate.x, candidate.y)
        # A new candidate can only shrink safe-region slacks; drop them
        # so the next observation per object recomputes against it.
        self._safe_regions.clear()
        self._cand_xy_cache = None
        influence = 0
        for oid in self._windows:
            if self._object_influenced_by_point(oid, candidate.x, candidate.y):
                self._influenced_by[oid].add(cid)
                influence += 1
        self._influence[cid] = influence

    # ------------------------------------------------------------------
    # Position stream
    # ------------------------------------------------------------------
    def observe(self, object_id: int, x: float, y: float) -> None:
        """Feed one position observation for ``object_id``.

        Creates the object on first sight; evicts the oldest position
        once the window is full.
        """
        win = self._windows.get(object_id)
        if win is None:
            win = deque(maxlen=self.window)
            self._windows[object_id] = win
            self._influenced_by[object_id] = set()
        old_mbr = self._window_mbr(win)
        win.append((float(x), float(y)))
        self._refresh_object(object_id, old_mbr)

    def forget_object(self, object_id: int) -> None:
        """Drop an object and roll back its influence contributions."""
        if object_id not in self._windows:
            raise KeyError(f"unknown object {object_id}")
        for cid in self._influenced_by.pop(object_id):
            self._influence[cid] -= 1
        del self._windows[object_id]
        self._safe_regions.pop(object_id, None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def influence_of(self, candidate_id: int) -> int:
        """Current exact influence over the live windows."""
        return self._influence[candidate_id]

    def optimal_location(self) -> tuple[Candidate, int]:
        """The current PRIME-LS answer: ``(candidate, influence)``."""
        if not self._candidates:
            raise ValueError("no candidates registered")
        best_cid = max(
            self._influence, key=lambda cid: (self._influence[cid], -cid)
        )
        return self._candidates[best_cid], self._influence[best_cid]

    def window_of(self, object_id: int) -> np.ndarray:
        """The object's current window as an ``(n, 2)`` array."""
        return np.array(self._windows[object_id], dtype=float)

    @property
    def n_objects(self) -> int:
        return len(self._windows)

    @property
    def n_candidates(self) -> int:
        return len(self._candidates)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _window_mbr(win: deque) -> MBR | None:
        if not win:
            return None
        xs = [p[0] for p in win]
        ys = [p[1] for p in win]
        return MBR(min(xs), min(ys), max(xs), max(ys))

    def _cand_xy(self) -> np.ndarray:
        """The ``(m, 2)`` candidate coordinate array, cached."""
        if self._cand_xy_cache is None:
            self._cand_xy_cache = np.array(
                [(c.x, c.y) for c in self._candidates.values()],
                dtype=float,
            ).reshape(-1, 2)
        return self._cand_xy_cache

    def _refresh_object(self, object_id: int, old_mbr: MBR | None) -> None:
        """Re-evaluate the object against all possibly affected candidates."""
        win = self._windows[object_id]
        new_mbr = self._window_mbr(win)
        radius = self._radius_cache.radius(len(win))
        influenced = self._influenced_by[object_id]

        if radius is None:
            # Object uninfluenceable at this window size: clear it out.
            for cid in influenced:
                self._influence[cid] -= 1
            influenced.clear()
            self._safe_regions.pop(object_id, None)
            return

        region = self._safe_regions.get(object_id)
        if region is not None and region.covers(new_mbr, radius):
            # Every candidate keeps a certain IA/OUT verdict: the marks
            # are still exact and no candidate needs to be examined.
            self.counters.safe_region_hits += 1
            return

        # Candidates whose verdict can change live in the NIB box of the
        # union of the old and new activity regions.  The radius is also
        # window-size dependent, so use the larger of old/new n's radius
        # implicitly via the current radius (window length changes by at
        # most one position; the cache gives the exact current value,
        # and the union MBR covers both before and after geometries).
        probe = new_mbr if old_mbr is None else new_mbr.union(old_mbr)
        affected = set(self._rtree.query_rect(probe.expanded(radius)))
        # Candidates outside the probe box satisfy minDist > radius and
        # are certainly not influenced *now* (Theorem 2) — but ones that
        # were influenced before must be re-checked so their mark can be
        # rolled back (the window and the radius both changed).
        affected |= influenced
        positions = np.array(win, dtype=float)
        for cid in affected:
            candidate = self._candidates.get(cid)
            if candidate is None:
                continue
            now = self._pair_influenced(positions, new_mbr, radius,
                                        candidate.x, candidate.y)
            was = cid in influenced
            if now and not was:
                influenced.add(cid)
                self._influence[cid] += 1
            elif was and not now:
                influenced.discard(cid)
                self._influence[cid] -= 1
        self._safe_regions[object_id] = SafeRegion.compute(
            new_mbr, radius, self._cand_xy()
        )

    def _object_influenced_by_point(
        self, object_id: int, cx: float, cy: float
    ) -> bool:
        win = self._windows[object_id]
        radius = self._radius_cache.radius(len(win))
        if radius is None:
            return False
        mbr = self._window_mbr(win)
        positions = np.array(win, dtype=float)
        return self._pair_influenced(positions, mbr, radius, cx, cy)

    def _pair_influenced(
        self,
        positions: np.ndarray,
        mbr: MBR,
        radius: float,
        cx: float,
        cy: float,
    ) -> bool:
        if mbr.max_dist(cx, cy) <= radius:
            self.counters.pairs_pruned_ia += 1
            return True
        if mbr.min_dist(cx, cy) > radius:
            self.counters.pairs_pruned_nib += 1
            return False
        return validate_pair(
            self.pf,
            positions,
            cx,
            cy,
            self._log_threshold,
            counters=self.counters,
            kernel="vector",
            early_stop=True,
        )
