"""Weighted PRIME-LS: objects carry importance weights.

Xia et al. [1] (related work, §2.1) define a location's influence as
the *total weight* of its reverse nearest neighbours.  The same
generalisation applies verbatim to PRIME-LS: given a weight ``w_O`` per
moving object (customer value, animal conservation status, ...),

``inf(c) = Σ { w_O : Pr_c(O) ≥ τ }``.

Every pruning rule carries over unchanged — the IA rule adds ``w_O``
instead of 1, the NIB rule skips the pair — so this is PINOCCHIO with
float accumulation.  With unit weights it reduces exactly to
:class:`repro.core.pinocchio.Pinocchio` (asserted by tests).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.base import LocationSelector, candidates_to_array
from repro.core.influence import batch_log_non_influence, influence_threshold_log
from repro.core.object_table import ObjectTable
from repro.core.pruning import classify_chunks
from repro.core.result import Instrumentation, LSResult
from repro.model.candidate import Candidate
from repro.model.moving_object import MovingObject
from repro.prob.base import ProbabilityFunction


class WeightedPrimeLS(LocationSelector):
    """PINOCCHIO with per-object non-negative weights."""

    name = "WEIGHTED"

    def __init__(self, weights: Sequence[float] | dict[int, float]):
        """``weights`` is either a sequence aligned with the object list
        passed to :meth:`select`, or a mapping from ``object_id``."""
        self.weights = weights

    def _weight_of(self, position: int, obj: MovingObject) -> float:
        if isinstance(self.weights, dict):
            weight = float(self.weights.get(obj.object_id, 1.0))
        else:
            weight = float(self.weights[position])
        if weight < 0.0:
            raise ValueError(
                f"weights must be non-negative, got {weight} for object "
                f"{obj.object_id}"
            )
        return weight

    def _run(
        self,
        objects: list[MovingObject],
        candidates: list[Candidate],
        pf: ProbabilityFunction,
        tau: float,
    ) -> LSResult:
        if not isinstance(self.weights, dict) and len(self.weights) != len(objects):
            raise ValueError(
                f"{len(self.weights)} weights for {len(objects)} objects"
            )
        weight_by_id = {
            obj.object_id: self._weight_of(i, obj)
            for i, obj in enumerate(objects)
        }
        counters = Instrumentation()
        table = ObjectTable(objects, pf, tau)
        counters.dead_objects = table.dead_objects
        cand_xy = candidates_to_array(candidates)
        m = cand_xy.shape[0]
        counters.pairs_total = table.live_count * m
        log_threshold = influence_threshold_log(tau)
        influence = np.zeros(m, dtype=float)

        for chunk, ia, band in classify_chunks(table.entries, cand_xy):
            chunk_weights = np.array(
                [weight_by_id[e.obj.object_id] for e in chunk]
            )
            ia_count = int(np.count_nonzero(ia))
            band_count = int(np.count_nonzero(band))
            counters.pairs_pruned_ia += ia_count
            counters.pairs_pruned_nib += len(chunk) * m - ia_count - band_count
            influence += chunk_weights @ ia
            rows, cols = np.nonzero(band)
            boundaries = np.searchsorted(rows, np.arange(len(chunk) + 1))
            for i, entry in enumerate(chunk):
                maybe = cols[boundaries[i] : boundaries[i + 1]]
                if not maybe.size:
                    continue
                logs = batch_log_non_influence(
                    pf, entry.obj.positions, cand_xy[maybe]
                )
                influenced = logs <= log_threshold
                influence[maybe[influenced]] += chunk_weights[i]
                counters.pairs_validated += maybe.size
                n = entry.obj.n_positions
                counters.positions_total += n * maybe.size
                counters.positions_evaluated += n * maybe.size

        influences = {j: float(influence[j]) for j in range(m)}
        best_idx = max(influences, key=lambda idx: (influences[idx], -idx))
        return LSResult(
            algorithm=self.name,
            best_candidate=candidates[best_idx],
            best_influence=influences[best_idx],
            influences=influences,
            elapsed_seconds=0.0,
            instrumentation=counters,
        )
