"""PINOCCHIO-VO — Algorithm 3 — and the PIN-VO* ablation.

On top of PINOCCHIO's pruning rules, the validation phase applies:

* **Strategy 1** (upper/lower influence bounds): candidates are
  organised in a max-heap ordered by ``maxInf`` then ``minInf``; once
  the top of the heap has ``maxInf < maxminInf`` no remaining candidate
  can win and validation stops.  During one candidate's validation the
  same test aborts it as soon as it is dominated.
* **Strategy 2** (early stopping, Lemma 4): a pair validation stops as
  soon as the running partial non-influence probability drops to
  ``≤ 1 − τ``.

Bookkeeping notes (all behaviour-preserving w.r.t. Algorithm 3):

* After the pruning phase ``maxInf(c) = minInf(c) + |VS(c)|`` — an
  object contributes to ``maxInf(c)`` only if it was IA-certified
  (already in ``minInf``) or still needs validation (in ``VS(c)``).
  This identity replaces the paper's explicit per-object ``maxInf``
  decrements (Algorithm 3 line 9).
* ``maxminInf`` is seeded with ``max_c minInf(c)`` rather than the
  paper's 0 — ``minInf`` is a certified lower bound after pruning, so
  this is sound and strictly tightens Strategy 1 from the first pop.
* In the default vector kernel, one candidate's verification set is
  validated in object batches with a two-phase early stop, gathered
  columnar from the table's flat position block
  (:func:`repro.core.influence.batch_validate_spans`); Strategy 1
  aborts at batch boundaries.  The scalar kernel follows the paper's
  per-object/per-position loop exactly.

PIN-VO* (§6.1) is the ablation with the pruning phase disabled: every
live object of every candidate goes to validation, and only the two
strategies cut work.
"""

from __future__ import annotations

import heapq
import time

import numpy as np

from repro.core.base import LocationSelector, candidates_to_array
from repro.core.influence import (
    batch_validate_spans,
    influence_threshold_log,
    log1m_safe,
    validate_pair,
)
from repro.core.object_table import ObjectTable
from repro.core.pruning import classify_candidates, classify_table_chunks
from repro.core.result import Instrumentation, LSResult
from repro.model.candidate import Candidate
from repro.model.moving_object import MovingObject
from repro.prob.base import ProbabilityFunction


class PinocchioVO(LocationSelector):
    """Algorithm 3: pruning + optimised validation (Strategies 1 and 2)."""

    name = "PIN-VO"

    #: whether the pruning phase runs (PIN-VO* turns it off)
    use_pruning = True

    #: objects validated per batched kernel call in vector mode
    BATCH_OBJECTS = 128

    def __init__(
        self,
        kernel: str = "vector",
        rtree_max_entries: int = 8,
        use_rtree: bool = False,
        fail_fast: bool = False,
    ):
        """``use_rtree=True`` reproduces the paper's candidate R-tree
        range queries; the default uses the equivalent chunked
        broadcast classification (see :class:`repro.core.Pinocchio`).
        ``fail_fast`` enables the sound reject-early bound described in
        DESIGN.md §5 (an extension beyond the paper, off by default).
        """
        if kernel not in ("vector", "scalar"):
            raise ValueError(f"unknown kernel {kernel!r}")
        if fail_fast and kernel != "scalar":
            raise ValueError(
                "fail_fast applies per position and requires kernel='scalar'"
            )
        self.kernel = kernel
        self.rtree_max_entries = rtree_max_entries
        self.use_rtree = use_rtree
        self.fail_fast = fail_fast

    def _run(
        self,
        objects: list[MovingObject],
        candidates: list[Candidate],
        pf: ProbabilityFunction,
        tau: float,
    ) -> LSResult:
        counters = Instrumentation()
        table = self._object_table(objects, pf, tau)
        counters.dead_objects = table.dead_objects
        cand_xy = candidates_to_array(candidates)
        counters.pairs_total = table.live_count * cand_xy.shape[0]

        with counters.phase("pruning"):
            min_inf, vs_indexes = self.pruning_phase(table, cand_xy, counters)
        return self.validation_phase(
            table, candidates, cand_xy, pf, tau, counters, min_inf, vs_indexes
        )

    def validation_phase(
        self,
        table: ObjectTable,
        candidates: list[Candidate],
        cand_xy: np.ndarray,
        pf: ProbabilityFunction,
        tau: float,
        counters: Instrumentation,
        min_inf: np.ndarray,
        vs_indexes: list[np.ndarray],
    ) -> LSResult:
        """Strategy-1/2 validation given the pruning phase's output.

        Split out so the serving engine can run the pruning phase
        sharded across worker processes (candidate columns are
        independent) and feed the merged ``minInf``/``VS`` arrays into
        the inherently sequential heap loop here.
        """
        m = cand_xy.shape[0]
        log_threshold = influence_threshold_log(tau)
        timer_started = time.perf_counter()

        # maxInf(c) = minInf(c) + |VS(c)| (see module docstring).
        max_inf = min_inf + np.array([v.size for v in vs_indexes], dtype=int)
        maxmin_inf = int(min_inf.max())
        best_idx = int(min_inf.argmax())
        fully_validated: dict[int, int] = {}

        heap = [(-int(max_inf[j]), -int(min_inf[j]), j) for j in range(m)]
        heapq.heapify(heap)

        while heap:
            _, _, j = heapq.heappop(heap)
            counters.heap_pops += 1
            if max_inf[j] < maxmin_inf:
                # Strategy 1: nothing left on the heap can beat the
                # best certified influence.
                counters.candidates_skipped_strategy1 += 1 + len(heap)
                break
            aborted = self._validate_candidate(
                pf, table, vs_indexes[j],
                cand_xy[j, 0], cand_xy[j, 1],
                log_threshold, counters, min_inf, max_inf, j, maxmin_inf,
            )
            if aborted:
                continue
            counters.candidates_fully_validated += 1
            fully_validated[j] = int(min_inf[j])
            if min_inf[j] > maxmin_inf or (
                min_inf[j] == maxmin_inf and best_idx not in fully_validated
            ):
                best_idx = j
            maxmin_inf = max(maxmin_inf, int(min_inf[j]))
        counters.validation_seconds += time.perf_counter() - timer_started

        # The winner is always fully validated by the time the loop
        # stops: a candidate holding the current maxminInf as a pure
        # lower bound still sits on the heap with maxInf >= maxminInf,
        # which blocks the Strategy-1 break until it has been popped —
        # and a popped bound-holder can never be aborted mid-validation
        # (its maxInf stays >= its own certified lower bound).
        best_influence = fully_validated.get(best_idx, int(min_inf[best_idx]))
        return LSResult(
            algorithm=self.name,
            best_candidate=candidates[best_idx],
            best_influence=best_influence,
            influences=fully_validated,
            elapsed_seconds=0.0,
            instrumentation=counters,
        )

    # ------------------------------------------------------------------
    # Pruning phase
    # ------------------------------------------------------------------
    def pruning_phase(
        self,
        table: ObjectTable,
        cand_xy: np.ndarray,
        counters: Instrumentation,
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """IA/NIB pruning.

        Returns certified influence lower bounds (``minInf``) and, per
        candidate, the verification set as an array of indexes into
        ``table.entries``.
        """
        m = cand_xy.shape[0]
        min_inf = np.zeros(m, dtype=int)
        if not self.use_pruning:
            everything = np.arange(table.live_count)
            return min_inf, [everything] * m
        if self.use_rtree:
            return self._prune_with_rtree(table, cand_xy, counters, min_inf)
        all_rows: list[np.ndarray] = []
        all_cols: list[np.ndarray] = []
        for start, stop, ia, band in classify_table_chunks(table, cand_xy):
            ia_count = int(np.count_nonzero(ia))
            band_count = int(np.count_nonzero(band))
            counters.pairs_pruned_ia += ia_count
            counters.pairs_pruned_nib += (
                (stop - start) * m - ia_count - band_count
            )
            min_inf += ia.sum(axis=0)
            rows, cols = np.nonzero(band)
            all_rows.append(rows + start)
            all_cols.append(cols)
        rows = np.concatenate(all_rows) if all_rows else np.empty(0, dtype=int)
        cols = np.concatenate(all_cols) if all_cols else np.empty(0, dtype=int)
        # Group band pairs by candidate with one sort instead of
        # per-pair list appends.
        order = np.argsort(cols, kind="stable")
        rows = rows[order]
        cols = cols[order]
        boundaries = np.searchsorted(cols, np.arange(m + 1))
        vs_indexes = [
            rows[boundaries[j] : boundaries[j + 1]] for j in range(m)
        ]
        return min_inf, vs_indexes

    def _prune_with_rtree(
        self,
        table: ObjectTable,
        cand_xy: np.ndarray,
        counters: Instrumentation,
        min_inf: np.ndarray,
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        m = cand_xy.shape[0]
        rtree = self._candidate_rtree(cand_xy, self.rtree_max_entries)
        sets: list[list[int]] = [[] for _ in range(m)]
        for i, entry in enumerate(table.entries):
            outcome = classify_candidates(entry, cand_xy, rtree)
            counters.pairs_pruned_ia += outcome.certain.size
            counters.pairs_pruned_nib += outcome.pruned_nib
            min_inf[outcome.certain] += 1
            for j in outcome.maybe.tolist():
                sets[j].append(i)
        return min_inf, [np.array(s, dtype=int) for s in sets]

    # ------------------------------------------------------------------
    # Validation phase
    # ------------------------------------------------------------------
    def _validate_candidate(
        self,
        pf: ProbabilityFunction,
        table: ObjectTable,
        vs: np.ndarray,
        cx: float,
        cy: float,
        log_threshold: float,
        counters: Instrumentation,
        min_inf: np.ndarray,
        max_inf: np.ndarray,
        j: int,
        maxmin_inf: int,
    ) -> bool:
        """Validate one candidate's verification set.

        Returns ``True`` when the candidate was abandoned by Strategy 1.
        """
        if self.kernel == "vector":
            # Columnar Strategy-2 kernel: each batch of the span is
            # gathered straight from the table's flat position block —
            # no per-object arrays, no entry wrappers (pool workers
            # validate against the attached shared segment as-is).
            positions, offsets = table.positions_offsets()
            for start in range(0, vs.size, self.BATCH_OBJECTS):
                batch = vs[start : start + self.BATCH_OBJECTS]
                influenced = batch_validate_spans(
                    pf,
                    positions,
                    offsets,
                    batch,
                    cx,
                    cy,
                    log_threshold,
                    counters=counters,
                )
                hits = int(np.count_nonzero(influenced))
                min_inf[j] += hits
                max_inf[j] -= batch.size - hits
                if max_inf[j] < maxmin_inf:
                    counters.candidates_skipped_strategy1 += 1
                    return True
            return False
        entries = table.entries
        for i in vs.tolist():
            entry = entries[i]
            fail_fast_bound = None
            if self.fail_fast:
                p_ub = float(pf(entry.mbr.min_dist(cx, cy)))
                fail_fast_bound = float(log1m_safe(p_ub))
            influenced = validate_pair(
                pf,
                entry.obj.positions,
                cx,
                cy,
                log_threshold,
                counters=counters,
                kernel="scalar",
                early_stop=True,
                fail_fast_log_bound=fail_fast_bound,
            )
            if influenced:
                min_inf[j] += 1
            else:
                max_inf[j] -= 1
                if max_inf[j] < maxmin_inf:
                    counters.candidates_skipped_strategy1 += 1
                    return True
        return False


class PinocchioVOStar(PinocchioVO):
    """PIN-VO*: validation optimisations only, no pruning phase (§6.1)."""

    name = "PIN-VO*"
    use_pruning = False
