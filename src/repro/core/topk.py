"""Top-k PRIME-LS: the k most influential candidate locations.

A natural generalisation the paper's related work motivates (Huang et
al. [6] and Zhan et al. [13] study top-k influential facilities for
static/uncertain objects): return the ``k`` candidates with the largest
influence, in order, with exact influence values.

The algorithm generalises PINOCCHIO-VO's Strategy 1: instead of the
single best certified influence, ``maxminInf`` becomes the *k-th best*
certified lower bound, maintained in a size-k min-heap.  A candidate is
abandoned once its upper bound drops below that k-th best bound — with
``k = 1`` this degenerates to Algorithm 3 exactly.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.base import LocationSelector, candidates_to_array
from repro.core.influence import batch_validate_spans, influence_threshold_log
from repro.core.pinocchio_vo import PinocchioVO
from repro.core.result import Instrumentation, LSResult
from repro.model.candidate import Candidate
from repro.model.moving_object import MovingObject
from repro.core.object_table import ObjectTable
from repro.prob.base import ProbabilityFunction


def _kth_best_lower_bound(min_inf: np.ndarray, k: int) -> int:
    """The k-th largest certified lower bound across distinct candidates.

    A candidate whose upper bound falls strictly below this value cannot
    be in the top-k: k *other* candidates are certified to beat it.  The
    bound must be taken over candidates, not over a stream of offered
    values — a candidate whose lower bound is offered once at seeding
    and again after validation would count twice, inflating the
    threshold and wrongly abandoning true top-k members.  With fewer
    than k candidates nothing may ever be abandoned.
    """
    m = min_inf.shape[0]
    if m < k:
        return 0
    return int(np.partition(min_inf, m - k)[m - k])


class TopKPrimeLS(LocationSelector):
    """Exact top-k PRIME-LS via generalised Strategy-1 bounds.

    ``select`` returns an :class:`LSResult` whose ``influences`` map
    contains (at least) the top-k candidates with exact values;
    :meth:`top_k_of` extracts the ordered list.
    """

    name = "TOP-K"

    BATCH_OBJECTS = PinocchioVO.BATCH_OBJECTS

    def __init__(self, k: int = 5):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k

    def _run(
        self,
        objects: list[MovingObject],
        candidates: list[Candidate],
        pf: ProbabilityFunction,
        tau: float,
    ) -> LSResult:
        counters = Instrumentation()
        table = ObjectTable(objects, pf, tau)
        counters.dead_objects = table.dead_objects
        cand_xy = candidates_to_array(candidates)
        m = cand_xy.shape[0]
        counters.pairs_total = table.live_count * m
        log_threshold = influence_threshold_log(tau)

        # Reuse PIN-VO's pruning phase verbatim.
        pruner = PinocchioVO()
        min_inf, vs_indexes = pruner.pruning_phase(table, cand_xy, counters)
        max_inf = min_inf + np.array([v.size for v in vs_indexes], dtype=int)

        # ``min_inf`` doubles as the per-candidate certified lower bound
        # and rises in place during validation, so the Strategy-1 stop
        # threshold is always the k-th largest entry of ``min_inf``.
        fully_validated: dict[int, int] = {}
        heap = [(-int(max_inf[j]), -int(min_inf[j]), j) for j in range(m)]
        heapq.heapify(heap)
        positions, offsets = table.positions_offsets()

        while heap:
            _, _, j = heapq.heappop(heap)
            counters.heap_pops += 1
            threshold = _kth_best_lower_bound(min_inf, self.k)
            if max_inf[j] < threshold and len(fully_validated) >= self.k:
                counters.candidates_skipped_strategy1 += 1 + len(heap)
                break
            aborted = False
            vs = vs_indexes[j]
            for start in range(0, vs.size, self.BATCH_OBJECTS):
                batch = vs[start : start + self.BATCH_OBJECTS]
                influenced = batch_validate_spans(
                    pf,
                    positions,
                    offsets,
                    batch,
                    cand_xy[j, 0],
                    cand_xy[j, 1],
                    log_threshold,
                    counters=counters,
                )
                hits = int(np.count_nonzero(influenced))
                min_inf[j] += hits
                max_inf[j] -= batch.size - hits
                if (
                    max_inf[j] < _kth_best_lower_bound(min_inf, self.k)
                    and len(fully_validated) >= self.k
                ):
                    counters.candidates_skipped_strategy1 += 1
                    aborted = True
                    break
            if aborted:
                continue
            counters.candidates_fully_validated += 1
            fully_validated[j] = int(min_inf[j])

        ordered = sorted(fully_validated.items(), key=lambda kv: (-kv[1], kv[0]))
        best_idx, best_influence = ordered[0]
        return LSResult(
            algorithm=self.name,
            best_candidate=candidates[best_idx],
            best_influence=best_influence,
            influences=fully_validated,
            elapsed_seconds=0.0,
            instrumentation=counters,
        )

    def top_k_of(self, result: LSResult) -> list[tuple[int, int]]:
        """The ordered ``(candidate_index, influence)`` top-k list."""
        return result.ranking()[: self.k]


def top_k_locations(
    objects: list[MovingObject],
    candidates: list[Candidate],
    pf: ProbabilityFunction,
    tau: float,
    k: int = 5,
) -> list[tuple[Candidate, int]]:
    """Convenience wrapper: the k most influential candidates, in order."""
    solver = TopKPrimeLS(k=k)
    result = solver.select(objects, candidates, pf, tau)
    return [
        (candidates[idx], influence)
        for idx, influence in solver.top_k_of(result)
    ]
