"""Multi-location PRIME-LS: choose k sites that together influence the
most objects.

Xu et al. [11] (related work, §2.1) study *group location selection*
— covering objects with multiple facilities.  The PRIME-LS version:
pick a set ``S`` of ``k`` candidates maximising

``coverage(S) = |{O : ∃ c ∈ S, Pr_c(O) ≥ τ}|``.

Coverage is monotone submodular, so the classic greedy algorithm is a
``(1 − 1/e)``-approximation (Nemhauser et al.), and with CELF-style
lazy evaluation the marginal-gain recomputations collapse.  Influence
sets are extracted exactly with the IA/NIB machinery (one chunked
classification pass + band validation, as in PINOCCHIO), after which
greedy runs on bitsets.

For small ``k``/``m`` an exact branch-and-bound is also provided to
quantify the greedy gap in tests and benches.
"""

from __future__ import annotations

import heapq
from itertools import combinations
from typing import Sequence

import numpy as np

from repro.core.base import candidates_to_array
from repro.core.influence import batch_log_non_influence, influence_threshold_log
from repro.core.object_table import ObjectTable
from repro.core.pruning import classify_chunks
from repro.core.result import Instrumentation
from repro.model.candidate import Candidate
from repro.model.moving_object import MovingObject
from repro.prob.base import ProbabilityFunction


def influence_bitsets(
    objects: Sequence[MovingObject],
    candidates: Sequence[Candidate],
    pf: ProbabilityFunction,
    tau: float,
    counters: Instrumentation | None = None,
) -> list[np.ndarray]:
    """Per-candidate boolean masks over live objects: who influences whom.

    Exact, computed with the PINOCCHIO pruning machinery; dead objects
    (uninfluenceable at this τ) are excluded from the universe.
    """
    counters = counters if counters is not None else Instrumentation()
    table = ObjectTable(list(objects), pf, tau)
    counters.dead_objects = table.dead_objects
    cand_xy = candidates_to_array(list(candidates))
    m = cand_xy.shape[0]
    r = table.live_count
    counters.pairs_total = r * m
    log_threshold = influence_threshold_log(tau)
    masks = np.zeros((m, r), dtype=bool)
    row_offset = 0
    for chunk, ia, band in classify_chunks(table.entries, cand_xy):
        counters.pairs_pruned_ia += int(np.count_nonzero(ia))
        counters.pairs_pruned_nib += int(
            len(chunk) * m - np.count_nonzero(ia) - np.count_nonzero(band)
        )
        masks[:, row_offset : row_offset + len(chunk)] |= ia.T
        rows, cols = np.nonzero(band)
        boundaries = np.searchsorted(rows, np.arange(len(chunk) + 1))
        for i, entry in enumerate(chunk):
            maybe = cols[boundaries[i] : boundaries[i + 1]]
            if not maybe.size:
                continue
            logs = batch_log_non_influence(
                pf, entry.obj.positions, cand_xy[maybe]
            )
            influenced = maybe[logs <= log_threshold]
            masks[influenced, row_offset + i] = True
            counters.pairs_validated += maybe.size
            n = entry.obj.n_positions
            counters.positions_total += n * maybe.size
            counters.positions_evaluated += n * maybe.size
        row_offset += len(chunk)
    return [masks[j] for j in range(m)]


def greedy_portfolio(
    objects: Sequence[MovingObject],
    candidates: Sequence[Candidate],
    pf: ProbabilityFunction,
    tau: float,
    k: int,
) -> tuple[list[int], int]:
    """Greedy ``(1 − 1/e)``-approximate k-location selection.

    Returns ``(chosen_candidate_indexes, covered_objects)`` with
    candidates in pick order.  Uses CELF lazy evaluation: stale
    marginal gains are re-scored only when they reach the heap top
    (valid because coverage is submodular: gains only shrink).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    masks = influence_bitsets(objects, candidates, pf, tau)
    m = len(masks)
    covered = np.zeros(masks[0].shape, dtype=bool) if m else np.zeros(0, bool)
    chosen: list[int] = []
    # heap of (-gain, round_evaluated, candidate)
    heap = [
        (-int(np.count_nonzero(mask)), 0, j) for j, mask in enumerate(masks)
    ]
    heapq.heapify(heap)
    current_round = 0
    while heap and len(chosen) < min(k, m):
        neg_gain, evaluated_at, j = heapq.heappop(heap)
        if evaluated_at < current_round:
            fresh = int(np.count_nonzero(masks[j] & ~covered))
            heapq.heappush(heap, (-fresh, current_round, j))
            continue
        if -neg_gain == 0:
            break  # nothing left to gain
        chosen.append(j)
        covered |= masks[j]
        current_round += 1
    return chosen, int(np.count_nonzero(covered))


def exact_portfolio(
    objects: Sequence[MovingObject],
    candidates: Sequence[Candidate],
    pf: ProbabilityFunction,
    tau: float,
    k: int,
) -> tuple[list[int], int]:
    """Exact optimum by exhaustive subset search — exponential in ``k``.

    Intended for tests/benches that quantify the greedy gap on small
    instances (``C(m, k)`` subsets are enumerated).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    masks = influence_bitsets(objects, candidates, pf, tau)
    m = len(masks)
    best_set: list[int] = []
    best_cover = -1
    for subset in combinations(range(m), min(k, m)):
        covered = np.zeros(masks[0].shape, dtype=bool)
        for j in subset:
            covered |= masks[j]
        count = int(np.count_nonzero(covered))
        if count > best_cover:
            best_cover = count
            best_set = list(subset)
    return best_set, best_cover
