"""The ``minMaxRadius`` measure (Definition 5).

``minMaxRadius(τ, n) = PF⁻¹(1 − (1 − τ)^(1/n))`` — the radius such that

* if *all* ``n`` positions of an object lie within it of a candidate,
  the candidate certainly influences the object (Theorem 1), and
* if *all* positions lie outside it, the candidate certainly does not
  (Theorem 2).

When the required per-position probability ``1 − (1 − τ)^(1/n)``
exceeds ``PF(0)``, no distance achieves it: even an object whose every
position coincides with the candidate reaches only
``1 − (1 − PF(0))^n < τ``.  Such objects can never be influenced by
*any* candidate; :func:`min_max_radius` returns ``None`` for them and
the algorithms drop them up front (counted as ``dead_objects``).
"""

from __future__ import annotations

from repro.prob.base import ProbabilityFunction


def required_position_probability(tau: float, n: int) -> float:
    """The per-position probability ``1 − (1 − τ)^(1/n)`` behind Def. 5."""
    if not 0.0 < tau < 1.0:
        raise ValueError(f"tau must be in (0, 1), got {tau}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return 1.0 - (1.0 - tau) ** (1.0 / n)


def min_max_radius(pf: ProbabilityFunction, tau: float, n: int) -> float | None:
    """``minMaxRadius(τ, n)`` for probability function ``pf``.

    Returns ``None`` when the object is uninfluenceable (see module
    docstring).
    """
    threshold = required_position_probability(tau, n)
    if threshold > pf.max_probability:
        return None
    return pf.inverse(threshold)


class MinMaxRadiusCache:
    """Per-``n`` memo of ``minMaxRadius`` — the paper's HashMap ``HM``.

    Algorithm 1 computes the radius once per distinct position count
    ``n`` and reuses it for every object with that count.
    """

    def __init__(self, pf: ProbabilityFunction, tau: float):
        if not 0.0 < tau < 1.0:
            raise ValueError(f"tau must be in (0, 1), got {tau}")
        self.pf = pf
        self.tau = tau
        self._memo: dict[int, float | None] = {}

    def radius(self, n: int) -> float | None:
        """``minMaxRadius(τ, n)``, memoised."""
        if n not in self._memo:
            self._memo[n] = min_max_radius(self.pf, self.tau, n)
        return self._memo[n]

    def __len__(self) -> int:
        """How many distinct ``n`` values have been resolved."""
        return len(self._memo)
