"""NA — the exhaustive baseline (§6.1).

Computes the cumulative influence probability for *every*
object-candidate pair and picks the candidate with the largest
influence.  Correct by construction; the reference every other
algorithm is tested against.

The vector kernel concatenates all object positions into one array and
resolves a candidate against all objects with a single segmented
log-space reduction (``np.add.reduceat``), which keeps the baseline
honest: it is slow because it does all the work, not because it is
badly implemented.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.base import LocationSelector, candidates_to_array
from repro.core.influence import (
    influence_threshold_log,
    log1m_safe,
    validate_pair,
)
from repro.core.result import Instrumentation, LSResult
from repro.model.candidate import Candidate
from repro.model.moving_object import MovingObject
from repro.prob.base import ProbabilityFunction


class NaiveAlgorithm(LocationSelector):
    """Exhaustive PRIME-LS: test all object-candidate pairs."""

    name = "NA"

    def __init__(self, kernel: str = "vector"):
        if kernel not in ("vector", "scalar"):
            raise ValueError(f"unknown kernel {kernel!r}")
        self.kernel = kernel

    def _run(
        self,
        objects: list[MovingObject],
        candidates: list[Candidate],
        pf: ProbabilityFunction,
        tau: float,
    ) -> LSResult:
        counters = Instrumentation()
        counters.pairs_total = len(objects) * len(candidates)
        log_threshold = influence_threshold_log(tau)
        if self.kernel == "vector":
            influences = self._run_vector(objects, candidates, pf, log_threshold, counters)
        else:
            influences = self._run_scalar(objects, candidates, pf, log_threshold, counters)
        best_idx = max(influences, key=lambda idx: (influences[idx], -idx))
        return LSResult(
            algorithm=self.name,
            best_candidate=candidates[best_idx],
            best_influence=influences[best_idx],
            influences=influences,
            elapsed_seconds=0.0,
            instrumentation=counters,
        )

    def _run_vector(
        self,
        objects: list[MovingObject],
        candidates: list[Candidate],
        pf: ProbabilityFunction,
        log_threshold: float,
        counters: Instrumentation,
    ) -> dict[int, int]:
        all_xy = np.concatenate([o.positions for o in objects], axis=0)
        lengths = np.array([o.n_positions for o in objects])
        offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
        cand_xy = candidates_to_array(candidates)
        influences: dict[int, int] = {}
        n_total = all_xy.shape[0]
        for j in range(cand_xy.shape[0]):
            d = np.hypot(all_xy[:, 0] - cand_xy[j, 0], all_xy[:, 1] - cand_xy[j, 1])
            logs = log1m_safe(pf(d))
            per_object = np.add.reduceat(logs, offsets)
            influences[j] = int(np.count_nonzero(per_object <= log_threshold))
            counters.pairs_validated += len(objects)
            counters.positions_total += n_total
            counters.positions_evaluated += n_total
        return influences

    def _run_scalar(
        self,
        objects: list[MovingObject],
        candidates: list[Candidate],
        pf: ProbabilityFunction,
        log_threshold: float,
        counters: Instrumentation,
    ) -> dict[int, int]:
        influences: dict[int, int] = {}
        for j, cand in enumerate(candidates):
            count = 0
            for obj in objects:
                influenced = validate_pair(
                    pf,
                    obj.positions,
                    cand.x,
                    cand.y,
                    log_threshold,
                    counters=counters,
                    kernel="scalar",
                    early_stop=False,
                )
                if influenced:
                    count += 1
            influences[j] = count
        return influences


def exact_influence(
    objects: list[MovingObject],
    cand_x: float,
    cand_y: float,
    pf: ProbabilityFunction,
    tau: float,
) -> int:
    """Influence of a single location, exhaustively (test helper)."""
    log_threshold = influence_threshold_log(tau)
    count = 0
    for obj in objects:
        d = np.hypot(obj.positions[:, 0] - cand_x, obj.positions[:, 1] - cand_y)
        s = float(np.sum(log1m_safe(pf(d))))
        if s <= log_threshold:
            count += 1
    return count


def exact_probability(
    obj: MovingObject, cand_x: float, cand_y: float, pf: ProbabilityFunction
) -> float:
    """``Pr_c(O)`` for one pair (test helper)."""
    d = np.hypot(obj.positions[:, 0] - cand_x, obj.positions[:, 1] - cand_y)
    return -math.expm1(float(np.sum(log1m_safe(pf(d)))))
