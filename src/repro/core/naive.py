"""NA — the exhaustive baseline (§6.1).

Computes the cumulative influence probability for *every*
object-candidate pair and picks the candidate with the largest
influence.  Correct by construction; the reference every other
algorithm is tested against.

The vector kernel concatenates all object positions into one array and
resolves a candidate against all objects with a single segmented
log-space reduction (``np.add.reduceat``), which keeps the baseline
honest: it is slow because it does all the work, not because it is
badly implemented.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.base import LocationSelector, candidates_to_array
from repro.core.influence import (
    influence_threshold_log,
    log1m_safe,
    validate_pair,
)
from repro.core.result import Instrumentation, LSResult, full_table_result
from repro.model.candidate import Candidate
from repro.model.moving_object import MovingObject
from repro.prob.base import ProbabilityFunction


class NaiveAlgorithm(LocationSelector):
    """Exhaustive PRIME-LS: test all object-candidate pairs."""

    name = "NA"

    def __init__(self, kernel: str = "vector"):
        if kernel not in ("vector", "scalar"):
            raise ValueError(f"unknown kernel {kernel!r}")
        self.kernel = kernel

    def _run(
        self,
        objects: list[MovingObject],
        candidates: list[Candidate],
        pf: ProbabilityFunction,
        tau: float,
    ) -> LSResult:
        counters = Instrumentation()
        counters.pairs_total = len(objects) * len(candidates)
        cand_xy = candidates_to_array(candidates)
        if self.kernel == "vector":
            influence = self.compute_influence(objects, cand_xy, pf, tau, counters)
        else:
            log_threshold = influence_threshold_log(tau)
            influence = self._run_scalar(
                objects, candidates, pf, log_threshold, counters
            )
        return full_table_result(self.name, candidates, influence, counters)

    def compute_influence(
        self,
        objects: list[MovingObject],
        cand_xy: np.ndarray,
        pf: ProbabilityFunction,
        tau: float,
        counters: Instrumentation,
    ) -> np.ndarray:
        """Exhaustive influence counts for every column of ``cand_xy``.

        Candidate columns are independent, so the serving engine shards
        this across worker processes and concatenates the results
        (bit-identical to a full-width call).  NA has no pruning phase:
        all its time lands in ``validation_seconds``.
        """
        all_xy = np.concatenate([o.positions for o in objects], axis=0)
        lengths = np.array([o.n_positions for o in objects])
        offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
        log_threshold = influence_threshold_log(tau)
        m = cand_xy.shape[0]
        influence = np.zeros(m, dtype=int)
        n_total = all_xy.shape[0]
        with counters.phase("validation"):
            for j in range(m):
                d = np.hypot(
                    all_xy[:, 0] - cand_xy[j, 0], all_xy[:, 1] - cand_xy[j, 1]
                )
                logs = log1m_safe(pf(d))
                per_object = np.add.reduceat(logs, offsets)
                influence[j] = int(np.count_nonzero(per_object <= log_threshold))
                counters.pairs_validated += len(objects)
                counters.positions_total += n_total
                counters.positions_evaluated += n_total
        return influence

    def _run_scalar(
        self,
        objects: list[MovingObject],
        candidates: list[Candidate],
        pf: ProbabilityFunction,
        log_threshold: float,
        counters: Instrumentation,
    ) -> dict[int, int]:
        influences: dict[int, int] = {}
        with counters.phase("validation"):
            for j, cand in enumerate(candidates):
                count = 0
                for obj in objects:
                    influenced = validate_pair(
                        pf,
                        obj.positions,
                        cand.x,
                        cand.y,
                        log_threshold,
                        counters=counters,
                        kernel="scalar",
                        early_stop=False,
                    )
                    if influenced:
                        count += 1
                influences[j] = count
        return influences


def exact_influence(
    objects: list[MovingObject],
    cand_x: float,
    cand_y: float,
    pf: ProbabilityFunction,
    tau: float,
) -> int:
    """Influence of a single location, exhaustively (test helper)."""
    log_threshold = influence_threshold_log(tau)
    count = 0
    for obj in objects:
        d = np.hypot(obj.positions[:, 0] - cand_x, obj.positions[:, 1] - cand_y)
        s = float(np.sum(log1m_safe(pf(d))))
        if s <= log_threshold:
            count += 1
    return count


def exact_probability(
    obj: MovingObject, cand_x: float, cand_y: float, pf: ProbabilityFunction
) -> float:
    """``Pr_c(O)`` for one pair (test helper)."""
    d = np.hypot(obj.positions[:, 0] - cand_x, obj.positions[:, 1] - cand_y)
    return -math.expm1(float(np.sum(log1m_safe(pf(d)))))
