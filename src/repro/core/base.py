"""Shared scaffolding for the location-selection algorithms."""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Callable, Sequence

import numpy as np

from repro.core.object_table import ObjectTable
from repro.core.result import LSResult
from repro.index.rtree import RTree
from repro.model.candidate import Candidate
from repro.model.moving_object import MovingObject
from repro.prob.base import ProbabilityFunction


def candidates_to_array(candidates: Sequence[Candidate]) -> np.ndarray:
    """Stack candidate coordinates into an ``(m, 2)`` array.

    Rejects non-finite coordinates up front — NaNs would silently
    poison every distance comparison downstream.
    """
    if not candidates:
        raise ValueError("need at least one candidate location")
    xy = np.array([(c.x, c.y) for c in candidates], dtype=float)
    if not np.all(np.isfinite(xy)):
        bad = [c.candidate_id for c, ok in
               zip(candidates, np.isfinite(xy).all(axis=1)) if not ok]
        raise ValueError(f"candidates with non-finite coordinates: {bad}")
    return xy


class LocationSelector(ABC):
    """Base class: validates inputs, times the run, builds the result."""

    #: short name used in result records and bench tables
    name: str = "base"

    #: optional hook injected by serving layers (:mod:`repro.engine`):
    #: given ``(objects, pf, tau)``, returns a (possibly cached)
    #: :class:`ObjectTable` instead of building a fresh one per call
    table_factory: Callable[..., ObjectTable] | None = None

    #: optional hook returning a (possibly cached) candidate R-tree for
    #: ``(cand_xy, max_entries)``
    rtree_factory: Callable[..., RTree] | None = None

    def _object_table(self, objects, pf, tau) -> ObjectTable:
        """The ``A2D`` table for this run, via the injected cache if any."""
        if self.table_factory is not None:
            return self.table_factory(objects, pf, tau)
        return ObjectTable(objects, pf, tau)

    def _candidate_rtree(self, cand_xy: np.ndarray, max_entries: int) -> RTree:
        """The candidate R-tree, via the injected cache if any."""
        if self.rtree_factory is not None:
            return self.rtree_factory(cand_xy, max_entries)
        return RTree.bulk_load(cand_xy, max_entries=max_entries)

    def select(
        self,
        objects: Sequence[MovingObject],
        candidates: Sequence[Candidate],
        pf: ProbabilityFunction,
        tau: float,
    ) -> LSResult:
        """Run the algorithm and return an :class:`LSResult`.

        ``tau`` must be in ``(0, 1)``; degenerate thresholds make the
        problem trivial (``τ = 0`` influences everything, ``τ = 1``
        requires an exactly-certain position).
        """
        if not objects:
            raise ValueError("need at least one moving object")
        if not candidates:
            raise ValueError("need at least one candidate location")
        if not 0.0 < tau < 1.0:
            raise ValueError(f"tau must be in (0, 1), got {tau}")
        started = time.perf_counter()
        result = self._run(list(objects), list(candidates), pf, tau)
        result.elapsed_seconds = time.perf_counter() - started
        return result

    @abstractmethod
    def _run(
        self,
        objects: list[MovingObject],
        candidates: list[Candidate],
        pf: ProbabilityFunction,
        tau: float,
    ) -> LSResult:
        """Algorithm body; ``elapsed_seconds`` is filled in by ``select``."""
