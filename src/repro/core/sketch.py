"""Per-candidate influence sketches: sublinear approximate ``inf(c)``.

The exact algorithms answer ``inf(c) = |{O : Pr_c(O) >= tau}|`` by
touching every live object (and, inside the validation band, every
position).  At the scale ladder's 10^5-object rung that is seconds per
query — far too slow to serve as an overload escape hatch.  This module
trades a bounded amount of accuracy for a few orders of magnitude of
work, following the influence-oracle construction of Cohen et al.
("Distance-Based Influence in Networks"): a *distance sketch* built
once per ``(fleet, PF, tau)`` answers influence queries in time
sublinear in the object count with a provable (epsilon, delta) bound.

**Sketch.** A bottom-k/KMV-style sample of the live objects: each
object id is hashed through a seeded ``splitmix64`` and the ``k``
smallest hashes are kept — a uniform sample without replacement that is
deterministic under a fixed seed, independent of the geometry, and
mergeable across fleets (the bottom-k of a union is the bottom-k of the
per-fleet bottom-k unions).  For every sampled object the sketch
gathers its position block, MBR, and ``minMaxRadius`` out of the
table's columnar export (:meth:`ObjectTable.to_columnar`), so an
estimate runs the exact IA/NIB classification and the Strategy-2
``log_non_influence`` partial-sum validation — the same kernels as the
exact path — restricted to the ``k`` sampled objects.

**Estimator.** With ``h`` of the ``k`` sampled objects influenced by a
candidate, ``inf(c)`` is estimated as ``N * h / k`` (``N`` live
objects).  The estimator is unbiased, and exact whenever ``k >= N``
(the sample is the whole fleet).

**Bound.** Hoeffding's inequality holds for sampling without
replacement (Hoeffding 1963, section 6), so for a single candidate,
with probability at least ``1 - delta``::

    |estimate - inf(c)| <= N * sqrt(ln(2 / delta) / (2 k))

:meth:`InfluenceSketch.error_bound` generalises the bound to a query of
``m`` candidates by a union bound (``delta / m`` per candidate), which
is what the serving engine advertises on an approximate response.  The
bound is 0 when the sample is exhaustive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.influence import (
    _gather_segments,
    batch_validate_spans,
    influence_threshold_log,
)
from repro.core.object_table import ObjectTable
from repro.core.pruning import classify_span
from repro.core.result import Instrumentation

#: default sample size — at the 10^5 rung this is a 100x reduction in
#: objects touched while keeping the advertised bound ~6% of N
DEFAULT_SKETCH_K = 1024
#: default per-estimate failure probability (the bound holds with
#: probability >= 1 - delta); small enough that the hypothesis suite's
#: random fleets cannot realistically produce a violation
DEFAULT_SKETCH_DELTA = 1e-4
#: default hash seed — fixed so sketches are reproducible run-to-run
DEFAULT_SKETCH_SEED = 0x5EED

_U64 = np.uint64
_GOLDEN = 0x9E3779B97F4A7C15


def _splitmix64(values: np.ndarray, seed: int) -> np.ndarray:
    """Vectorised splitmix64 of ``values`` offset by a seeded stream.

    A bijection on uint64, so distinct object ids always hash
    distinctly — bottom-k selection never ties.
    """
    z = values.astype(_U64, copy=True)
    z += _U64((seed * _GOLDEN) & 0xFFFFFFFFFFFFFFFF)
    z = (z ^ (z >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> _U64(27))) * _U64(0x94D049BB133111EB)
    return z ^ (z >> _U64(31))


@dataclass(frozen=True)
class InfluenceEstimate:
    """One candidate's estimated influence with its advertised bound."""

    #: the estimate ``N * h / k`` (an exact integer count when
    #: :attr:`exact` is true)
    estimate: float
    #: absolute error bound: ``|estimate - inf(c)| <= bound`` with
    #: probability >= ``1 - delta`` (0.0 when :attr:`exact`)
    bound: float
    #: influenced objects among the sampled ``k``
    sample_hits: int
    #: effective sample size (``min(k, N)``)
    sample_size: int
    #: live objects in the sketched fleet
    population: int
    #: the sample is exhaustive — the estimate *is* ``inf(c)``
    exact: bool


class InfluenceSketch:
    """A bottom-k influence sketch of one ``(fleet, PF, tau)`` table.

    Build once with :meth:`build`, then ask :meth:`estimate` (one
    candidate) or :meth:`estimate_many` (a query's candidate array) —
    each estimate touches only the ``k`` sampled objects, so the cost
    per candidate is O(k) instead of O(total positions).
    """

    def __init__(
        self,
        *,
        pf,
        tau: float,
        population: int,
        k: int,
        seed: int,
        delta: float,
        sampled_ids: np.ndarray,
        positions: np.ndarray,
        offsets: np.ndarray,
        mbrs: np.ndarray,
        radii: np.ndarray,
    ):
        self.pf = pf
        self.tau = float(tau)
        self.log_threshold = influence_threshold_log(tau)
        self.population = int(population)
        self.k = int(k)
        self.seed = int(seed)
        self.delta = float(delta)
        self.sampled_ids = sampled_ids
        self.positions = positions
        self.offsets = offsets
        self.mbrs = mbrs
        self.radii = radii
        #: scale from sample hits to the population estimate
        self.scale = (
            self.population / self.k if self.k else 0.0
        )

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        table: ObjectTable,
        k: int = DEFAULT_SKETCH_K,
        seed: int = DEFAULT_SKETCH_SEED,
        delta: float = DEFAULT_SKETCH_DELTA,
    ) -> "InfluenceSketch":
        """Sketch ``table``'s live objects (bottom-k of hashed ids).

        Reads only the table's columnar export, so building works
        identically on tables attached from shared memory (no entry
        materialisation).  Deterministic: same table contents, same
        ``seed`` — same sketch.
        """
        if k < 1:
            raise ValueError(f"sketch k must be >= 1, got {k}")
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {delta}")
        cols = table.to_columnar()
        n = cols.count
        k_eff = min(int(k), n)
        if k_eff == 0:
            sel = np.empty(0, dtype=np.int64)
        else:
            hashes = _splitmix64(
                np.asarray(cols.object_ids, dtype=np.int64), seed
            )
            # stable sort so duplicate ids (hash ties) keep entry order
            sel = np.sort(np.argsort(hashes, kind="stable")[:k_eff])
        starts = cols.offsets[sel]
        lengths = cols.offsets[sel + 1] - starts
        positions = _gather_segments(cols.positions, starts, lengths)
        offsets = np.zeros(k_eff + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        return cls(
            pf=table.pf,
            tau=table.tau,
            population=n,
            k=k_eff,
            seed=seed,
            delta=delta,
            sampled_ids=np.asarray(cols.object_ids)[sel].copy(),
            positions=positions,
            offsets=offsets,
            mbrs=np.ascontiguousarray(cols.mbrs[sel]),
            radii=np.ascontiguousarray(cols.radii[sel]),
        )

    @property
    def exact(self) -> bool:
        """Whether the sample covers every live object."""
        return self.k >= self.population

    @property
    def nbytes(self) -> int:
        """Bytes held by the sketch arrays (prices LRU cache entries)."""
        return int(
            self.positions.nbytes + self.offsets.nbytes
            + self.mbrs.nbytes + self.radii.nbytes
            + self.sampled_ids.nbytes
        )

    def error_bound(self, m: int = 1) -> float:
        """Absolute error bound advertised for an ``m``-candidate query.

        Holds simultaneously for every one of the ``m`` estimates with
        probability at least ``1 - delta`` (Hoeffding for sampling
        without replacement, union-bounded across candidates).  0.0
        when the sample is exhaustive — the estimates are exact counts.
        """
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        if self.exact or self.k == 0:
            return 0.0
        eps = math.sqrt(math.log(2.0 * m / self.delta) / (2.0 * self.k))
        return min(float(self.population), self.population * eps)

    # ------------------------------------------------------------------
    def estimate_many(
        self,
        cand_xy: np.ndarray,
        counters: Instrumentation | None = None,
    ) -> np.ndarray:
        """Estimated influence for every row of ``cand_xy``.

        Runs the exact IA/NIB classification over the ``(k, m)`` sample
        x candidate grid, then the Strategy-2 partial-sum validation
        for the band pairs only — the same kernels as the exact path,
        so an exhaustive sample reproduces exact influence bit-for-bit.
        Returns a float array of ``N * h / k`` estimates.
        """
        m = int(cand_xy.shape[0])
        if self.k == 0 or m == 0:
            return np.zeros(m, dtype=float)
        ia, band = classify_span(self.mbrs, self.radii, cand_xy)
        counts = ia.sum(axis=0).astype(np.int64)
        if counters is not None:
            counters.pairs_pruned_ia += int(counts.sum())
            band_total = int(band.sum())
            counters.pairs_pruned_nib += self.k * m - band_total - int(
                counts.sum()
            )
        for j in range(m):
            idx = np.nonzero(band[:, j])[0]
            if idx.size == 0:
                continue
            influenced = batch_validate_spans(
                self.pf, self.positions, self.offsets, idx,
                float(cand_xy[j, 0]), float(cand_xy[j, 1]),
                self.log_threshold, counters,
            )
            counts[j] += int(np.count_nonzero(influenced))
        return counts * self.scale

    def estimate(self, x: float, y: float) -> InfluenceEstimate:
        """Estimate one candidate location's influence."""
        cand_xy = np.array([[float(x), float(y)]])
        estimate = float(self.estimate_many(cand_xy)[0])
        hits = (
            int(round(estimate / self.scale)) if self.scale else 0
        )
        return InfluenceEstimate(
            estimate=estimate,
            bound=self.error_bound(1),
            sample_hits=hits,
            sample_size=self.k,
            population=self.population,
            exact=self.exact,
        )
