"""Applying the IA and NIB pruning rules to a candidate set.

For one object entry, candidates split into three groups:

* ``certain`` — inside the IA region: influence counted immediately,
* ``maybe``   — inside the NIB region but not the IA region: must be
  validated exactly,
* everything else — outside the NIB region: certainly not influencing.

The R-tree is queried once with the NIB bounding box (the MBR expanded
by ``minMaxRadius``); candidates outside that box already fail the NIB
test, and the survivors are classified exactly with the vectorised
``maxDist``/``minDist`` bounds.  This is equivalent to the paper's two
range queries (Algorithm 2 lines 6/9) but touches the index once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.object_table import ObjectEntry, ObjectTable
from repro.index.rtree import RTree


@dataclass(frozen=True, slots=True)
class PruningOutcome:
    """Candidate indexes resolved by the rules for one object."""

    certain: np.ndarray   # influenced for sure (IA)
    maybe: np.ndarray     # needs validation (inside NIB, outside IA)
    pruned_nib: int       # count resolved as non-influencing


def classify_chunk(
    entries: list[ObjectEntry],
    cand_xy: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised IA/NIB classification for a chunk of objects.

    Returns two boolean matrices of shape ``(len(entries), m)``:
    ``ia`` (candidate certainly influences the object) and ``band``
    (candidate needs exact validation).  Everything else is NIB-pruned.

    This is the scan counterpart of the per-object R-tree path: the
    same split, computed as a handful of broadcast operations instead
    of one index query per object.  Callers chunk the object list to
    bound the ``(r, m)`` intermediates.
    """
    min_x = np.array([e.mbr.min_x for e in entries])[:, None]
    min_y = np.array([e.mbr.min_y for e in entries])[:, None]
    max_x = np.array([e.mbr.max_x for e in entries])[:, None]
    max_y = np.array([e.mbr.max_y for e in entries])[:, None]
    radius = np.array([e.radius for e in entries])[:, None]
    return _classify_columns(min_x, min_y, max_x, max_y, radius, cand_xy)


def classify_span(
    mbrs: np.ndarray,
    radii: np.ndarray,
    cand_xy: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Columnar IA/NIB classification straight off the cached arrays.

    ``mbrs`` is ``(r, 4)`` rows ``(min_x, min_y, max_x, max_y)`` and
    ``radii`` is ``(r,)`` — the arrays
    :meth:`repro.core.object_table.ObjectTable.mbr_radius_arrays`
    caches once per table — so nothing is rebuilt from Python objects
    per query.  Bit-identical to :func:`classify_chunk` on the same
    entries: both run the exact same broadcast expressions over the
    exact same float64 values.
    """
    return _classify_columns(
        np.ascontiguousarray(mbrs[:, 0])[:, None],
        np.ascontiguousarray(mbrs[:, 1])[:, None],
        np.ascontiguousarray(mbrs[:, 2])[:, None],
        np.ascontiguousarray(mbrs[:, 3])[:, None],
        radii[:, None],
        cand_xy,
    )


#: float64 elements per ``(r, tile)`` broadcast temporary before the
#: candidate axis is tiled — several temporaries are live at once in
#: :func:`_classify_tile`, so 256 KB per temporary keeps the working
#: set L2-resident; measured fastest from 10³×10² up to 10⁶×10³ (the
#: 1 MB tile loses ~15% at the 10⁵×10³ rung)
CLASSIFY_TILE_ELEMS = 32_768


def _classify_columns(min_x, min_y, max_x, max_y, radius, cand_xy):
    """Tile :func:`_classify_tile` over the candidate axis.

    The object axis is already chunked by the callers; without a
    candidate-axis bound a ``1024 × m`` chunk at ``m = 10³`` burns
    ~8 MB per float64 temporary and the broadcast falls out of cache.
    The tile width adapts to the chunk height so ``rows × tile`` stays
    under :data:`CLASSIFY_TILE_ELEMS`.  Tiling is elementwise-exact:
    the assembled matrices are bit-identical to the untiled broadcast.
    """
    rows = radius.shape[0]
    m = cand_xy.shape[0]
    tile = max(1, CLASSIFY_TILE_ELEMS // max(1, rows))
    if tile >= m:
        return _classify_tile(min_x, min_y, max_x, max_y, radius, cand_xy)
    ia = np.empty((rows, m), dtype=bool)
    band = np.empty((rows, m), dtype=bool)
    for lo in range(0, m, tile):
        hi = min(lo + tile, m)
        ia[:, lo:hi], band[:, lo:hi] = _classify_tile(
            min_x, min_y, max_x, max_y, radius, cand_xy[lo:hi]
        )
    return ia, band


def _classify_tile(min_x, min_y, max_x, max_y, radius, cand_xy):
    x = cand_xy[:, 0][None, :]
    y = cand_xy[:, 1][None, :]
    dx = np.maximum(np.maximum(min_x - x, 0.0), x - max_x)
    dy = np.maximum(np.maximum(min_y - y, 0.0), y - max_y)
    min_d2 = dx * dx + dy * dy
    dx = np.maximum(np.abs(x - min_x), np.abs(x - max_x))
    dy = np.maximum(np.abs(y - min_y), np.abs(y - max_y))
    max_d2 = dx * dx + dy * dy
    r2 = radius * radius
    ia = max_d2 <= r2
    band = ~ia & (min_d2 <= r2)
    return ia, band


#: objects per classification chunk — bounds peak memory of the
#: ``(chunk, m)`` broadcast intermediates to a few MB
CLASSIFY_CHUNK = 1024


def _check_chunk_size(chunk_size: int) -> None:
    # range(0, n, chunk_size) with a negative step silently yields no
    # chunks (an all-zero influence table downstream) and a zero step
    # raises a bare ValueError from range — fail loudly instead.
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")


def classify_chunks(
    entries: list[ObjectEntry],
    cand_xy: np.ndarray,
    chunk_size: int = CLASSIFY_CHUNK,
):
    """Yield ``(chunk_entries, ia, band)`` over object chunks.

    ``ia``/``band`` are the boolean matrices of :func:`classify_chunk`
    restricted to the chunk's rows.  This is the legacy entry-list
    path, kept for ablations and the columnar-identity tests;
    :func:`classify_table_chunks` is the hot path.
    """
    _check_chunk_size(chunk_size)

    def gen():
        for start in range(0, len(entries), chunk_size):
            chunk = entries[start : start + chunk_size]
            ia, band = classify_chunk(chunk, cand_xy)
            yield chunk, ia, band

    return gen()


def classify_table_chunks(
    table: ObjectTable,
    cand_xy: np.ndarray,
    chunk_size: int = CLASSIFY_CHUNK,
):
    """Yield ``(start, stop, ia, band)`` over a table's columnar arrays.

    The columnar counterpart of :func:`classify_chunks`: reads the
    table-cached MBR/radius arrays directly (no per-query rebuild from
    ``ObjectEntry`` lists, and no entry materialisation on tables
    attached from shared memory).  Chunk ``[start, stop)`` indexes
    entry order; the boolean matrices are bit-identical to the legacy
    path's.
    """
    _check_chunk_size(chunk_size)
    mbrs, radii = table.mbr_radius_arrays()
    count = mbrs.shape[0]

    def gen():
        for start in range(0, count, chunk_size):
            stop = min(start + chunk_size, count)
            ia, band = classify_span(
                mbrs[start:stop], radii[start:stop], cand_xy
            )
            yield start, stop, ia, band

    return gen()


def classify_candidates(
    entry: ObjectEntry,
    cand_xy: np.ndarray,
    rtree: RTree | None,
) -> PruningOutcome:
    """Split the candidate set for one object entry.

    ``cand_xy`` is the full ``(m, 2)`` candidate coordinate array whose
    row index is the candidate id.  When ``rtree`` is ``None`` the NIB
    box filter falls back to a vectorised scan (used by ablations).
    """
    m = cand_xy.shape[0]
    bbox = entry.nib_bbox
    if rtree is not None:
        ids = np.asarray(rtree.query_rect(bbox), dtype=int)
    else:
        inside = (
            (cand_xy[:, 0] >= bbox.min_x)
            & (cand_xy[:, 0] <= bbox.max_x)
            & (cand_xy[:, 1] >= bbox.min_y)
            & (cand_xy[:, 1] <= bbox.max_y)
        )
        ids = np.nonzero(inside)[0]
    if ids.size == 0:
        return PruningOutcome(
            certain=np.empty(0, dtype=int),
            maybe=np.empty(0, dtype=int),
            pruned_nib=m,
        )
    sub = cand_xy[ids]
    radius = entry.radius
    max_d = entry.mbr.max_dist_many(sub)
    min_d = entry.mbr.min_dist_many(sub)
    ia_mask = max_d <= radius
    out_mask = min_d > radius
    maybe_mask = ~(ia_mask | out_mask)
    pruned_nib = (m - ids.size) + int(out_mask.sum())
    return PruningOutcome(
        certain=ids[ia_mask],
        maybe=ids[maybe_mask],
        pruned_nib=pruned_nib,
    )
