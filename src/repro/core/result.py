"""Results and instrumentation shared by every algorithm."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field, fields

from repro.model.candidate import Candidate


@dataclass
class Instrumentation:
    """Work counters, independent of Python/NumPy execution speed.

    These make the pruning claims of the paper checkable without
    trusting wall-clock numbers: ``pairs_pruned_ia`` and
    ``pairs_pruned_nib`` quantify Fig 10; ``positions_evaluated``
    versus ``positions_total`` quantifies Strategy 2 (the "67 percent
    unnecessary position validation" claim).
    """

    #: object-candidate pairs considered in total (live objects × candidates)
    pairs_total: int = 0
    #: pairs resolved by the influence-arcs rule (certainly influenced)
    pairs_pruned_ia: int = 0
    #: pairs resolved by the non-influence boundary (certainly not)
    pairs_pruned_nib: int = 0
    #: pairs that entered exact validation
    pairs_validated: int = 0
    #: objects discarded up front because minMaxRadius is undefined
    dead_objects: int = 0
    #: positions a full validation of all validated pairs would touch
    positions_total: int = 0
    #: positions actually evaluated (Strategy 2 stops early)
    positions_evaluated: int = 0
    #: validations ended early by Lemma 4
    early_stops: int = 0
    #: validations ended early by the fail-fast bound (extension)
    fail_fast_stops: int = 0
    #: candidates whose validation ran to completion (PIN-VO)
    candidates_fully_validated: int = 0
    #: candidates never popped, or abandoned mid-validation (Strategy 1)
    candidates_skipped_strategy1: int = 0
    #: heap pops performed by PIN-VO
    heap_pops: int = 0
    #: wall-clock seconds spent in the pruning phase (IA/NIB
    #: classification, including index construction/queries); when a
    #: query is sharded across worker processes this is the *sum* of
    #: per-shard phase times, i.e. aggregate work, not wall time
    pruning_seconds: float = 0.0
    #: wall-clock seconds spent in exact validation (same sharding caveat)
    validation_seconds: float = 0.0
    #: worker shard dispatches that died or raised while answering
    #: (only the serving engine's supervised path ever sets these)
    worker_failures: int = 0
    #: shard re-dispatches performed after a worker failure
    retries: int = 0
    #: 1 when the query fell back to in-parent serial execution after
    #: exhausting its retry budget (kept as an int so merge() stays
    #: uniformly additive; any nonzero value means "degraded")
    degraded: int = 0
    #: span tasks this query handed to the persistent worker pool,
    #: including re-dispatches after failures (0 on the fork path)
    spans_dispatched: int = 0
    #: pool workers killed and replaced while this query (or the batch
    #: round serving it) ran (0 on the fork path)
    pool_respawns: int = 0
    #: engine cache entries evicted while this query was served (the
    #: serving engine's bounded LRU caches; 0 outside the engine)
    cache_evictions: int = 0
    #: position updates absorbed by a safe region with zero candidate
    #: work (incremental/streaming maintenance only; 0 for one-shot)
    safe_region_hits: int = 0

    def merge(self, other: "Instrumentation") -> None:
        """Accumulate another shard's (or phase's) counters into this one.

        Every field is additive — integer work counters and the
        per-phase second accumulators alike — so merging worker-process
        shards reproduces the serial counters exactly.
        """
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    @contextmanager
    def phase(self, name: str):
        """Time a ``with`` block into ``pruning_seconds``/``validation_seconds``."""
        attr = f"{name}_seconds"
        if not hasattr(self, attr):
            raise ValueError(f"unknown phase {name!r}")
        started = time.perf_counter()
        try:
            yield
        finally:
            setattr(self, attr, getattr(self, attr) + time.perf_counter() - started)

    def pruned_fraction(self) -> float:
        """Fraction of object-candidate pairs resolved without validation."""
        if self.pairs_total == 0:
            return 0.0
        return (self.pairs_pruned_ia + self.pairs_pruned_nib) / self.pairs_total

    def position_savings(self) -> float:
        """Fraction of validation positions skipped by early stopping."""
        if self.positions_total == 0:
            return 0.0
        return 1.0 - self.positions_evaluated / self.positions_total


def full_table_result(
    algorithm: str,
    candidates,
    influence,
    counters: "Instrumentation",
) -> "LSResult":
    """Build an :class:`LSResult` from a full influence table.

    ``influence`` is indexable by candidate position (an array or a
    dict).  The winner is the highest influence, ties broken by the
    lowest candidate index — every full-table path (NA, PIN, and the
    engine's sharded merges) goes through here so the tie-break is a
    single piece of code.
    """
    influences = {j: int(influence[j]) for j in range(len(influence))}
    best_idx = max(influences, key=lambda idx: (influences[idx], -idx))
    return LSResult(
        algorithm=algorithm,
        best_candidate=candidates[best_idx],
        best_influence=influences[best_idx],
        influences=influences,
        elapsed_seconds=0.0,
        instrumentation=counters,
    )


@dataclass
class LSResult:
    """The outcome of one location-selection run.

    ``influences`` maps candidate index (position in the input list) to
    the exact influence value, for algorithms that compute the full
    table (NA, PIN).  PIN-VO terminates as soon as the winner is
    certified, so it reports exact influence only for candidates it
    fully validated (others are absent).
    """

    algorithm: str
    best_candidate: Candidate
    best_influence: int
    influences: dict[int, int]
    elapsed_seconds: float
    instrumentation: Instrumentation = field(default_factory=Instrumentation)
    #: "exact" for every algorithm result; "approx" when the serving
    #: engine answered from an influence sketch (the influences are
    #: then estimates, not exact counts)
    quality: str = "exact"
    #: absolute error bound advertised with an approximate answer
    #: (``|estimate - inf(c)| <= error_bound`` for every candidate,
    #: with the sketch's confidence); ``None`` on exact results
    error_bound: float | None = None

    def ranking(self) -> list[tuple[int, int]]:
        """Candidate indexes sorted by influence (descending), ties by index."""
        return sorted(self.influences.items(), key=lambda kv: (-kv[1], kv[0]))

    def top_k(self, k: int) -> list[int]:
        """Indexes of the ``k`` most influential candidates."""
        return [idx for idx, _ in self.ranking()[:k]]

    def to_dict(self) -> dict:
        """A JSON-serialisable summary of the run."""
        from dataclasses import asdict

        return {
            "algorithm": self.algorithm,
            "best_candidate": {
                "candidate_id": self.best_candidate.candidate_id,
                "x": self.best_candidate.x,
                "y": self.best_candidate.y,
                "label": self.best_candidate.label,
            },
            "best_influence": self.best_influence,
            "influences": {str(k): v for k, v in self.influences.items()},
            "elapsed_seconds": self.elapsed_seconds,
            "quality": self.quality,
            "error_bound": self.error_bound,
            "instrumentation": asdict(self.instrumentation),
        }

    def save_json(self, path) -> None:
        """Write :meth:`to_dict` to ``path`` as indented JSON."""
        import json
        from pathlib import Path

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
