"""The paper's contribution: PRIME-LS and the PINOCCHIO algorithms.

Contents map directly onto the paper:

* :mod:`repro.core.minmax_radius` — Definition 5 and its per-``n``
  memo (the HashMap ``HM`` of Algorithm 1),
* :mod:`repro.core.influence` — cumulative influence probability
  (Definition 1), partial non-influence (Definition 4) and the
  validation kernels (including Strategy 2 early stopping, Lemma 4),
* :mod:`repro.core.object_table` — the moving-object 2-D array
  ``A2D`` (Algorithm 1),
* :mod:`repro.core.pruning` — the IA and NIB pruning rules
  (Lemmas 2-3) applied through the candidate R-tree,
* :mod:`repro.core.naive` — the exhaustive baseline NA,
* :mod:`repro.core.pinocchio` — Algorithm 2 (PINOCCHIO),
* :mod:`repro.core.pinocchio_vo` — Algorithm 3 (PINOCCHIO-VO) and the
  PIN-VO* variant without the pruning phase,
* :mod:`repro.core.incremental` — the incremental-maintenance
  extension sketched as future work in §7,
* :mod:`repro.core.safe_region` — per-object safe regions over the
  IA/NIB geometry: the deformation budget within which a position
  update cannot flip any candidate's verdict (shared by the
  incremental, streaming, and subscription engines),
* :mod:`repro.core.sketch` — bottom-k influence sketches: sublinear
  approximate ``inf(c)`` with a provable error bound (the serving
  engine's approximate tier).
"""

from repro.core.minmax_radius import MinMaxRadiusCache, min_max_radius
from repro.core.influence import (
    cumulative_probability,
    log_non_influence,
    validate_pair,
)
from repro.core.object_table import ObjectEntry, ObjectTable
from repro.core.safe_region import (
    SIDE_BAND,
    SIDE_IA,
    SIDE_OUT,
    SafeRegion,
    margins_span,
    pair_side,
)
from repro.core.result import Instrumentation, LSResult
from repro.core.naive import NaiveAlgorithm
from repro.core.pinocchio import Pinocchio
from repro.core.pinocchio_vo import PinocchioVO, PinocchioVOStar
from repro.core.incremental import IncrementalPrimeLS
from repro.core.topk import TopKPrimeLS, top_k_locations
from repro.core.streaming import SlidingWindowPrimeLS
from repro.core.grid_ls import GridPartitionLS
from repro.core.competitive import CompetitivePrimeLS
from repro.core.weighted import WeightedPrimeLS
from repro.core.portfolio import (
    exact_portfolio,
    greedy_portfolio,
    influence_bitsets,
)
from repro.core.uncertain import UncertainPrimeLS, UncertainResult
from repro.core.sketch import (
    DEFAULT_SKETCH_DELTA,
    DEFAULT_SKETCH_K,
    DEFAULT_SKETCH_SEED,
    InfluenceEstimate,
    InfluenceSketch,
)

__all__ = [
    "WeightedPrimeLS",
    "greedy_portfolio",
    "exact_portfolio",
    "influence_bitsets",
    "UncertainPrimeLS",
    "UncertainResult",
    "GridPartitionLS",
    "CompetitivePrimeLS",
    "TopKPrimeLS",
    "top_k_locations",
    "SlidingWindowPrimeLS",
    "MinMaxRadiusCache",
    "min_max_radius",
    "cumulative_probability",
    "log_non_influence",
    "validate_pair",
    "ObjectEntry",
    "ObjectTable",
    "SafeRegion",
    "margins_span",
    "pair_side",
    "SIDE_OUT",
    "SIDE_IA",
    "SIDE_BAND",
    "Instrumentation",
    "LSResult",
    "NaiveAlgorithm",
    "Pinocchio",
    "PinocchioVO",
    "PinocchioVOStar",
    "IncrementalPrimeLS",
    "InfluenceSketch",
    "InfluenceEstimate",
    "DEFAULT_SKETCH_K",
    "DEFAULT_SKETCH_DELTA",
    "DEFAULT_SKETCH_SEED",
]
