"""PRIME-LS over uncertain positions (possible-worlds semantics).

The related work the paper contrasts against ([5] Cheema et al.,
[13] Zhan et al., [15] Zheng et al.) studies location selection over
*uncertain* objects under possible-worlds semantics.  This module
brings that setting to PRIME-LS: each recorded position carries
Gaussian measurement noise, a *possible world* is one realisation of
every position, and an object counts for a candidate in a world when
its realised cumulative probability reaches ``τ``.  The quantity of
interest is

``P_influenced(c, O) = Pr_world[ Pr_c(O | world) ≥ τ ]``

estimated by Monte Carlo over shared worlds (common random numbers
across candidates, which both reduces comparison variance and keeps
results deterministic given a seed).  A candidate's *expected
influence* is the sum of these probabilities over objects.

With ``sigma_km = 0`` every world coincides with the recorded data and
the solver reduces exactly to PRIME-LS (asserted in tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.base import candidates_to_array
from repro.core.influence import influence_threshold_log, log1m_safe
from repro.core.result import Instrumentation
from repro.model.candidate import Candidate
from repro.model.moving_object import MovingObject
from repro.prob.base import ProbabilityFunction


@dataclass
class UncertainResult:
    """Monte-Carlo estimates of influence under positional uncertainty."""

    expected_influence: dict[int, float]
    influence_probability: list[np.ndarray]  # per candidate: (r,) array
    worlds: int
    best_index: int
    instrumentation: Instrumentation = field(default_factory=Instrumentation)

    def confidence_halfwidth(self, candidate_index: int, z: float = 1.96) -> float:
        """Normal-approximation CI half-width of the expected influence.

        Sums the per-object Bernoulli variances from the estimated
        probabilities; for ``worlds`` shared samples the variance of
        the total is the variance of the per-world influence count —
        approximated here by independent-object Bernoullis, which
        upper-bounds nothing in general but matches closely when
        objects' noise is independent (as generated).
        """
        p = self.influence_probability[candidate_index]
        var = float(np.sum(p * (1.0 - p))) / self.worlds
        return z * math.sqrt(var)


class UncertainPrimeLS:
    """Monte-Carlo PRIME-LS over Gaussian positional uncertainty."""

    def __init__(self, sigma_km: float, worlds: int = 64, seed: int = 0):
        if sigma_km < 0:
            raise ValueError(f"sigma_km must be non-negative, got {sigma_km}")
        if worlds < 1:
            raise ValueError(f"worlds must be >= 1, got {worlds}")
        self.sigma_km = sigma_km
        self.worlds = worlds
        self.seed = seed

    def select(
        self,
        objects: Sequence[MovingObject],
        candidates: Sequence[Candidate],
        pf: ProbabilityFunction,
        tau: float,
    ) -> UncertainResult:
        """Estimate every candidate's expected influence; pick the best."""
        if not objects or not candidates:
            raise ValueError("need at least one object and one candidate")
        if not 0.0 < tau < 1.0:
            raise ValueError(f"tau must be in (0, 1), got {tau}")
        counters = Instrumentation()
        cand_xy = candidates_to_array(list(candidates))
        m = cand_xy.shape[0]
        r = len(objects)
        log_threshold = influence_threshold_log(tau)
        rng = np.random.default_rng(self.seed)

        # Pre-draw the shared worlds: per object, (worlds, n, 2) noise.
        hits = np.zeros((m, r), dtype=np.int32)
        for i, obj in enumerate(objects):
            base = obj.positions
            if self.sigma_km > 0:
                noise = rng.normal(
                    0.0, self.sigma_km, size=(self.worlds, *base.shape)
                )
                worlds = base[None, :, :] + noise
            else:
                worlds = np.broadcast_to(base, (self.worlds, *base.shape))
            # For each candidate: log non-influence per world.
            flat = worlds.reshape(-1, 2)
            for j in range(m):
                d = np.hypot(flat[:, 0] - cand_xy[j, 0], flat[:, 1] - cand_xy[j, 1])
                logs = log1m_safe(pf(d)).reshape(self.worlds, -1).sum(axis=1)
                hits[j, i] = int(np.count_nonzero(logs <= log_threshold))
                counters.positions_evaluated += flat.shape[0]
            counters.pairs_validated += m
        probabilities = hits.astype(float) / self.worlds
        expected = {j: float(probabilities[j].sum()) for j in range(m)}
        best_index = max(expected, key=lambda j: (expected[j], -j))
        return UncertainResult(
            expected_influence=expected,
            influence_probability=[probabilities[j] for j in range(m)],
            worlds=self.worlds,
            best_index=best_index,
            instrumentation=counters,
        )
