"""PINOCCHIO — Algorithm 2 of the paper.

Per object: prune candidates with the IA/NIB rules through the
candidate R-tree, then validate the surviving band exactly.  Produces
the full influence table (every candidate's exact influence), like NA
but with roughly two thirds of the object-candidate pairs never
touched (Fig 10).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.base import LocationSelector, candidates_to_array
from repro.core.influence import (
    batch_log_non_influence,
    influence_threshold_log,
    validate_pair,
)
from repro.core.object_table import ObjectTable
from repro.core.pruning import classify_candidates, classify_table_chunks
from repro.core.result import Instrumentation, LSResult, full_table_result
from repro.model.candidate import Candidate
from repro.model.moving_object import MovingObject
from repro.prob.base import ProbabilityFunction


class Pinocchio(LocationSelector):
    """Algorithm 2: IA/NIB pruning + exhaustive validation of the band."""

    name = "PIN"

    def __init__(
        self,
        kernel: str = "vector",
        rtree_max_entries: int = 8,
        use_rtree: bool = False,
    ):
        """``use_rtree=True`` reproduces the paper's candidate R-tree
        range queries; the default classifies candidates with chunked
        broadcast scans, which is the faster analogue in NumPy (the
        split produced is identical — see the ablation bench)."""
        if kernel not in ("vector", "scalar"):
            raise ValueError(f"unknown kernel {kernel!r}")
        self.kernel = kernel
        self.rtree_max_entries = rtree_max_entries
        self.use_rtree = use_rtree

    def _run(
        self,
        objects: list[MovingObject],
        candidates: list[Candidate],
        pf: ProbabilityFunction,
        tau: float,
    ) -> LSResult:
        counters = Instrumentation()
        table = self._object_table(objects, pf, tau)
        counters.dead_objects = table.dead_objects
        cand_xy = candidates_to_array(candidates)
        counters.pairs_total = table.live_count * cand_xy.shape[0]
        influence = self.compute_influence(table, cand_xy, pf, tau, counters)
        return full_table_result(self.name, candidates, influence, counters)

    def compute_influence(
        self,
        table: ObjectTable,
        cand_xy: np.ndarray,
        pf: ProbabilityFunction,
        tau: float,
        counters: Instrumentation,
    ) -> np.ndarray:
        """Exact influence counts for every column of ``cand_xy``.

        Each candidate column is resolved independently of the others,
        so callers (the serving engine) may shard the candidate axis
        across worker processes and concatenate the returned arrays —
        the merged result is bit-identical to a single full-width call.
        ``counters`` receives this shard's work counts and per-phase
        times; ``pairs_total``/``dead_objects`` are the caller's job.
        """
        m = cand_xy.shape[0]
        log_threshold = influence_threshold_log(tau)
        influence = np.zeros(m, dtype=int)

        # Phase attribution, identical on both paths: validation
        # kernels are timed directly, and everything else in this call
        # — classification and its band bookkeeping — is charged to
        # pruning as (wall time − validation time).  By construction
        # the two phase columns always sum to the call's wall time.
        started = time.perf_counter()
        validation_before = counters.validation_seconds

        if self.use_rtree:
            rtree = self._candidate_rtree(cand_xy, self.rtree_max_entries)
            for entry in table:
                outcome = classify_candidates(entry, cand_xy, rtree)
                counters.pairs_pruned_ia += outcome.certain.size
                counters.pairs_pruned_nib += outcome.pruned_nib
                influence[outcome.certain] += 1
                if outcome.maybe.size:
                    with counters.phase("validation"):
                        self._validate_band(
                            entry.obj.positions, outcome.maybe, cand_xy,
                            pf, log_threshold, influence, counters,
                        )
        else:
            positions, offsets = table.positions_offsets()
            for start, stop, ia, band in classify_table_chunks(
                table, cand_xy
            ):
                ia_count = int(np.count_nonzero(ia))
                band_count = int(np.count_nonzero(band))
                counters.pairs_pruned_ia += ia_count
                counters.pairs_pruned_nib += (
                    (stop - start) * m - ia_count - band_count
                )
                influence += ia.sum(axis=0)
                rows, cols = np.nonzero(band)
                boundaries = np.searchsorted(
                    rows, np.arange(stop - start + 1)
                )
                with counters.phase("validation"):
                    for i in range(stop - start):
                        maybe = cols[boundaries[i] : boundaries[i + 1]]
                        if maybe.size:
                            self._validate_band(
                                positions[
                                    offsets[start + i] : offsets[start + i + 1]
                                ],
                                maybe, cand_xy, pf,
                                log_threshold, influence, counters,
                            )
        validation_delta = counters.validation_seconds - validation_before
        counters.pruning_seconds += (
            time.perf_counter() - started
        ) - validation_delta
        return influence

    def _validate_band(
        self,
        positions: np.ndarray,
        maybe: np.ndarray,
        cand_xy: np.ndarray,
        pf: ProbabilityFunction,
        log_threshold: float,
        influence: np.ndarray,
        counters: Instrumentation,
    ) -> None:
        """Exact validation of one object's surviving candidate band.

        ``positions`` is the object's ``(n, 2)`` array — on the scan
        path a view into the table's flat columnar block.
        """
        if self.kernel == "vector":
            # One matrix kernel resolves the whole band of this object.
            logs = batch_log_non_influence(pf, positions, cand_xy[maybe])
            influenced = logs <= log_threshold
            influence[maybe[influenced]] += 1
            counters.pairs_validated += maybe.size
            n = positions.shape[0]
            counters.positions_total += n * maybe.size
            counters.positions_evaluated += n * maybe.size
        else:
            for j in maybe:
                influenced = validate_pair(
                    pf,
                    positions,
                    cand_xy[j, 0],
                    cand_xy[j, 1],
                    log_threshold,
                    counters=counters,
                    kernel="scalar",
                    early_stop=False,
                )
                if influenced:
                    influence[j] += 1
