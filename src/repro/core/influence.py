"""Cumulative influence probability and the validation kernels.

Definition 1: ``Pr_c(O) = 1 − Π_i (1 − Pr_c(p_i))`` with
``Pr_c(p_i) = PF(dist(c, p_i))``.

All kernels work in log space — ``S = Σ log(1 − p_i)`` — so that
objects with hundreds of positions cannot underflow the product, and
the influence test ``Pr_c(O) ≥ τ`` becomes ``S ≤ log(1 − τ)``.

Two execution styles are provided and cross-checked by the tests:

* ``scalar`` — a faithful position-by-position loop, matching the
  paper's Algorithm 3 lines 19-23 exactly (Strategy 2 stops after the
  precise position where Lemma 4 first holds), and
* ``vector`` — NumPy evaluation in chunks, stopping at chunk
  granularity (the default; same answers, much faster in CPython).

The optional *fail-fast* bound is an extension beyond the paper
(DESIGN.md §5): with ``p_ub = PF(minDist(c, MBR(O)))`` an upper bound
on every remaining position's probability, the final log non-influence
is at least ``S + remaining · log(1 − p_ub)``; if that bound already
exceeds ``log(1 − τ)`` the object can be rejected without evaluating
the remaining positions.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.result import Instrumentation
from repro.prob.base import ProbabilityFunction

#: Chunk size for the vector kernel; small enough that Strategy 2
#: savings survive, large enough to amortise NumPy call overhead.
DEFAULT_CHUNK = 32


def log1m_safe(p: np.ndarray | float):
    """``log(1 − p)`` that maps ``p ≥ 1`` to ``−inf`` without warnings."""
    with np.errstate(divide="ignore"):
        return np.log1p(-np.minimum(p, 1.0))


def log_non_influence(
    pf: ProbabilityFunction, positions: np.ndarray, cx: float, cy: float
) -> float:
    """``Σ log(1 − PF(dist(c, p_i)))`` over all positions (may be −inf)."""
    d = np.hypot(positions[:, 0] - cx, positions[:, 1] - cy)
    return float(np.sum(log1m_safe(pf(d))))


def cumulative_probability(
    pf: ProbabilityFunction, positions: np.ndarray, cx: float, cy: float
) -> float:
    """``Pr_c(O)`` of Definition 1, evaluated in log space."""
    return -math.expm1(log_non_influence(pf, positions, cx, cy))


def influence_threshold_log(tau: float) -> float:
    """``log(1 − τ)`` — the log-space influence test constant."""
    if not 0.0 < tau < 1.0:
        raise ValueError(f"tau must be in (0, 1), got {tau}")
    return math.log1p(-tau)


def validate_pair(
    pf: ProbabilityFunction,
    positions: np.ndarray,
    cx: float,
    cy: float,
    log_threshold: float,
    counters: Instrumentation | None = None,
    kernel: str = "vector",
    early_stop: bool = True,
    chunk: int = DEFAULT_CHUNK,
    fail_fast_log_bound: float | None = None,
) -> bool:
    """Exact influence test for one (candidate, object) pair.

    ``log_threshold`` is ``log(1 − τ)``.  ``fail_fast_log_bound`` is
    ``log(1 − PF(minDist(c, MBR(O))))`` when the fail-fast extension is
    enabled, else ``None``.  Returns whether ``Pr_c(O) ≥ τ``.
    """
    n = positions.shape[0]
    if counters is not None:
        counters.pairs_validated += 1
        counters.positions_total += n
    if kernel == "scalar":
        return _validate_scalar(
            pf, positions, cx, cy, log_threshold, counters,
            early_stop, fail_fast_log_bound,
        )
    if kernel == "vector":
        return _validate_vector(
            pf, positions, cx, cy, log_threshold, counters,
            early_stop, chunk, fail_fast_log_bound,
        )
    raise ValueError(f"unknown kernel {kernel!r}; use 'scalar' or 'vector'")


def _validate_scalar(
    pf: ProbabilityFunction,
    positions: np.ndarray,
    cx: float,
    cy: float,
    log_threshold: float,
    counters: Instrumentation | None,
    early_stop: bool,
    fail_fast_log_bound: float | None,
) -> bool:
    n = positions.shape[0]
    s = 0.0
    for i in range(n):
        d = math.hypot(positions[i, 0] - cx, positions[i, 1] - cy)
        p = float(pf(d))
        s += math.log1p(-p) if p < 1.0 else -math.inf
        if counters is not None:
            counters.positions_evaluated += 1
        if early_stop and s <= log_threshold:
            if counters is not None and i + 1 < n:
                counters.early_stops += 1
            return True
        if fail_fast_log_bound is not None:
            remaining = n - (i + 1)
            if remaining and s + remaining * fail_fast_log_bound > log_threshold:
                if counters is not None:
                    counters.fail_fast_stops += 1
                return False
    return s <= log_threshold


def _validate_vector(
    pf: ProbabilityFunction,
    positions: np.ndarray,
    cx: float,
    cy: float,
    log_threshold: float,
    counters: Instrumentation | None,
    early_stop: bool,
    chunk: int,
    fail_fast_log_bound: float | None,
) -> bool:
    n = positions.shape[0]
    if not early_stop and fail_fast_log_bound is None:
        # One shot over all positions.
        s = log_non_influence(pf, positions, cx, cy)
        if counters is not None:
            counters.positions_evaluated += n
        return s <= log_threshold
    s = 0.0
    for start in range(0, n, chunk):
        seg = positions[start : start + chunk]
        d = np.hypot(seg[:, 0] - cx, seg[:, 1] - cy)
        s += float(np.sum(log1m_safe(pf(d))))
        if counters is not None:
            counters.positions_evaluated += seg.shape[0]
        done = start + seg.shape[0]
        if early_stop and s <= log_threshold:
            if counters is not None and done < n:
                counters.early_stops += 1
            return True
        if fail_fast_log_bound is not None:
            remaining = n - done
            if remaining and s + remaining * fail_fast_log_bound > log_threshold:
                if counters is not None:
                    counters.fail_fast_stops += 1
                return False
    return s <= log_threshold


def batch_validate_objects(
    pf: ProbabilityFunction,
    positions_list: list[np.ndarray],
    cx: float,
    cy: float,
    log_threshold: float,
    counters: Instrumentation | None = None,
    head: int = 16,
) -> np.ndarray:
    """Strategy-2 validation of many objects against one candidate.

    Vectorised two-phase evaluation: first the leading ``head``
    positions of every object in one concatenated kernel — objects
    whose partial non-influence probability already satisfies Lemma 4
    are decided; only the undecided objects' remaining positions are
    evaluated in a second kernel.  Exact, and the position counters
    reflect the early-stopping savings.

    Returns a boolean array aligned with ``positions_list``.
    """
    k = len(positions_list)
    lengths = np.array([p.shape[0] for p in positions_list])
    if counters is not None:
        counters.pairs_validated += k
        counters.positions_total += int(lengths.sum())

    heads = [p[:head] for p in positions_list]
    head_lengths = np.minimum(lengths, head)
    head_xy = np.concatenate(heads, axis=0)
    offsets = np.concatenate([[0], np.cumsum(head_lengths)[:-1]])
    d = np.hypot(head_xy[:, 0] - cx, head_xy[:, 1] - cy)
    s_head = np.add.reduceat(log1m_safe(pf(d)), offsets)
    if counters is not None:
        counters.positions_evaluated += int(head_lengths.sum())

    influenced = s_head <= log_threshold
    undecided = ~influenced & (lengths > head)
    if counters is not None:
        counters.early_stops += int(np.count_nonzero(influenced & (lengths > head)))
    if np.any(undecided):
        idx = np.nonzero(undecided)[0]
        tails = [positions_list[i][head:] for i in idx]
        tail_lengths = lengths[idx] - head
        tail_xy = np.concatenate(tails, axis=0)
        tail_offsets = np.concatenate([[0], np.cumsum(tail_lengths)[:-1]])
        d = np.hypot(tail_xy[:, 0] - cx, tail_xy[:, 1] - cy)
        s_tail = np.add.reduceat(log1m_safe(pf(d)), tail_offsets)
        if counters is not None:
            counters.positions_evaluated += int(tail_lengths.sum())
        influenced[idx] = (s_head[idx] + s_tail) <= log_threshold
    return influenced


def _gather_segments(
    positions: np.ndarray, starts: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Rows ``positions[starts[i] : starts[i] + counts[i]]``, concatenated.

    One fancy-indexing gather instead of a Python-level list of slices
    — the row order (and therefore every downstream float) matches
    ``np.concatenate([positions[s : s + c] for s, c in ...])`` exactly.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty((0, 2), dtype=positions.dtype)
    seg_ids = np.repeat(np.arange(counts.shape[0]), counts)
    prefix = np.concatenate([[0], np.cumsum(counts)[:-1]])
    local = np.arange(total) - prefix[seg_ids]
    return positions[starts[seg_ids] + local]


def batch_validate_spans(
    pf: ProbabilityFunction,
    positions: np.ndarray,
    offsets: np.ndarray,
    idx: np.ndarray,
    cx: float,
    cy: float,
    log_threshold: float,
    counters: Instrumentation | None = None,
    head: int = 16,
) -> np.ndarray:
    """Columnar :func:`batch_validate_objects` over a flat position block.

    ``positions``/``offsets`` are a table's columnar export (object
    ``i`` owns rows ``positions[offsets[i]:offsets[i+1]]``) and ``idx``
    selects the objects to validate — the verification-set span of one
    candidate.  Runs the same two-phase Strategy-2 evaluation without
    ever materialising per-object arrays or entry wrappers, so pool
    workers validate directly against the attached shared segment.
    Bit-identical to the list-based kernel: the gathered row order,
    the reduceat segmentation, and every counter match exactly.

    Returns a boolean array aligned with ``idx``.
    """
    k = int(idx.shape[0])
    if k == 0:
        return np.zeros(0, dtype=bool)
    starts = offsets[idx]
    lengths = offsets[idx + 1] - starts
    if counters is not None:
        counters.pairs_validated += k
        counters.positions_total += int(lengths.sum())

    head_lengths = np.minimum(lengths, head)
    head_xy = _gather_segments(positions, starts, head_lengths)
    seg_offsets = np.concatenate([[0], np.cumsum(head_lengths)[:-1]])
    d = np.hypot(head_xy[:, 0] - cx, head_xy[:, 1] - cy)
    s_head = np.add.reduceat(log1m_safe(pf(d)), seg_offsets)
    if counters is not None:
        counters.positions_evaluated += int(head_lengths.sum())

    influenced = s_head <= log_threshold
    undecided = ~influenced & (lengths > head)
    if counters is not None:
        counters.early_stops += int(
            np.count_nonzero(influenced & (lengths > head))
        )
    if np.any(undecided):
        u = np.nonzero(undecided)[0]
        tail_lengths = lengths[u] - head
        tail_xy = _gather_segments(positions, starts[u] + head, tail_lengths)
        tail_offsets = np.concatenate([[0], np.cumsum(tail_lengths)[:-1]])
        d = np.hypot(tail_xy[:, 0] - cx, tail_xy[:, 1] - cy)
        s_tail = np.add.reduceat(log1m_safe(pf(d)), tail_offsets)
        if counters is not None:
            counters.positions_evaluated += int(tail_lengths.sum())
        influenced[u] = (s_head[u] + s_tail) <= log_threshold
    return influenced


def batch_log_non_influence(
    pf: ProbabilityFunction,
    positions: np.ndarray,
    cand_xy: np.ndarray,
) -> np.ndarray:
    """``Σ_i log(1 − PF(dist(c_j, p_i)))`` for many candidates at once.

    ``positions`` is ``(n, 2)``, ``cand_xy`` is ``(k, 2)``; the result
    is ``(k,)``.  Used by PINOCCHIO's validation phase, which resolves
    all surviving candidates of one object in a single matrix kernel.
    """
    dx = cand_xy[:, 0][:, None] - positions[:, 0][None, :]
    dy = cand_xy[:, 1][:, None] - positions[:, 1][None, :]
    p = pf(np.hypot(dx, dy))
    return np.sum(log1m_safe(p), axis=1)
