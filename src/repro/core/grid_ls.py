"""Grid-partition PRIME-LS in the spirit of MaxFirst / Yan et al.

The related-work grid techniques ([12], [17]) partition space, bound
the influence achievable inside each partition, and refine the most
promising partitions first.  This module adapts that playbook to
PRIME-LS over a *discrete* candidate set, yielding a third exact solver
with coarser pruning granularity than PINOCCHIO's per-object rules:

* candidates are bucketed into ``g × g`` grid cells;
* per (cell, object), rectangle-to-rectangle ``minDist``/``maxDist``
  against the object's MBR give *cell-level* IA/NIB verdicts — an
  upper and a certified lower influence bound shared by every
  candidate in the cell;
* cells are processed by decreasing upper bound; candidates inside are
  resolved exactly (batch kernel); processing stops when the best
  exact influence matches the remaining cells' upper bounds.

Exactness: a cell's upper bound dominates each member candidate's true
influence (Theorem 2 applied to the whole cell), so the stop rule never
discards the optimum — asserted against NA in the tests.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.base import LocationSelector, candidates_to_array
from repro.core.influence import batch_log_non_influence, influence_threshold_log
from repro.core.object_table import ObjectTable
from repro.core.result import Instrumentation, LSResult
from repro.geo.mbr import MBR
from repro.model.candidate import Candidate
from repro.model.moving_object import MovingObject
from repro.prob.base import ProbabilityFunction


class GridPartitionLS(LocationSelector):
    """Exact PRIME-LS via best-first grid-cell refinement."""

    name = "GRID"

    def __init__(self, grid_size: int = 16):
        if grid_size < 1:
            raise ValueError(f"grid_size must be >= 1, got {grid_size}")
        self.grid_size = grid_size

    def _run(
        self,
        objects: list[MovingObject],
        candidates: list[Candidate],
        pf: ProbabilityFunction,
        tau: float,
    ) -> LSResult:
        counters = Instrumentation()
        table = ObjectTable(objects, pf, tau)
        counters.dead_objects = table.dead_objects
        cand_xy = candidates_to_array(candidates)
        m = cand_xy.shape[0]
        counters.pairs_total = table.live_count * m
        log_threshold = influence_threshold_log(tau)

        cells = self._bucket_candidates(cand_xy)
        bounds = [
            self._cell_bounds(cell_mbr, table) for cell_mbr, _ in cells
        ]

        best_idx = 0
        best_influence = -1
        order = sorted(
            range(len(cells)), key=lambda c: bounds[c][1], reverse=True
        )
        for c in order:
            lower, upper = bounds[c]
            if upper <= best_influence:
                # No candidate in this (or any later) cell can win.
                remaining = [cells[i][1].size for i in order[order.index(c):]]
                counters.candidates_skipped_strategy1 += int(np.sum(remaining))
                break
            cell_mbr, members = cells[c]
            influences = self._resolve_cell(
                cell_mbr, members, cand_xy, table, pf, log_threshold, counters
            )
            local_best = int(np.argmax(influences))
            if influences[local_best] > best_influence:
                best_influence = int(influences[local_best])
                best_idx = int(members[local_best])
        return LSResult(
            algorithm=self.name,
            best_candidate=candidates[best_idx],
            best_influence=best_influence,
            influences={},  # grid refinement resolves only visited cells
            elapsed_seconds=0.0,
            instrumentation=counters,
        )

    # ------------------------------------------------------------------
    def _bucket_candidates(
        self, cand_xy: np.ndarray
    ) -> list[tuple[MBR, np.ndarray]]:
        """Split candidates into non-empty grid cells with tight MBRs."""
        min_x, min_y = cand_xy.min(axis=0)
        max_x, max_y = cand_xy.max(axis=0)
        span_x = max(max_x - min_x, 1e-9)
        span_y = max(max_y - min_y, 1e-9)
        g = self.grid_size
        col = np.minimum(((cand_xy[:, 0] - min_x) / span_x * g).astype(int), g - 1)
        row = np.minimum(((cand_xy[:, 1] - min_y) / span_y * g).astype(int), g - 1)
        key = row * g + col
        cells: list[tuple[MBR, np.ndarray]] = []
        for cell_key in np.unique(key):
            members = np.nonzero(key == cell_key)[0]
            sub = cand_xy[members]
            cells.append((MBR.from_array(sub), members))
        return cells

    @staticmethod
    def _cell_bounds(cell_mbr: MBR, table: ObjectTable) -> tuple[int, int]:
        """Certified (lower, upper) influence bounds for the whole cell.

        Lower: objects whose IA region contains the entire cell.
        Upper: objects whose NIB region intersects the cell at all.
        """
        lower = 0
        upper = 0
        for entry in table:
            if cell_mbr.max_dist_rect(entry.mbr) <= entry.radius:
                lower += 1
                upper += 1
            elif cell_mbr.min_dist_rect(entry.mbr) <= entry.radius:
                upper += 1
        return lower, upper

    @staticmethod
    def _resolve_cell(
        cell_mbr: MBR,
        members: np.ndarray,
        cand_xy: np.ndarray,
        table: ObjectTable,
        pf: ProbabilityFunction,
        log_threshold: float,
        counters: Instrumentation,
    ) -> np.ndarray:
        """Exact influences of the cell's candidates."""
        influences = np.zeros(members.size, dtype=int)
        sub_xy = cand_xy[members]
        for entry in table:
            max_d = entry.mbr.max_dist_many(sub_xy)
            min_d = entry.mbr.min_dist_many(sub_xy)
            ia = max_d <= entry.radius
            band = ~ia & (min_d <= entry.radius)
            counters.pairs_pruned_ia += int(np.count_nonzero(ia))
            counters.pairs_pruned_nib += int(
                members.size - np.count_nonzero(ia) - np.count_nonzero(band)
            )
            influences[ia] += 1
            band_idx = np.nonzero(band)[0]
            if band_idx.size:
                logs = batch_log_non_influence(
                    pf, entry.obj.positions, sub_xy[band_idx]
                )
                influences[band_idx[logs <= log_threshold]] += 1
                counters.pairs_validated += band_idx.size
                n = entry.obj.n_positions
                counters.positions_total += n * band_idx.size
                counters.positions_evaluated += n * band_idx.size
        return influences


def optimal_grid_size(n_candidates: int) -> int:
    """A heuristic grid resolution: ~4 candidates per non-empty cell."""
    return max(1, int(math.sqrt(max(1, n_candidates) / 4)))
