"""The moving-object 2-D array ``A2D`` (Algorithm 1).

One entry per live moving object bundles the ``A1D`` position array
with everything the pruning rules need: the activity MBR, the object's
``minMaxRadius``, and the derived IA/NIB regions.  Objects whose
``minMaxRadius`` is undefined (uninfluenceable at this ``τ``/``PF``)
are excluded and counted, mirroring the paper's observation that such
objects contribute to no candidate's influence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.minmax_radius import MinMaxRadiusCache
from repro.geo.mbr import MBR
from repro.geo.regions import InfluenceArcsRegion, NonInfluenceBoundary
from repro.model.moving_object import MovingObject
from repro.prob.base import ProbabilityFunction


@dataclass(frozen=True, slots=True)
class ObjectEntry:
    """One ``A2D`` tuple: ⟨A1D(O), IA(O), NIB(O)⟩ plus derived data."""

    obj: MovingObject
    radius: float            # minMaxRadius(τ, n)
    mbr: MBR

    @property
    def ia(self) -> InfluenceArcsRegion:
        """The influence-arcs region (Lemma 2)."""
        return InfluenceArcsRegion(self.mbr, self.radius)

    @property
    def nib(self) -> NonInfluenceBoundary:
        """The non-influence boundary region (Lemma 3)."""
        return NonInfluenceBoundary(self.mbr, self.radius)

    @property
    def nib_bbox(self) -> MBR:
        """MBR of the NIB region — drives the candidate R-tree query."""
        return self.mbr.expanded(self.radius)


class ObjectTable:
    """``A2D``: the per-object entries plus the shared radius memo."""

    def __init__(
        self,
        objects: Sequence[MovingObject],
        pf: ProbabilityFunction,
        tau: float,
    ):
        self.pf = pf
        self.tau = tau
        self.radius_cache = MinMaxRadiusCache(pf, tau)
        self.entries: list[ObjectEntry] = []
        self.dead_objects = 0
        for obj in objects:
            radius = self.radius_cache.radius(obj.n_positions)
            if radius is None:
                self.dead_objects += 1
                continue
            self.entries.append(ObjectEntry(obj, radius, obj.mbr))

    @property
    def live_count(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[ObjectEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)
