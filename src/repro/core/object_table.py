"""The moving-object 2-D array ``A2D`` (Algorithm 1).

One entry per live moving object bundles the ``A1D`` position array
with everything the pruning rules need: the activity MBR, the object's
``minMaxRadius``, and the derived IA/NIB regions.  Objects whose
``minMaxRadius`` is undefined (uninfluenceable at this ``τ``/``PF``)
are excluded and counted, mirroring the paper's observation that such
objects contribute to no candidate's influence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.core.minmax_radius import MinMaxRadiusCache
from repro.geo.mbr import MBR
from repro.geo.regions import InfluenceArcsRegion, NonInfluenceBoundary
from repro.model.moving_object import MovingObject
from repro.prob.base import ProbabilityFunction


@dataclass(frozen=True, slots=True)
class ObjectEntry:
    """One ``A2D`` tuple: ⟨A1D(O), IA(O), NIB(O)⟩ plus derived data."""

    obj: MovingObject
    radius: float            # minMaxRadius(τ, n)
    mbr: MBR

    @property
    def ia(self) -> InfluenceArcsRegion:
        """The influence-arcs region (Lemma 2)."""
        return InfluenceArcsRegion(self.mbr, self.radius)

    @property
    def nib(self) -> NonInfluenceBoundary:
        """The non-influence boundary region (Lemma 3)."""
        return NonInfluenceBoundary(self.mbr, self.radius)

    @property
    def nib_bbox(self) -> MBR:
        """MBR of the NIB region — drives the candidate R-tree query."""
        return self.mbr.expanded(self.radius)


@dataclass(frozen=True)
class ColumnarTable:
    """A flat, array-only export of a table's live entries (or a fleet).

    Everything the pruning and validation kernels read, flattened into
    five dense arrays so the whole structure can live in one
    shared-memory block and be rebuilt zero-copy in another process:

    * ``positions`` — the concatenated ``(Σn, 2)`` float64 position
      block of every (live) object, in entry order,
    * ``offsets`` — ``(count + 1,)`` int64 prefix offsets; object ``i``
      owns rows ``positions[offsets[i]:offsets[i+1]]``,
    * ``object_ids`` — ``(count,)`` int64,
    * ``mbrs`` — ``(count, 4)`` float64 rows ``(min_x, min_y, max_x,
      max_y)``, exported rather than recomputed so a rebuild is pure
      reads,
    * ``radii`` — ``(count,)`` float64 ``minMaxRadius`` per entry, or
      ``None`` for a raw fleet export (no ``(PF, τ)`` attached).

    Reconstruction from these arrays is bit-identical to the original:
    float64 values round-trip exactly and every derived quantity
    (IA/NIB regions, distances, probabilities) is a deterministic
    function of them.
    """

    positions: np.ndarray
    offsets: np.ndarray
    object_ids: np.ndarray
    mbrs: np.ndarray
    radii: np.ndarray | None
    #: objects dropped because minMaxRadius was undefined (0 for fleets)
    dead_objects: int = 0

    @property
    def count(self) -> int:
        return int(self.object_ids.shape[0])

    def arrays(self) -> dict[str, np.ndarray]:
        """Name → array, for serialisation into a shared segment."""
        out = {
            "positions": self.positions,
            "offsets": self.offsets,
            "object_ids": self.object_ids,
            "mbrs": self.mbrs,
        }
        if self.radii is not None:
            out["radii"] = self.radii
        return out

    @property
    def nbytes(self) -> int:
        return sum(a.nbytes for a in self.arrays().values())

    def object_positions(self, i: int) -> np.ndarray:
        """Object ``i``'s ``(n, 2)`` view into the position block."""
        return self.positions[self.offsets[i] : self.offsets[i + 1]]


def _columnar_from_parts(
    objects_mbrs: "list[tuple[MovingObject, MBR]]",
    radii: "list[float] | None",
    dead_objects: int,
) -> ColumnarTable:
    """Flatten ``(object, mbr)`` pairs (+ optional radii) into arrays."""
    count = len(objects_mbrs)
    lengths = np.array(
        [obj.n_positions for obj, _ in objects_mbrs], dtype=np.int64
    )
    offsets = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    positions = (
        np.concatenate([obj.positions for obj, _ in objects_mbrs], axis=0)
        if count
        else np.empty((0, 2), dtype=np.float64)
    )
    return ColumnarTable(
        positions=np.ascontiguousarray(positions, dtype=np.float64),
        offsets=offsets,
        object_ids=np.array(
            [obj.object_id for obj, _ in objects_mbrs], dtype=np.int64
        ),
        mbrs=np.array(
            [mbr.as_tuple() for _, mbr in objects_mbrs], dtype=np.float64
        ).reshape(count, 4),
        radii=(
            np.array(radii, dtype=np.float64) if radii is not None else None
        ),
        dead_objects=dead_objects,
    )


def fleet_to_columnar(objects: Sequence[MovingObject]) -> ColumnarTable:
    """Columnar export of a raw fleet (no ``(PF, τ)``, so no radii)."""
    return _columnar_from_parts(
        [(obj, obj.mbr) for obj in objects], None, 0
    )


def fleet_from_columnar(cols: ColumnarTable) -> list[MovingObject]:
    """Rebuild the fleet as zero-copy views into ``cols.positions``."""
    objects = []
    for i in range(cols.count):
        view = cols.object_positions(i)
        view.setflags(write=False)
        mx0, my0, mx1, my1 = cols.mbrs[i]
        objects.append(
            MovingObject.from_readonly(
                int(cols.object_ids[i]),
                view,
                mbr=MBR(float(mx0), float(my0), float(mx1), float(my1)),
            )
        )
    return objects


class ObjectTable:
    """``A2D``: the per-object entries plus the shared radius memo."""

    def __init__(
        self,
        objects: Sequence[MovingObject],
        pf: ProbabilityFunction,
        tau: float,
    ):
        self.pf = pf
        self.tau = tau
        self.radius_cache = MinMaxRadiusCache(pf, tau)
        self.entries: list[ObjectEntry] = []
        self.dead_objects = 0
        for obj in objects:
            radius = self.radius_cache.radius(obj.n_positions)
            if radius is None:
                self.dead_objects += 1
                continue
            self.entries.append(ObjectEntry(obj, radius, obj.mbr))

    def to_columnar(self) -> ColumnarTable:
        """Flatten the live entries into a :class:`ColumnarTable`.

        The export carries everything a worker process needs to answer
        span tasks — positions, offsets, ids, MBRs, radii — so the
        serving pool can publish one table per ``(PF, τ)`` in shared
        memory and rebuild it with :meth:`from_columnar`.
        """
        return _columnar_from_parts(
            [(e.obj, e.mbr) for e in self.entries],
            [e.radius for e in self.entries],
            self.dead_objects,
        )

    @classmethod
    def from_columnar(
        cls,
        cols: ColumnarTable,
        pf: ProbabilityFunction,
        tau: float,
    ) -> "ObjectTable":
        """Rebuild a table from a columnar export, bit-identically.

        Positions become zero-copy read-only views into
        ``cols.positions`` (which may live in shared memory), MBRs and
        radii are read back rather than recomputed, and the dead-object
        count is preserved.  Requires ``cols.radii`` (a table export,
        not a raw fleet).
        """
        if cols.radii is None:
            raise ValueError(
                "cannot rebuild an ObjectTable from a fleet export "
                "(no radii); use fleet_from_columnar"
            )
        table = cls.__new__(cls)
        table.pf = pf
        table.tau = tau
        table.radius_cache = MinMaxRadiusCache(pf, tau)
        table.dead_objects = int(cols.dead_objects)
        table.entries = [
            ObjectEntry(obj, float(cols.radii[i]), obj.mbr)
            for i, obj in enumerate(fleet_from_columnar(cols))
        ]
        return table

    @property
    def live_count(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[ObjectEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)
