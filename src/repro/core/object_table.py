"""The moving-object 2-D array ``A2D`` (Algorithm 1).

One entry per live moving object bundles the ``A1D`` position array
with everything the pruning rules need: the activity MBR, the object's
``minMaxRadius``, and the derived IA/NIB regions.  Objects whose
``minMaxRadius`` is undefined (uninfluenceable at this ``τ``/``PF``)
are excluded and counted, mirroring the paper's observation that such
objects contribute to no candidate's influence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.core.minmax_radius import MinMaxRadiusCache
from repro.geo.mbr import MBR
from repro.geo.regions import InfluenceArcsRegion, NonInfluenceBoundary
from repro.model.moving_object import MovingObject
from repro.prob.base import ProbabilityFunction


@dataclass(frozen=True, slots=True)
class ObjectEntry:
    """One ``A2D`` tuple: ⟨A1D(O), IA(O), NIB(O)⟩ plus derived data."""

    obj: MovingObject
    radius: float            # minMaxRadius(τ, n)
    mbr: MBR

    @property
    def ia(self) -> InfluenceArcsRegion:
        """The influence-arcs region (Lemma 2)."""
        return InfluenceArcsRegion(self.mbr, self.radius)

    @property
    def nib(self) -> NonInfluenceBoundary:
        """The non-influence boundary region (Lemma 3)."""
        return NonInfluenceBoundary(self.mbr, self.radius)

    @property
    def nib_bbox(self) -> MBR:
        """MBR of the NIB region — drives the candidate R-tree query."""
        return self.mbr.expanded(self.radius)


@dataclass(frozen=True)
class ColumnarTable:
    """A flat, array-only export of a table's live entries (or a fleet).

    Everything the pruning and validation kernels read, flattened into
    five dense arrays so the whole structure can live in one
    shared-memory block and be rebuilt zero-copy in another process:

    * ``positions`` — the concatenated ``(Σn, 2)`` float64 position
      block of every (live) object, in entry order,
    * ``offsets`` — ``(count + 1,)`` int64 prefix offsets; object ``i``
      owns rows ``positions[offsets[i]:offsets[i+1]]``,
    * ``object_ids`` — ``(count,)`` int64,
    * ``mbrs`` — ``(count, 4)`` float64 rows ``(min_x, min_y, max_x,
      max_y)``, exported rather than recomputed so a rebuild is pure
      reads,
    * ``radii`` — ``(count,)`` float64 ``minMaxRadius`` per entry, or
      ``None`` for a raw fleet export (no ``(PF, τ)`` attached).

    Reconstruction from these arrays is bit-identical to the original:
    float64 values round-trip exactly and every derived quantity
    (IA/NIB regions, distances, probabilities) is a deterministic
    function of them.
    """

    positions: np.ndarray
    offsets: np.ndarray
    object_ids: np.ndarray
    mbrs: np.ndarray
    radii: np.ndarray | None
    #: objects dropped because minMaxRadius was undefined (0 for fleets)
    dead_objects: int = 0

    @property
    def count(self) -> int:
        return int(self.object_ids.shape[0])

    def arrays(self) -> dict[str, np.ndarray]:
        """Name → array, for serialisation into a shared segment."""
        out = {
            "positions": self.positions,
            "offsets": self.offsets,
            "object_ids": self.object_ids,
            "mbrs": self.mbrs,
        }
        if self.radii is not None:
            out["radii"] = self.radii
        return out

    @property
    def nbytes(self) -> int:
        return sum(a.nbytes for a in self.arrays().values())

    def object_positions(self, i: int) -> np.ndarray:
        """Object ``i``'s ``(n, 2)`` view into the position block."""
        return self.positions[self.offsets[i] : self.offsets[i + 1]]


def _columnar_from_parts(
    objects_mbrs: "list[tuple[MovingObject, MBR]]",
    radii: "list[float] | None",
    dead_objects: int,
) -> ColumnarTable:
    """Flatten ``(object, mbr)`` pairs (+ optional radii) into arrays."""
    count = len(objects_mbrs)
    lengths = np.array(
        [obj.n_positions for obj, _ in objects_mbrs], dtype=np.int64
    )
    offsets = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    positions = (
        np.concatenate([obj.positions for obj, _ in objects_mbrs], axis=0)
        if count
        else np.empty((0, 2), dtype=np.float64)
    )
    return ColumnarTable(
        positions=np.ascontiguousarray(positions, dtype=np.float64),
        offsets=offsets,
        object_ids=np.array(
            [obj.object_id for obj, _ in objects_mbrs], dtype=np.int64
        ),
        mbrs=np.array(
            [mbr.as_tuple() for _, mbr in objects_mbrs], dtype=np.float64
        ).reshape(count, 4),
        radii=(
            np.array(radii, dtype=np.float64) if radii is not None else None
        ),
        dead_objects=dead_objects,
    )


def fleet_to_columnar(objects: Sequence[MovingObject]) -> ColumnarTable:
    """Columnar export of a raw fleet (no ``(PF, τ)``, so no radii)."""
    return _columnar_from_parts(
        [(obj, obj.mbr) for obj in objects], None, 0
    )


def fleet_from_columnar(cols: ColumnarTable) -> list[MovingObject]:
    """Rebuild the fleet as zero-copy views into ``cols.positions``."""
    objects = []
    for i in range(cols.count):
        view = cols.object_positions(i)
        view.setflags(write=False)
        mx0, my0, mx1, my1 = cols.mbrs[i]
        objects.append(
            MovingObject.from_readonly(
                int(cols.object_ids[i]),
                view,
                mbr=MBR(float(mx0), float(my0), float(mx1), float(my1)),
            )
        )
    return objects


class ObjectTable:
    """``A2D``: the per-object entries plus the shared radius memo.

    The table keeps two synchronised representations of its live
    objects:

    * ``entries`` — per-object :class:`ObjectEntry` wrappers, used by
      the R-tree path, the scalar kernels, and everything that wants
      Python-level access, and
    * the **columnar** arrays — ``(count, 4)`` MBRs, ``(count,)``
      radii, and the flat position block — which the broadcast
      classification and batched validation kernels read directly.

    Both are cached: the columnar arrays are built at most once per
    table (instead of on every query), and a table rebuilt from a
    shared-memory export (:meth:`from_columnar`) defers the entry
    wrappers until something actually asks for them — the pool's
    columnar kernels never do.
    """

    def __init__(
        self,
        objects: Sequence[MovingObject],
        pf: ProbabilityFunction,
        tau: float,
    ):
        self.pf = pf
        self.tau = tau
        self._radius_cache: MinMaxRadiusCache | None = MinMaxRadiusCache(
            pf, tau
        )
        entries: list[ObjectEntry] = []
        self.dead_objects = 0
        for obj in objects:
            radius = self._radius_cache.radius(obj.n_positions)
            if radius is None:
                self.dead_objects += 1
                continue
            entries.append(ObjectEntry(obj, radius, obj.mbr))
        self._entries: list[ObjectEntry] | None = entries
        self._cols: ColumnarTable | None = None
        self._mbrs: np.ndarray | None = None
        self._radii: np.ndarray | None = None

    @property
    def entries(self) -> list[ObjectEntry]:
        """The per-object wrappers, materialised on first use.

        A table built from :meth:`from_columnar` starts without them;
        touching this property rebuilds zero-copy views into the
        columnar position block (read-only, possibly shared memory).
        """
        if self._entries is None:
            cols = self._cols
            radii = cols.radii
            self._entries = [
                ObjectEntry(obj, float(radii[i]), obj.mbr)
                for i, obj in enumerate(fleet_from_columnar(cols))
            ]
        return self._entries

    @property
    def radius_cache(self) -> MinMaxRadiusCache:
        """The shared ``minMaxRadius`` memo, created on first use."""
        if self._radius_cache is None:
            self._radius_cache = MinMaxRadiusCache(self.pf, self.tau)
        return self._radius_cache

    def mbr_radius_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The cached ``(count, 4)`` MBR and ``(count,)`` radius arrays.

        Built once per table (or borrowed from an attached columnar
        export) so classification never rebuilds them per query; rows
        are ``(min_x, min_y, max_x, max_y)`` in entry order.
        """
        if self._mbrs is None:
            if self._cols is not None:
                self._mbrs = self._cols.mbrs
                self._radii = self._cols.radii
            else:
                entries = self._entries
                self._mbrs = np.array(
                    [e.mbr.as_tuple() for e in entries], dtype=np.float64
                ).reshape(len(entries), 4)
                self._radii = np.array(
                    [e.radius for e in entries], dtype=np.float64
                )
        return self._mbrs, self._radii

    def positions_offsets(self) -> tuple[np.ndarray, np.ndarray]:
        """The flat ``(Σn, 2)`` position block and its prefix offsets.

        Object ``i`` owns ``positions[offsets[i]:offsets[i+1]]``; built
        (and cached) via :meth:`to_columnar`, so on a worker this is a
        pure read of the attached shared segment.
        """
        cols = self.to_columnar()
        return cols.positions, cols.offsets

    def to_columnar(self) -> ColumnarTable:
        """Flatten the live entries into a :class:`ColumnarTable`.

        The export carries everything a worker process needs to answer
        span tasks — positions, offsets, ids, MBRs, radii — so the
        serving pool can publish one table per ``(PF, τ)`` in shared
        memory and rebuild it with :meth:`from_columnar`.  Memoised:
        repeated calls (pool republish, validation kernels) return the
        same instance.
        """
        if self._cols is None:
            entries = self.entries
            self._cols = _columnar_from_parts(
                [(e.obj, e.mbr) for e in entries],
                [e.radius for e in entries],
                self.dead_objects,
            )
            self._mbrs = self._cols.mbrs
            self._radii = self._cols.radii
        return self._cols

    @classmethod
    def from_columnar(
        cls,
        cols: ColumnarTable,
        pf: ProbabilityFunction,
        tau: float,
    ) -> "ObjectTable":
        """Rebuild a table from a columnar export, bit-identically.

        The columnar arrays (which may live in shared memory) become
        the table's primary representation: the broadcast and batched
        kernels read them directly, and per-object ``ObjectEntry``
        wrappers — zero-copy read-only views into ``cols.positions`` —
        are only materialised if a legacy path asks for ``entries``.
        MBRs and radii are read back rather than recomputed, and the
        dead-object count is preserved.  Requires ``cols.radii`` (a
        table export, not a raw fleet).
        """
        if cols.radii is None:
            raise ValueError(
                "cannot rebuild an ObjectTable from a fleet export "
                "(no radii); use fleet_from_columnar"
            )
        table = cls.__new__(cls)
        table.pf = pf
        table.tau = tau
        table._radius_cache = None
        table.dead_objects = int(cols.dead_objects)
        table._entries = None
        table._cols = cols
        table._mbrs = cols.mbrs
        table._radii = cols.radii
        return table

    @property
    def entries_materialised(self) -> bool:
        """Whether the per-object wrappers exist yet (test hook)."""
        return self._entries is not None

    @property
    def live_count(self) -> int:
        if self._entries is not None:
            return len(self._entries)
        return self._cols.count

    def __iter__(self) -> Iterator[ObjectEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return self.live_count
