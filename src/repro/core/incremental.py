"""Incremental PRIME-LS maintenance (the paper's §7 future work).

The conclusion sketches "incremental solution towards PRIME-LS in
dynamic scenarios, where candidate locations, objects as well as their
positions keep on changing".  This module provides that extension:
an index that maintains exact influence counts under object and
candidate insertions/removals, answering the optimal-location query at
any time without recomputing from scratch.

Costs per update (``m`` candidates, ``r`` objects):

* ``add_object``/``remove_object`` — one IA/NIB classification against
  the candidate R-tree plus validation of the surviving band
  (exactly the per-object work of Algorithm 2).
* ``update_object`` — free when the move stays inside the object's
  :class:`repro.core.safe_region.SafeRegion` (no candidate examined,
  ``counters.safe_region_hits``); otherwise a diff against the
  candidates inside the union of the old and new NIB boxes.
* ``add_candidate`` — one pass over the objects, pruned per object by
  the ``minMaxRadius`` bounds before any validation.
* ``remove_candidate`` — O(1) bookkeeping.

The influence bookkeeping stores, per object, the set of candidates it
is influenced by, so removals are exact.
"""

from __future__ import annotations

import numpy as np

from repro.core.influence import influence_threshold_log, validate_pair
from repro.core.minmax_radius import MinMaxRadiusCache
from repro.core.object_table import ObjectEntry
from repro.core.result import Instrumentation
from repro.core.safe_region import SafeRegion
from repro.index.rtree import RTree
from repro.model.candidate import Candidate
from repro.model.moving_object import MovingObject
from repro.prob.base import ProbabilityFunction


class IncrementalPrimeLS:
    """Exact PRIME-LS influence counts under dynamic updates."""

    def __init__(
        self,
        pf: ProbabilityFunction,
        tau: float,
        rtree_max_entries: int = 8,
    ):
        if not 0.0 < tau < 1.0:
            raise ValueError(f"tau must be in (0, 1), got {tau}")
        self.pf = pf
        self.tau = tau
        self._log_threshold = influence_threshold_log(tau)
        self._radius_cache = MinMaxRadiusCache(pf, tau)
        self._rtree = RTree(max_entries=rtree_max_entries)
        self._candidates: dict[int, Candidate] = {}
        self._influence: dict[int, int] = {}
        self._entries: dict[int, ObjectEntry] = {}
        self._influenced_by: dict[int, set[int]] = {}
        self._safe_regions: dict[int, SafeRegion] = {}
        self._cand_xy_cache: np.ndarray | None = None
        self.counters = Instrumentation()

    # ------------------------------------------------------------------
    # Candidate updates
    # ------------------------------------------------------------------
    def add_candidate(self, candidate: Candidate) -> int:
        """Index a candidate and compute its influence over live objects."""
        cid = candidate.candidate_id
        if cid in self._candidates:
            raise KeyError(f"candidate {cid} already present")
        self._candidates[cid] = candidate
        self._rtree.insert(cid, candidate.x, candidate.y)
        # A new candidate can only shrink safe-region slacks.
        self._safe_regions.clear()
        self._cand_xy_cache = None
        influence = 0
        for oid, entry in self._entries.items():
            if self._pair_influenced(entry, candidate.x, candidate.y):
                influence += 1
                self._influenced_by[oid].add(cid)
        self._influence[cid] = influence
        return influence

    def remove_candidate(self, candidate_id: int) -> None:
        """Drop a candidate from the bookkeeping and the R-tree."""
        if candidate_id not in self._candidates:
            raise KeyError(f"unknown candidate {candidate_id}")
        candidate = self._candidates.pop(candidate_id)
        self._rtree.delete(candidate_id, candidate.x, candidate.y)
        del self._influence[candidate_id]
        for influenced in self._influenced_by.values():
            influenced.discard(candidate_id)
        # Removal only widens true slacks; recompute lazily anyway so
        # cached regions never reference a dead candidate's geometry.
        self._safe_regions.clear()
        self._cand_xy_cache = None

    # ------------------------------------------------------------------
    # Object updates
    # ------------------------------------------------------------------
    def add_object(self, obj: MovingObject) -> None:
        """Register a moving object and update all candidate influences."""
        oid = obj.object_id
        if oid in self._entries:
            raise KeyError(f"object {oid} already present")
        radius = self._radius_cache.radius(obj.n_positions)
        if radius is None:
            # Uninfluenceable at this tau/PF: keep a tombstone so that
            # removal stays well-defined.
            self.counters.dead_objects += 1
            self._entries[oid] = ObjectEntry(obj, float("nan"), obj.mbr)
            self._influenced_by[oid] = set()
            return
        entry = ObjectEntry(obj, radius, obj.mbr)
        self._entries[oid] = entry
        influenced: set[int] = set()
        for cid in self._rtree.query_rect(entry.nib_bbox):
            candidate = self._candidates.get(cid)
            if candidate is None:
                continue  # removed candidate still in the R-tree
            if self._pair_influenced(entry, candidate.x, candidate.y):
                influenced.add(cid)
                self._influence[cid] += 1
        self._influenced_by[oid] = influenced
        self._safe_regions[oid] = SafeRegion.compute(
            entry.mbr, radius, self._cand_xy()
        )

    def remove_object(self, object_id: int) -> None:
        """Unregister an object, rolling back its influence contributions."""
        if object_id not in self._entries:
            raise KeyError(f"unknown object {object_id}")
        for cid in self._influenced_by.pop(object_id):
            if cid in self._influence:
                self._influence[cid] -= 1
        del self._entries[object_id]
        self._safe_regions.pop(object_id, None)

    def update_object(self, obj: MovingObject) -> None:
        """Replace an object's positions, recomputing only what moved.

        The safe-region fast path: if the new MBR/radius stay within
        the object's cached :class:`SafeRegion`, no candidate's IA/NIB
        verdict can have changed and the update costs O(1).  Otherwise
        the diff touches exactly the candidates inside the new NIB box
        plus the ones currently marked influenced — never the whole
        candidate set, and never a from-scratch re-add.
        """
        oid = obj.object_id
        old = self._entries.get(oid)
        if old is None:
            raise KeyError(f"unknown object {oid}")
        radius = self._radius_cache.radius(obj.n_positions)

        if radius is None:
            # Became uninfluenceable: roll back and keep a tombstone.
            for cid in self._influenced_by[oid]:
                if cid in self._influence:
                    self._influence[cid] -= 1
            self._influenced_by[oid].clear()
            self.counters.dead_objects += 1
            self._entries[oid] = ObjectEntry(obj, float("nan"), obj.mbr)
            self._safe_regions.pop(oid, None)
            return

        region = self._safe_regions.get(oid)
        if region is not None and region.covers(obj.mbr, radius):
            self._entries[oid] = ObjectEntry(obj, radius, obj.mbr)
            self.counters.safe_region_hits += 1
            return

        entry = ObjectEntry(obj, radius, obj.mbr)
        self._entries[oid] = entry
        influenced = self._influenced_by[oid]
        # Candidates outside the new NIB box are certainly not
        # influenced now; if they also were not influenced before,
        # nothing changes — so the diff set is the new NIB box hits
        # plus the currently marked candidates (for rollback).
        affected = set(self._rtree.query_rect(entry.nib_bbox))
        affected |= influenced
        for cid in affected:
            candidate = self._candidates.get(cid)
            if candidate is None:
                continue  # removed candidate still in the R-tree
            now = self._pair_influenced(entry, candidate.x, candidate.y)
            was = cid in influenced
            if now and not was:
                influenced.add(cid)
                self._influence[cid] += 1
            elif was and not now:
                influenced.discard(cid)
                self._influence[cid] -= 1
        self._safe_regions[oid] = SafeRegion.compute(
            entry.mbr, radius, self._cand_xy()
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def influence_of(self, candidate_id: int) -> int:
        """Current exact influence of a candidate."""
        return self._influence[candidate_id]

    def optimal_location(self) -> tuple[Candidate, int]:
        """The current PRIME-LS answer: ``(candidate, influence)``."""
        if not self._candidates:
            raise ValueError("no candidates registered")
        best_cid = max(
            self._influence, key=lambda cid: (self._influence[cid], -cid)
        )
        return self._candidates[best_cid], self._influence[best_cid]

    @property
    def n_objects(self) -> int:
        return len(self._entries)

    @property
    def n_candidates(self) -> int:
        return len(self._candidates)

    # ------------------------------------------------------------------
    def _cand_xy(self) -> np.ndarray:
        """The ``(m, 2)`` candidate coordinate array, cached."""
        if self._cand_xy_cache is None:
            self._cand_xy_cache = np.array(
                [(c.x, c.y) for c in self._candidates.values()],
                dtype=float,
            ).reshape(-1, 2)
        return self._cand_xy_cache

    def _pair_influenced(self, entry: ObjectEntry, cx: float, cy: float) -> bool:
        """IA/NIB bounds first, exact validation only in the band."""
        if not np.isfinite(entry.radius):
            return False  # dead object
        if entry.mbr.max_dist(cx, cy) <= entry.radius:
            self.counters.pairs_pruned_ia += 1
            return True
        if entry.mbr.min_dist(cx, cy) > entry.radius:
            self.counters.pairs_pruned_nib += 1
            return False
        return validate_pair(
            self.pf,
            entry.obj.positions,
            cx,
            cy,
            self._log_threshold,
            counters=self.counters,
            kernel="vector",
            early_stop=True,
        )
