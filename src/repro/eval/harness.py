"""Small experiment-runner utilities shared by the experiment drivers."""

from __future__ import annotations

import math
import time
from typing import Callable, Iterable, TypeVar

T = TypeVar("T")


class ExperimentTimer:
    """Context manager timing a block in seconds.

    ::

        with ExperimentTimer() as t:
            run()
        print(t.elapsed)
    """

    def __enter__(self) -> "ExperimentTimer":
        self._start = time.perf_counter()
        self.elapsed = math.nan
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start


def mean_and_std(values: Iterable[float]) -> tuple[float, float]:
    """Sample mean and (population) standard deviation."""
    data = list(values)
    if not data:
        raise ValueError("mean of empty sequence")
    mean = sum(data) / len(data)
    var = sum((v - mean) ** 2 for v in data) / len(data)
    return mean, math.sqrt(var)


def run_repeated(fn: Callable[[int], T], repeats: int) -> list[T]:
    """Call ``fn(round_index)`` ``repeats`` times and collect results.

    The paper averages effectiveness metrics over 50 random candidate
    groups (§6.2); drivers use smaller repeat counts recorded in
    EXPERIMENTS.md.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    return [fn(i) for i in range(repeats)]
