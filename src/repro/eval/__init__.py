"""Effectiveness evaluation: P@K / AP@K against check-in ground truth.

§6.2 of the paper scores each LS semantics by how well its top-K
recommended candidates match the top-K candidates by *actual* check-in
count (Tables 3-4).
"""

from repro.eval.metrics import average_precision_at_k, precision_at_k
from repro.eval.ground_truth import relevant_top_k
from repro.eval.harness import ExperimentTimer, mean_and_std, run_repeated
from repro.eval.significance import BootstrapComparison, paired_bootstrap

__all__ = [
    "BootstrapComparison",
    "paired_bootstrap",
    "precision_at_k",
    "average_precision_at_k",
    "relevant_top_k",
    "ExperimentTimer",
    "mean_and_std",
    "run_repeated",
]
