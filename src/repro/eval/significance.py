"""Paired bootstrap significance testing for method comparisons.

The paper reports mean P@K/AP@K over 50 random candidate groups without
error bars.  For a production-quality evaluation we add a paired
bootstrap over the per-group metric differences, answering "how often
would PRIME-LS beat the baseline on a resampled set of groups?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True, slots=True)
class BootstrapComparison:
    """Result of a paired bootstrap between two per-group metric series."""

    mean_difference: float
    ci_low: float
    ci_high: float
    win_probability: float
    samples: int

    def significant(self, level: float = 0.05) -> bool:
        """Whether the CI at the given level excludes zero."""
        return self.ci_low > 0.0 or self.ci_high < 0.0


def paired_bootstrap(
    method_a: Sequence[float],
    method_b: Sequence[float],
    samples: int = 10_000,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapComparison:
    """Bootstrap the mean of ``a − b`` over paired per-group values.

    ``win_probability`` is the fraction of bootstrap resamples where
    the mean difference is positive (method A ahead).
    """
    a = np.asarray(method_a, dtype=float)
    b = np.asarray(method_b, dtype=float)
    if a.shape != b.shape or a.ndim != 1 or a.size == 0:
        raise ValueError("need two equal-length, non-empty series")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if samples < 1:
        raise ValueError("samples must be >= 1")
    diff = a - b
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, diff.size, size=(samples, diff.size))
    means = diff[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapComparison(
        mean_difference=float(diff.mean()),
        ci_low=float(np.quantile(means, alpha)),
        ci_high=float(np.quantile(means, 1.0 - alpha)),
        win_probability=float(np.mean(means > 0.0)),
        samples=samples,
    )
