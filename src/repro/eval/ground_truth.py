"""Ground-truth candidate ranking from actual check-in counts."""

from __future__ import annotations

import numpy as np


def relevant_top_k(venue_checkins: np.ndarray, venue_indexes: np.ndarray, k: int) -> list[int]:
    """Candidate positions of the top-``k`` candidates by true visits.

    ``venue_indexes[i]`` is the venue each candidate ``i`` was sampled
    from; the returned list contains candidate positions ``i`` ranked
    by ``venue_checkins[venue_indexes[i]]`` descending (ties broken by
    candidate position for determinism).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    counts = venue_checkins[venue_indexes]
    order = np.lexsort((np.arange(len(counts)), -counts))
    return [int(i) for i in order[:k]]
