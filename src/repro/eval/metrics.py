"""Ranking metrics: Precision@K and AveragePrecision@K.

Footnote 6 of the paper: with K used for both the relevant and the
recommended sets, Recall@K equals Precision@K, so only P@K and AP@K
are reported.
"""

from __future__ import annotations

from typing import Sequence


def precision_at_k(recommended: Sequence[int], relevant: Sequence[int], k: int) -> float:
    """``|top-k(recommended) ∩ relevant| / k``."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    relevant_set = set(relevant)
    hits = sum(1 for item in recommended[:k] if item in relevant_set)
    return hits / k


def average_precision_at_k(
    recommended: Sequence[int], relevant: Sequence[int], k: int
) -> float:
    """AP@K: mean of P@i over the ranks ``i ≤ k`` that hit, divided by k.

    The normaliser is ``k`` (not the number of hits), matching the
    paper's use of AP@K as a stricter, order-sensitive companion of
    P@K whose values grow with K (Table 4).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    relevant_set = set(relevant)
    hits = 0
    score = 0.0
    for i, item in enumerate(recommended[:k], start=1):
        if item in relevant_set:
            hits += 1
            score += hits / i
    return score / k
