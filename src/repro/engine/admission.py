"""Admission control for the serving engine: bounded in-flight work.

PINOCCHIO's own pruning design trades exactness work for cheap filters
so queries stay fast as load grows; this module is the systems-level
analogue at the query-admission boundary.  An unbounded engine accepts
every query and lets latency grow without limit under overload — a
bounded one admits at most ``max_inflight`` executing queries plus
``max_queue_depth`` waiting ones, and *sheds* the excess with a typed
:class:`QueryShed` outcome (never a silent drop: the engine emits a
JSONL record per shed query), so the completed queries keep bounded
latency.

Three shedding policies decide *which* queries go when an admission
round overflows:

* ``reject`` — arrivals beyond capacity are refused (newest lose),
* ``oldest`` — the oldest waiting requests are shed so the freshest
  arrivals run (right when stale answers are worthless),
* ``by-priority`` — the lowest-priority requests are shed, ties broken
  by arrival order (:attr:`QueryRequest.priority`, higher wins).

:class:`AdmissionController` is thread-safe (a lock guards the
in-flight count) and accumulates a :class:`ShedReport` the chaos
harness and ``serve-bench`` assert on.  The ``overload`` fault kind
(:mod:`repro.engine.faults`) injects phantom in-flight load so all of
this can be driven deterministically in tests and CI drills.

:class:`TenantAdmission` adds the *tenant* dimension the HTTP front
end (:mod:`repro.engine.server`) admits on: one
:class:`AdmissionController` per tenant (budgets from
:class:`TenantBudget`, lazily created per tenant name), so one
tenant's burst exhausts *that tenant's* budget and sheds that tenant —
never the fleet.  The controllers reuse the same shed policies and
typed :class:`QueryShed` outcomes as engine-level admission.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

#: shedding policies an :class:`AdmissionController` understands
SHED_POLICIES = ("reject", "oldest", "by-priority")


@dataclass(frozen=True)
class QueryShed:
    """The typed outcome of a query refused by admission control.

    Returned in-place by :meth:`QueryEngine.query_batch` (so batch
    results keep request order) and carried by :class:`QueryShedError`
    on the single-query path.  Every shed also emits a JSONL metrics
    record — a serving deployment alerts on exactly these.
    """

    query_id: int          # the engine query id the request consumed
    reason: str            # "queue-full" | "superseded" | "low-priority"
    policy: str            # the shedding policy that made the call
    priority: int          # the request's priority at admission time
    algorithm: str         # what the request would have run
    tau: float
    candidates: int        # size of the request's candidate set
    #: tenant whose budget refused the request (None for engine-level
    #: admission, which has no tenant dimension)
    tenant: str | None = None


class QueryShedError(RuntimeError):
    """Raised by :meth:`QueryEngine.query` when admission sheds it.

    Carries the :class:`QueryShed` outcome as ``.shed``; callers that
    prefer outcome-style handling can use :meth:`QueryEngine.query_batch`,
    which returns the :class:`QueryShed` in the results list instead.
    """

    def __init__(self, shed: QueryShed):
        self.shed = shed
        super().__init__(
            f"query {shed.query_id} shed by admission control "
            f"({shed.reason}, policy {shed.policy!r})"
        )


@dataclass
class ShedReport:
    """What admission control did over a controller's lifetime."""

    #: queries offered to the controller (admitted + shed)
    offered: int = 0
    #: queries that got an execution or queue slot
    admitted: int = 0
    #: every refused query, in shed order
    shed: list[QueryShed] = field(default_factory=list)

    @property
    def shed_count(self) -> int:
        return len(self.shed)

    def note_shed(self, shed: QueryShed) -> None:
        """Record one refused query's typed outcome."""
        self.shed.append(shed)

    def by_reason(self) -> dict[str, int]:
        """Shed counts keyed by reason, feeding
        ``pinls_queries_shed_total{reason=...}``."""
        counts: dict[str, int] = {}
        for shed in self.shed:
            counts[shed.reason] = counts.get(shed.reason, 0) + 1
        return counts


class AdmissionController:
    """A bounded in-flight budget with pluggable shedding.

    ``max_inflight`` bounds concurrently *executing* queries and
    ``max_queue_depth`` the waiting line behind them (default: equal to
    ``max_inflight``); their sum is the admission capacity of one
    :meth:`admit_batch` round.  ``phantom`` load — injected by the
    ``overload`` fault kind — occupies capacity without running
    anything, which is how chaos drills force shedding on demand.
    """

    def __init__(
        self,
        max_inflight: int,
        max_queue_depth: int | None = None,
        policy: str = "reject",
    ):
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if max_queue_depth is None:
            max_queue_depth = max_inflight
        if max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be >= 0, got {max_queue_depth}"
            )
        if policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed policy {policy!r}; expected one of "
                f"{', '.join(SHED_POLICIES)}"
            )
        self.max_inflight = int(max_inflight)
        self.max_queue_depth = int(max_queue_depth)
        self.policy = policy
        self.report = ShedReport()
        self._lock = threading.Lock()
        self._inflight = 0
        #: release() calls (slot-counts) beyond the slots actually held
        #: — a lifecycle bug upstream; clamped, never phantom capacity
        self.over_releases = 0

    # -- capacity ------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Executing + queued slots one admission round may fill."""
        return self.max_inflight + self.max_queue_depth

    @property
    def inflight(self) -> int:
        return self._inflight

    def free_slots(self, phantom: int = 0) -> int:
        """Capacity left after in-flight and phantom load."""
        with self._lock:
            return max(0, self.capacity - self._inflight - int(phantom))

    # -- single-query admission ----------------------------------------
    def try_acquire(self, phantom: int = 0) -> bool:
        """Claim one slot; ``False`` means the query must be shed."""
        with self._lock:
            self.report.offered += 1
            if self._inflight + int(phantom) >= self.capacity:
                return False
            self._inflight += 1
            self.report.admitted += 1
            return True

    def release(self, n: int = 1) -> None:
        """Return ``n`` slots claimed by ``try_acquire``/``admit_batch``.

        Releasing more slots than are held (a double release) must not
        mint phantom capacity — the in-flight count would go negative
        and the controller would admit ``capacity + |excess|`` queries.
        The excess is clamped and counted in :attr:`over_releases`
        (surfaced by :meth:`snapshot`) so the lifecycle bug is visible
        instead of silently widening the budget.
        """
        if n < 0:
            raise ValueError(f"release() takes n >= 0, got {n}")
        with self._lock:
            n = int(n)
            if n > self._inflight:
                self.over_releases += n - self._inflight
                n = self._inflight
            self._inflight -= n

    # -- batch admission -----------------------------------------------
    def admit_batch(
        self, priorities: list[int], phantom: int = 0
    ) -> tuple[list[int], list[tuple[int, str]]]:
        """One admission round over a batch of requests.

        ``priorities[i]`` is request ``i``'s priority.  Returns
        ``(admitted_indices, shed)`` where ``shed`` pairs each refused
        index with its reason; both lists are in ascending request
        order, and the admitted slots are already claimed (the caller
        must :meth:`release` them when the batch finishes).
        """
        n = len(priorities)
        with self._lock:
            self.report.offered += n
            free = max(0, self.capacity - self._inflight - int(phantom))
            if n <= free:
                self._inflight += n
                self.report.admitted += n
                return list(range(n)), []
            if self.policy == "reject":
                admitted = list(range(free))
                reason = "queue-full"
            elif self.policy == "oldest":
                admitted = list(range(n - free, n))
                reason = "superseded"
            else:  # by-priority: keep the highest, FIFO among equals
                ranked = sorted(
                    range(n), key=lambda i: (-priorities[i], i)
                )
                admitted = sorted(ranked[:free])
                reason = "low-priority"
            kept = set(admitted)
            shed = [(i, reason) for i in range(n) if i not in kept]
            self._inflight += len(admitted)
            self.report.admitted += len(admitted)
            return admitted, shed

    # -- observability -------------------------------------------------
    def snapshot(self) -> dict:
        """Readiness-probe view: budget, load, lifetime shed counts."""
        with self._lock:
            return {
                "policy": self.policy,
                "max_inflight": self.max_inflight,
                "max_queue_depth": self.max_queue_depth,
                "inflight": self._inflight,
                "free_slots": max(0, self.capacity - self._inflight),
                "offered": self.report.offered,
                "admitted": self.report.admitted,
                "shed": self.report.shed_count,
                "over_releases": self.over_releases,
            }


@dataclass(frozen=True)
class TenantBudget:
    """One tenant's admission budget (the per-tenant PR-4 knobs).

    ``priority`` is the default priority stamped on the tenant's
    requests when a request carries none of its own — it feeds the
    ``by-priority`` shed policy and the shed outcome either way.
    """

    max_inflight: int = 4
    max_queue_depth: int | None = None
    policy: str = "reject"
    priority: int = 0

    def __post_init__(self):
        # Build a throwaway controller so every validation rule lives
        # in exactly one place; a bad budget fails at construction.
        AdmissionController(
            self.max_inflight,
            max_queue_depth=self.max_queue_depth,
            policy=self.policy,
        )

    def controller(self) -> AdmissionController:
        """A fresh controller enforcing this budget."""
        return AdmissionController(
            self.max_inflight,
            max_queue_depth=self.max_queue_depth,
            policy=self.policy,
        )


class TenantAdmission:
    """Per-tenant admission control for the HTTP front end.

    One :class:`AdmissionController` per tenant name, created lazily
    from ``budgets`` (explicit per-tenant budgets) falling back to
    ``default`` for tenants seen for the first time.  Isolation is the
    point: tenant A bursting past its budget sheds tenant A's requests
    while tenant B's stay admitted — the fleet-level budget (if the
    engine has one) only backstops aggregate overload.

    Thread-safe: controller creation is guarded by a lock, and each
    controller guards its own in-flight count.
    """

    def __init__(
        self,
        default: TenantBudget | None = None,
        budgets: dict[str, TenantBudget] | None = None,
    ):
        self.default = default or TenantBudget()
        self.budgets = dict(budgets or {})
        self._controllers: dict[str, AdmissionController] = {}
        self._lock = threading.Lock()

    def controller(self, tenant: str) -> AdmissionController:
        """The (lazily created) controller enforcing ``tenant``'s budget."""
        with self._lock:
            ctrl = self._controllers.get(tenant)
            if ctrl is None:
                budget = self.budgets.get(tenant, self.default)
                ctrl = budget.controller()
                self._controllers[tenant] = ctrl
            return ctrl

    def budget_for(self, tenant: str) -> TenantBudget:
        """The budget ``tenant`` is (or would be) admitted under."""
        return self.budgets.get(tenant, self.default)

    def try_acquire(self, tenant: str) -> bool:
        """Claim one of ``tenant``'s slots; ``False`` means shed."""
        return self.controller(tenant).try_acquire()

    def release(self, tenant: str, n: int = 1) -> None:
        """Return ``n`` of ``tenant``'s slots."""
        self.controller(tenant).release(n)

    def tenants(self) -> list[str]:
        """Every tenant that has been admitted on, sorted."""
        with self._lock:
            return sorted(self._controllers)

    def shed_by_tenant(self) -> dict[str, int]:
        """Lifetime shed counts per tenant (feeds the drain summary
        and ``pinls_http_sheds_total{tenant=...}``)."""
        return {
            tenant: self.controller(tenant).report.shed_count
            for tenant in self.tenants()
        }

    def snapshot(self) -> dict:
        """Per-tenant controller snapshots, for ``/healthz``."""
        return {
            tenant: self.controller(tenant).snapshot()
            for tenant in self.tenants()
        }
