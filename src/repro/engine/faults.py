"""Fault injection and supervision policy for the serving engine.

The serving layer's robustness claims — a crashed, poisoned, or stalled
worker shard never changes a query's answer, and a per-query deadline
is honoured — are only testable if faults can be provoked on demand.
This module supplies that machinery:

* :class:`FaultSpec` / :class:`FaultInjector` — declarative fault
  schedules (worker crash, injected exception, artificial delay) keyed
  by worker/shard index, engine query id, and dispatch attempt.  The
  injector is consulted by :mod:`repro.engine.parallel` inside each
  forked worker, immediately before the shard task runs; worker faults
  never fire in the parent process, so the retry and degrade-to-serial
  paths are fault-free by construction.  The *parent-side* kinds drive
  the overload-resilience layer instead of workers: ``overload``
  saturates the engine's admission budget with phantom in-flight load
  (forcing typed :class:`~repro.engine.admission.QueryShed` outcomes),
  ``memory-pressure`` trims every engine cache to one entry (forcing
  evictions), and ``exact-down`` force-opens every exact tier's
  breaker (driving an approx-enabled engine onto its approximate
  floor) — see :meth:`FaultInjector.parent_faults`.
* :class:`SupervisorPolicy` — the retry/backoff knobs the supervisor
  in :func:`repro.engine.parallel.run_sharded` obeys.
* :class:`SupervisorReport` — what actually happened to one query's
  shards (failures, retries, degradation, deadline overrun); the
  engine folds it into :class:`~repro.engine.session.EngineStats`,
  the result's :class:`~repro.core.result.Instrumentation`, and the
  per-query JSONL metrics.
* :class:`DeadlineExceeded` — the clean-timeout error raised when a
  query cannot finish inside ``deadline_seconds``.

Injection only makes sense for testing and chaos drills; production
engines simply leave ``fault_injector=None`` and still get the
supervision (deadline, retry, degrade) for free.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

#: fault kinds that fire inside worker processes
WORKER_FAULT_KINDS = ("crash", "exception", "delay")

#: fault kinds that fire in the parent, at the engine's admission
#: boundary: "overload" injects phantom in-flight load so admission
#: control sheds real queries, "memory-pressure" trims every engine
#: cache to one entry so eviction paths run on demand, and
#: "exact-down" force-opens every exact tier's circuit breaker (pool,
#: fork, and — on an approx-enabled engine — serial) so the chaos
#: drill for the approximate floor is deterministic, and
#: "update-storm" injects phantom pending updates at the subscription
#: engine's ingest-admission boundary so update-burst shedding can be
#: driven deterministically in streaming chaos drills
PARENT_FAULT_KINDS = ("overload", "memory-pressure", "exact-down", "update-storm")

#: every fault kind the injector understands
FAULT_KINDS = WORKER_FAULT_KINDS + PARENT_FAULT_KINDS

#: exit status a crash fault dies with (distinguishable from a clean 0
#: and from the generic task-error exit 1 in worker logs)
CRASH_EXIT_CODE = 13


class InjectedFault(RuntimeError):
    """The exception raised inside a worker by an ``exception`` fault."""


class DeadlineExceeded(TimeoutError):
    """A query could not complete within its ``deadline_seconds``.

    Raised by the supervisor with all worker processes already killed
    and joined — no orphans survive the timeout.  Carries the budget
    and the elapsed wall time at the moment the deadline fired.
    """

    def __init__(self, deadline_seconds: float, elapsed_seconds: float):
        self.deadline_seconds = deadline_seconds
        self.elapsed_seconds = elapsed_seconds
        super().__init__(
            f"query exceeded its {deadline_seconds:.3f}s deadline "
            f"(elapsed {elapsed_seconds:.3f}s)"
        )


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``worker``/``query`` restrict where the fault fires (``None`` means
    any shard / any query); ``times`` is how many *dispatch attempts*
    of a matching shard it hits, so ``times=1`` fails the first attempt
    and lets the supervisor's retry succeed, while ``times`` larger
    than the retry budget forces the degrade-to-serial path.

    For the parent-side kinds (:data:`PARENT_FAULT_KINDS`) ``worker``
    is ignored — there is no worker yet at admission time — and
    ``times`` counts the *queries* (or batch rounds) the fault fires
    on.
    """

    kind: str                    # one of FAULT_KINDS
    worker: int | None = None    # shard index to hit; None = every shard
    query: int | None = None     # engine query id to hit; None = every query
    delay_seconds: float = 0.05  # sleep length for "delay" faults
    times: int = 1               # number of attempts the fault fires on

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.delay_seconds < 0:
            raise ValueError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}"
            )
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")

    def matches(self, worker: int, query: int | None, attempt: int) -> bool:
        """Whether this fault fires for the given shard dispatch."""
        if attempt >= self.times:
            return False
        if self.worker is not None and self.worker != worker:
            return False
        if self.query is not None and query is not None and self.query != query:
            return False
        return True

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the CLI form ``KIND[:WORKER[:QUERY[:SECONDS]]]``.

        ``*`` for ``WORKER``/``QUERY`` means "any", e.g.
        ``crash:1`` (crash shard 1 of every query),
        ``exception:*:0`` (poison every shard of query 0),
        ``delay:0:*:0.5`` (stall shard 0 for half a second).
        """
        parts = text.split(":")
        if not 1 <= len(parts) <= 4:
            raise ValueError(
                f"bad fault spec {text!r}; expected "
                "KIND[:WORKER[:QUERY[:SECONDS]]]"
            )

        def _index(token: str, what: str) -> int | None:
            if token in ("*", ""):
                return None
            try:
                return int(token)
            except ValueError:
                raise ValueError(
                    f"bad fault spec {text!r}: {what} must be an "
                    f"integer or '*', got {token!r}"
                ) from None

        kind = parts[0]
        worker = _index(parts[1], "worker") if len(parts) > 1 else None
        query = _index(parts[2], "query") if len(parts) > 2 else None
        kwargs = {}
        if len(parts) > 3:
            try:
                kwargs["delay_seconds"] = float(parts[3])
            except ValueError:
                raise ValueError(
                    f"bad fault spec {text!r}: seconds must be a "
                    f"number, got {parts[3]!r}"
                ) from None
        return cls(kind=kind, worker=worker, query=query, **kwargs)


class FaultInjector:
    """A set of :class:`FaultSpec` consulted by worker processes.

    The injector is inherited by each forked worker (copy-on-write), so
    ``fire`` runs in the child: a ``delay`` sleeps, an ``exception``
    raises :class:`InjectedFault`, and a ``crash`` hard-exits the
    worker with :data:`CRASH_EXIT_CODE` (no cleanup — modelling a
    SIGKILL'd or OOM-killed process).  Matching is purely a function of
    ``(worker, query, attempt)``, so the parent never needs to see
    child-side state: a retry is a new attempt and naturally escapes
    any fault with exhausted ``times``.
    """

    def __init__(self, faults: "list[FaultSpec] | tuple[FaultSpec, ...]" = ()):
        self.faults: list[FaultSpec] = list(faults)
        #: parent-side fire counts per spec index, so ``times`` bounds
        #: how many queries an overload/memory-pressure fault hits
        self._parent_hits: dict[int, int] = {}

    def add(self, spec: FaultSpec) -> "FaultInjector":
        """Schedule another fault; returns self for chaining."""
        self.faults.append(spec)
        return self

    def matching(
        self, worker: int, query: int | None, attempt: int
    ) -> list[FaultSpec]:
        """The worker faults that would fire for this shard dispatch."""
        return [
            f for f in self.faults
            if f.kind in WORKER_FAULT_KINDS
            and f.matches(worker, query, attempt)
        ]

    def fire(self, worker: int, query: int | None, attempt: int) -> None:
        """Trigger every matching worker fault; called inside the worker.

        Parent-side kinds never fire here — the engine consults them
        via :meth:`parent_faults` before dispatching any worker.
        """
        for spec in self.matching(worker, query, attempt):
            if spec.kind == "delay":
                time.sleep(spec.delay_seconds)
            elif spec.kind == "exception":
                raise InjectedFault(
                    f"injected exception in worker {worker} "
                    f"(query {query}, attempt {attempt})"
                )
            elif spec.kind == "crash":
                os._exit(CRASH_EXIT_CODE)

    def parent_faults(self, query: int | None) -> list[FaultSpec]:
        """Consume the parent-side faults firing for this query.

        Called by the engine (in the parent, before admission) once per
        query or batch round.  Each matching spec's fire count is
        consumed, so ``times=2`` hits exactly two rounds.  ``worker``
        restrictions do not apply — no worker exists yet.
        """
        fired = []
        for index, spec in enumerate(self.faults):
            if spec.kind not in PARENT_FAULT_KINDS:
                continue
            hits = self._parent_hits.get(index, 0)
            if hits >= spec.times:
                continue
            if (
                spec.query is not None
                and query is not None
                and spec.query != query
            ):
                continue
            self._parent_hits[index] = hits + 1
            fired.append(spec)
        return fired


@dataclass
class SupervisorPolicy:
    """Retry/backoff knobs for the shard supervisor.

    A failed shard is re-dispatched up to ``max_retries`` times with
    exponential backoff (``backoff_seconds * backoff_multiplier**k``,
    capped at ``backoff_cap_seconds`` and by the remaining deadline
    budget); once retries are exhausted the surviving spans run
    serially in the parent so the query still returns.
    """

    max_retries: int = 2
    backoff_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_cap_seconds: float = 1.0

    def backoff_for(self, attempt: int) -> float:
        """Sleep before re-dispatch number ``attempt + 1``."""
        return min(
            self.backoff_seconds * self.backoff_multiplier ** attempt,
            self.backoff_cap_seconds,
        )


@dataclass
class SupervisorReport:
    """What supervision observed while answering one query (or batch)."""

    #: shard dispatch attempts that died (crash, error, or EOF)
    worker_failures: int = 0
    #: shard re-dispatches performed after a failure
    retries: int = 0
    #: the query fell back to in-parent serial execution
    degraded: bool = False
    #: the query was cut off by its deadline
    deadline_exceeded: bool = False
    #: span tasks handed to the persistent pool, including re-dispatches
    #: (zero on the fork-per-query path)
    spans_dispatched: int = 0
    #: persistent-pool workers killed and replaced while serving
    #: (crashes and deadline kills alike; zero on the fork path)
    respawns: int = 0
    #: human-readable trail of what happened, in order
    events: list[str] = field(default_factory=list)

    def note(self, message: str) -> None:
        """Append one event to the supervision trail."""
        self.events.append(message)
