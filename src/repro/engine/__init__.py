"""The serving layer: multi-query sessions over one ingested fleet.

* :mod:`repro.engine.session` — :class:`QueryEngine`, the cross-query
  cache (object tables per ``(PF, τ)``, candidate arrays and R-trees
  per candidate set) with hit/miss counters and a JSONL metrics log,
* :mod:`repro.engine.parallel` — fork-based candidate-axis sharding,
  bit-identical to serial execution, supervised (per-shard retry with
  bounded backoff, degrade-to-serial, hard deadline kills),
* :mod:`repro.engine.faults` — fault-injection hooks (worker crash,
  injected exception, artificial delay) plus the supervisor policy and
  report types,
* :mod:`repro.engine.bench` — the warm-vs-cold serving benchmark
  behind ``prime-ls serve-bench``.
"""

from repro.engine.bench import ServeBenchResult, run_serve_bench
from repro.engine.faults import (
    DeadlineExceeded,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    SupervisorPolicy,
    SupervisorReport,
)
from repro.engine.parallel import Supervisor, fork_available
from repro.engine.session import EngineStats, QueryEngine

__all__ = [
    "QueryEngine",
    "EngineStats",
    "ServeBenchResult",
    "run_serve_bench",
    "fork_available",
    "FaultSpec",
    "FaultInjector",
    "InjectedFault",
    "DeadlineExceeded",
    "Supervisor",
    "SupervisorPolicy",
    "SupervisorReport",
]
