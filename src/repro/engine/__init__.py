"""The serving layer: multi-query sessions over one ingested fleet.

* :mod:`repro.engine.session` — :class:`QueryEngine`, the cross-query
  cache (object tables per ``(PF, τ)``, candidate arrays and R-trees
  per candidate set, PIN-VO pruning output) with hit/miss counters, a
  JSONL metrics log, and batched admission
  (:meth:`QueryEngine.query_batch`),
* :mod:`repro.engine.pool` — the persistent shared-memory worker pool
  (``pool=True``): long-lived workers attach the columnar fleet/table
  exports once and serve candidate-span tasks from a dispatch queue,
* :mod:`repro.engine.parallel` — fork-based candidate-axis sharding,
  bit-identical to serial execution, supervised (per-shard retry with
  bounded backoff, degrade-to-serial, hard deadline kills); the
  fallback when no pool is enabled (or a PF cannot be pickled),
* :mod:`repro.engine.faults` — fault-injection hooks (worker crash,
  injected exception, artificial delay, plus the parent-side
  ``overload``/``memory-pressure`` kinds) and the supervisor policy
  and report types,
* :mod:`repro.engine.admission` — bounded in-flight admission control
  with pluggable shedding policies and typed
  :class:`~repro.engine.admission.QueryShed` outcomes,
* :mod:`repro.engine.breaker` — per-tier circuit breakers and the
  lossless pool → fork → serial degradation ladder (plus the
  ``approx`` sketch-serving floor on ``approx=True`` engines),
* :mod:`repro.engine.cache` — bounded-memory LRU caches and the
  engine-level :class:`~repro.engine.cache.CacheBudget`,
* :mod:`repro.engine.bench` — the warm-vs-cold serving benchmark
  behind ``prime-ls serve-bench`` (``--pool``/``--batch`` modes, plus
  the admission/breaker overload knobs),
* :mod:`repro.engine.server` — the multi-tenant asyncio HTTP front
  end (``/v1/query``, ``/v1/batch``, ``/v1/subscribe``, ``/v1/ingest``,
  ``/healthz``, ``/metrics``) with per-tenant admission, deadline
  propagation, and graceful drain,
* :mod:`repro.engine.loadgen` — the open-loop Poisson load generator
  measuring p50/p99 and per-tenant shed rate against offered qps,
* :mod:`repro.engine.subscriptions` — standing PRIME-LS queries over a
  live fleet: position updates stream in, each subscription's result
  set is maintained incrementally through a safe-region index (cost ∝
  boundary crossings), with versioned snapshots and change events.
"""

from repro.engine.admission import (
    SHED_POLICIES,
    AdmissionController,
    QueryShed,
    QueryShedError,
    ShedReport,
    TenantAdmission,
    TenantBudget,
)
from repro.engine.bench import ServeBenchResult, run_serve_bench
from repro.engine.breaker import (
    EXACT_TIERS,
    TIERS,
    BreakerConfig,
    CircuitBreaker,
    DegradationLadder,
)
from repro.engine.cache import CacheBudget, LRUCache
from repro.engine.faults import (
    DeadlineExceeded,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    SupervisorPolicy,
    SupervisorReport,
)
from repro.engine.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsServer,
)
from repro.engine.loadgen import (
    LoadReport,
    TenantLoad,
    TenantStats,
    build_serving_engine,
    run_load,
    run_load_sync,
    run_server_bench,
)
from repro.engine.parallel import Supervisor, fork_available
from repro.engine.pool import SEGMENT_PREFIX, WorkerPool, pool_segments
from repro.engine.server import (
    ApiError,
    BackgroundServer,
    HTTPFrontEnd,
    run_server,
)
from repro.engine.session import EngineStats, QueryEngine, QueryRequest
from repro.engine.subscriptions import (
    SUBSCRIPTION_ALGORITHMS,
    IngestReport,
    SubscriptionEngine,
    SubscriptionEvent,
    SubscriptionSnapshot,
    UpdateShed,
)
from repro.engine.trace import (
    NOOP_SPAN,
    PHASES,
    Span,
    SpanRecord,
    TraceReadError,
    Tracer,
    phase_seconds,
    read_trace_file,
    summarize_traces,
    worker_spans,
)

__all__ = [
    "QueryEngine",
    "QueryRequest",
    "EngineStats",
    "WorkerPool",
    "pool_segments",
    "SEGMENT_PREFIX",
    "ServeBenchResult",
    "run_serve_bench",
    "fork_available",
    "FaultSpec",
    "FaultInjector",
    "InjectedFault",
    "DeadlineExceeded",
    "Supervisor",
    "SupervisorPolicy",
    "SupervisorReport",
    "AdmissionController",
    "QueryShed",
    "QueryShedError",
    "ShedReport",
    "SHED_POLICIES",
    "TenantBudget",
    "TenantAdmission",
    "HTTPFrontEnd",
    "BackgroundServer",
    "ApiError",
    "run_server",
    "TenantLoad",
    "TenantStats",
    "LoadReport",
    "run_load",
    "run_load_sync",
    "run_server_bench",
    "build_serving_engine",
    "BreakerConfig",
    "CircuitBreaker",
    "DegradationLadder",
    "TIERS",
    "EXACT_TIERS",
    "CacheBudget",
    "LRUCache",
    "SubscriptionEngine",
    "SubscriptionSnapshot",
    "SubscriptionEvent",
    "IngestReport",
    "UpdateShed",
    "SUBSCRIPTION_ALGORITHMS",
]
