"""Per-query span trees for the serving engine.

The JSONL metrics stream (one flat record per query) answers *what*
happened; it cannot answer *where a slow query spent its time* once
execution fans out across cache lookups, pool dispatches, worker
processes, and the sequential validation tail.  This module adds the
missing dimension: every query served with tracing enabled produces a
**span tree**

::

    query
    ├── admission        waiting for / claiming an admission slot
    ├── plan             solver construction + cache resolution
    ├── prune            PIN-VO pruning phase (cache hit or computed)
    │   ├── shard:vo_prune   per-shard child, measured in the worker
    │   └── shard:vo_prune   and shipped back over the result pipe
    ├── dispatch         sharded/pooled full-table execution
    │   └── span:pin         per-span child from the pool queue
    ├── validate         PIN-VO Strategy-1/2 validation (sequential)
    └── merge            assembling span outputs into the result

carrying a ``trace_id`` that is also stamped into the query's JSONL
record, so logs, metrics, and traces correlate (the observability
contract is documented in ``docs/observability.md``).

Design constraints, in order:

* **zero-cost when off** — a disabled :class:`Tracer` hands out the
  module-level :data:`NOOP_SPAN` singleton whose methods do nothing
  and allocate nothing; the engine's hot path never branches on a
  flag, it just calls span methods,
* **cross-process children** — worker processes measure their own
  spans and ship a tiny picklable :class:`SpanRecord` back with the
  result payload (over the existing fork result pipes and pool
  queues); span start times use the shared wall clock
  (``time.time()``) so children land on the parent's timeline,
* **results stay bit-identical** — tracing only ever *observes*;
  nothing about query execution reads trace state.

The reader half (:func:`read_trace_file`, :func:`summarize_traces`)
backs ``prime-ls trace-summary FILE``: it reconstructs the per-phase
breakdown (prune/dispatch/validate/…) for every completed query and
renders the aggregate table.  A missing or corrupt trace file raises
:class:`TraceReadError` — the CLI turns that into a usage message and
exit code 2, never a traceback.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

#: version stamp written into every exported trace line, so readers can
#: evolve with the format
TRACE_SCHEMA_VERSION = 1

#: the parent-side phase names of the span taxonomy, in canonical order
#: (child spans shipped from workers are named ``shard:*``/``span:*``);
#: ``sketch``/``estimate`` appear only on approximate-tier queries
PHASES = (
    "admission", "plan", "prune", "sketch", "estimate",
    "dispatch", "validate", "merge",
)


@dataclass
class SpanRecord:
    """A finished span measured in another process.

    Small, plain, and picklable — it rides the existing result pipes
    (fork path) and pool reply queues next to the payload and the
    :class:`~repro.core.result.Instrumentation` counters, costing one
    tuple per shard whether or not the parent keeps it.  ``start`` is
    wall-clock (``time.time()``) so the parent can place the child on
    its own timeline without a cross-process monotonic-clock contract.
    """

    name: str
    start: float
    duration: float
    attrs: dict = field(default_factory=dict)


def record_span(name: str, started_wall: float, started_perf: float,
                **attrs) -> SpanRecord:
    """Finish a worker-side measurement into a :class:`SpanRecord`.

    ``started_wall``/``started_perf`` are the ``time.time()`` /
    ``time.perf_counter()`` pair captured when the work began; the
    duration comes from the monotonic clock, the placement from the
    wall clock.
    """
    return SpanRecord(
        name=name,
        start=started_wall,
        duration=time.perf_counter() - started_perf,
        attrs=attrs,
    )


class Span:
    """One node of a query's span tree (parent-process side).

    Usable as a context manager (``with trace.child("prune"): ...``) or
    explicitly via :meth:`finish`.  Children are created with
    :meth:`child` (measured here) or :meth:`attach` (measured in a
    worker and shipped back as a :class:`SpanRecord`).
    """

    __slots__ = (
        "name", "trace_id", "attrs", "children", "start", "duration",
        "_t0",
    )

    def __init__(self, name: str, trace_id: str | None = None, **attrs):
        self.name = name
        self.trace_id = trace_id
        self.attrs = attrs
        self.children: list[Span | SpanRecord] = []
        self.start = time.time()
        self.duration: float | None = None
        self._t0 = time.perf_counter()

    #: real spans build trees; the no-op twin reports False
    enabled = True

    def child(self, name: str, **attrs) -> "Span":
        """Start a child span (its clock starts now)."""
        span = Span(name, **attrs)
        self.children.append(span)
        return span

    def attach(self, record: SpanRecord | None) -> None:
        """Adopt a worker-measured child span."""
        if record is not None:
            self.children.append(record)

    def set(self, **attrs) -> None:
        """Add/overwrite attributes on this span."""
        self.attrs.update(attrs)

    def finish(self, **attrs) -> "Span":
        """Stop the clock (idempotent — the first finish wins)."""
        if self.duration is None:
            self.duration = time.perf_counter() - self._t0
        if attrs:
            self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.finish()
        return False

    def to_dict(self) -> dict:
        """The JSON-serialisable tree rooted here (durations in seconds)."""
        self.finish()
        out: dict = {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
            out["schema"] = TRACE_SCHEMA_VERSION
        if self.attrs:
            out["attrs"] = self.attrs
        if self.children:
            out["children"] = [
                child.to_dict() if isinstance(child, Span) else {
                    "name": child.name,
                    "start": child.start,
                    "duration": child.duration,
                    **({"attrs": child.attrs} if child.attrs else {}),
                }
                for child in self.children
            ]
        return out


class _NoopSpan:
    """The do-nothing twin of :class:`Span`; a single shared instance.

    Every method is a constant-time no-op returning the singleton, so a
    tracing-disabled engine pays one attribute load and one call per
    span site — the "tracing disabled = no-op spans" half of the
    overhead bound (guarded in tests/test_observability.py).
    """

    __slots__ = ()

    enabled = False
    trace_id = None
    name = "noop"

    def child(self, name: str, **attrs) -> "_NoopSpan":
        return self

    def attach(self, record) -> None:
        return None

    def set(self, **attrs) -> None:
        return None

    def finish(self, **attrs) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: the shared no-op span handed out by disabled tracers
NOOP_SPAN = _NoopSpan()


class Tracer:
    """Creates, finishes, and exports per-query span trees.

    ``path`` (when given) receives one JSON line per exported trace —
    append-only, like the metrics JSONL.  ``enabled`` defaults to
    "have somewhere to write"; pass ``enabled=True`` with no path to
    keep trees only in :attr:`traces` (tests do this).  The in-memory
    list is bounded by ``max_traces`` so a long-lived serving session
    cannot leak (the file is never truncated).
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        enabled: bool | None = None,
        max_traces: int = 10_000,
    ):
        self.path = Path(path) if path else None
        self.enabled = bool(
            enabled if enabled is not None else self.path is not None
        )
        if max_traces < 1:
            raise ValueError(f"max_traces must be >= 1, got {max_traces}")
        self.max_traces = int(max_traces)
        #: exported span trees (dict form), oldest dropped beyond budget
        self.traces: list[dict] = []
        #: exported traces over the tracer's lifetime (never decremented)
        self.exported = 0
        self._seq = itertools.count()
        self._pid = os.getpid()

    def start(self, name: str, **attrs):
        """A new root span, or :data:`NOOP_SPAN` when disabled."""
        if not self.enabled:
            return NOOP_SPAN
        trace_id = f"{self._pid:08x}-{next(self._seq):08x}"
        return Span(name, trace_id=trace_id, **attrs)

    def export(self, span) -> dict | None:
        """Finish ``span`` and persist its tree; no-op for the no-op span."""
        if span is None or not getattr(span, "enabled", False):
            return None
        tree = span.finish().to_dict()
        self.traces.append(tree)
        self.exported += 1
        while len(self.traces) > self.max_traces:
            del self.traces[0]
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a") as f:
                f.write(json.dumps(tree) + "\n")
        return tree


# ----------------------------------------------------------------------
# Reading traces back (prime-ls trace-summary)
# ----------------------------------------------------------------------
class TraceReadError(ValueError):
    """A trace file is missing, unreadable, or not trace JSONL."""


def read_trace_file(path: str | Path) -> list[dict]:
    """Parse a trace JSONL file into a list of span-tree dicts.

    Raises :class:`TraceReadError` (with a human-readable reason) on a
    missing file, a non-file path, undecodable JSON, or lines that are
    not span trees — the CLI's strict-flag policy turns these into exit
    code 2 instead of a traceback.
    """
    path = Path(path)
    if not path.exists():
        raise TraceReadError(f"trace file {path} does not exist")
    if not path.is_file():
        raise TraceReadError(f"trace path {path} is not a regular file")
    traces: list[dict] = []
    try:
        text = path.read_text()
    except OSError as exc:
        raise TraceReadError(f"cannot read trace file {path}: {exc}")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            tree = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceReadError(
                f"{path}:{lineno}: not valid JSON ({exc.msg})"
            )
        if not isinstance(tree, dict) or "name" not in tree \
                or "duration" not in tree:
            raise TraceReadError(
                f"{path}:{lineno}: not a span tree (expected an object "
                "with 'name' and 'duration')"
            )
        traces.append(tree)
    if not traces:
        raise TraceReadError(f"trace file {path} holds no traces")
    return traces


def phase_seconds(trace: dict) -> dict[str, float]:
    """Per-phase seconds of one span tree, keyed by top-level child name.

    Only the root's direct children count — worker-side ``shard:*`` /
    ``span:*`` children measure aggregate work inside a phase, which
    would double-count its wall time.
    """
    phases: dict[str, float] = {}
    for child in trace.get("children", ()):
        name = child.get("name", "?")
        phases[name] = phases.get(name, 0.0) + float(
            child.get("duration") or 0.0
        )
    return phases


def worker_spans(trace: dict) -> list[dict]:
    """Every worker-measured child span in the tree, in timeline order."""
    found: list[dict] = []
    stack = list(trace.get("children", ()))
    while stack:
        node = stack.pop()
        name = node.get("name", "")
        if name.startswith(("shard:", "span:")):
            found.append(node)
        stack.extend(node.get("children", ()))
    return sorted(found, key=lambda s: s.get("start", 0.0))


def summarize_traces(traces: list[dict]) -> str:
    """The per-query phase-breakdown table behind ``trace-summary``."""
    from repro.experiments.tables import TextTable

    columns = ["query", "trace", "algorithm", "tier", "total ms"]
    shown_phases = [p for p in PHASES if any(
        p in phase_seconds(t) for t in traces
    )]
    columns += [f"{p} ms" for p in shown_phases]
    table = TextTable(columns)
    totals = {p: 0.0 for p in shown_phases}
    grand_total = 0.0
    for trace in traces:
        attrs = trace.get("attrs", {})
        phases = phase_seconds(trace)
        total_ms = float(trace.get("duration") or 0.0) * 1000.0
        grand_total += total_ms
        row = [
            attrs.get("query", "?"),
            str(trace.get("trace_id", "-"))[-8:],
            attrs.get("algorithm", "?"),
            attrs.get("tier", "?"),
            total_ms,
        ]
        for p in shown_phases:
            ms = phases.get(p, 0.0) * 1000.0
            totals[p] += ms
            row.append(ms)
        table.add_row(row, float_fmt="{:.2f}")
    table.add_row(
        ["all", "-", "-", "-", grand_total]
        + [totals[p] for p in shown_phases],
        float_fmt="{:.2f}",
    )
    n_workers = sum(len(worker_spans(t)) for t in traces)
    lines = [
        table.render(
            title=(
                f"trace summary: {len(traces)} trace(s), "
                f"{n_workers} worker span(s)"
            )
        ),
    ]
    if grand_total > 0 and shown_phases:
        parts = ", ".join(
            f"{p} {totals[p] / grand_total:.0%}" for p in shown_phases
        )
        lines.append(f"phase share of total wall time: {parts}")
    return "\n".join(lines)
