"""Open-loop Poisson load generation against the HTTP front end.

A *closed-loop* client (issue, wait, issue again) cannot see overload:
when the server slows down the client slows down with it, offered load
collapses to whatever the server sustains, and the latency curve looks
flat right up to the cliff that production traffic — which does not
politely wait — falls off.  This module drives the front end
*open-loop*: each tenant fires requests on a Poisson schedule
(exponential inter-arrival gaps at its offered qps) regardless of how
many are still outstanding, which is the arrival process a shared
service actually faces and the only one under which "p99 vs offered
qps" and "shed rate vs offered qps" mean anything.

``run_load`` speaks plain HTTP/1.1 over ``asyncio.open_connection``
(one connection per request, matching the server's
``Connection: close``), records every completed request's latency and
status per tenant, and summarises into a :class:`LoadReport`:
percentiles over *completed* (HTTP 200) requests, shed counts (429),
approx-vs-exact answer split, and error tallies.  ``serve-bench
--server`` (see :mod:`repro.cli`) runs it against an in-process
:class:`~repro.engine.server.BackgroundServer` or, with
``--server-url``, any already-running front end; BENCH_8 sweeps the
offered rate to trace the overload curves with and without the
approximate floor.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field


def _percentile(values: list[float], q: float) -> float:
    """The ``q``-quantile (0..1) by linear interpolation; 0.0 if empty."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass
class TenantLoad:
    """One tenant's offered traffic for a load run."""

    tenant: str
    offered_qps: float
    #: request body template (candidates/tau/algorithm/timeout_ms...);
    #: ``tenant`` is stamped on each request from :attr:`tenant`
    payload: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.offered_qps <= 0:
            raise ValueError(
                f"offered_qps must be > 0, got {self.offered_qps}"
            )


@dataclass
class TenantStats:
    """What one tenant's offered traffic got back."""

    tenant: str
    offered_qps: float
    sent: int = 0
    completed: int = 0          # HTTP 200
    shed: int = 0               # HTTP 429
    approx: int = 0             # HTTP 200 with quality == "approx"
    errors: dict[str, int] = field(default_factory=dict)
    latencies_ms: list[float] = field(default_factory=list)

    def note_error(self, key: str) -> None:
        """Tally one failed request under *key* (a code or ``transport``)."""
        self.errors[key] = self.errors.get(key, 0) + 1

    @property
    def shed_rate(self) -> float:
        """Sheds per offered request (0..1)."""
        return self.shed / self.sent if self.sent else 0.0

    def percentile_ms(self, q: float) -> float:
        """Latency quantile over *completed* requests only."""
        return _percentile(self.latencies_ms, q)

    def to_dict(self) -> dict:
        """JSON-ready summary: counts, shed rate, p50/p99 latency."""
        return {
            "tenant": self.tenant,
            "offered_qps": self.offered_qps,
            "sent": self.sent,
            "completed": self.completed,
            "shed": self.shed,
            "shed_rate": round(self.shed_rate, 4),
            "approx": self.approx,
            "errors": dict(self.errors),
            "p50_ms": round(self.percentile_ms(0.50), 3),
            "p99_ms": round(self.percentile_ms(0.99), 3),
        }


@dataclass
class LoadReport:
    """The outcome of one open-loop run across all tenants."""

    duration_seconds: float
    tenants: dict[str, TenantStats]

    @property
    def total_sent(self) -> int:
        return sum(t.sent for t in self.tenants.values())

    @property
    def total_shed(self) -> int:
        return sum(t.shed for t in self.tenants.values())

    def to_dict(self) -> dict:
        """JSON-ready report: the run duration plus per-tenant stats."""
        return {
            "duration_seconds": round(self.duration_seconds, 3),
            "total_sent": self.total_sent,
            "total_shed": self.total_shed,
            "tenants": {
                name: stats.to_dict()
                for name, stats in sorted(self.tenants.items())
            },
        }

    def summary_lines(self) -> list[str]:
        """Grep-able per-tenant lines for bench logs and CI."""
        lines = []
        for name, t in sorted(self.tenants.items()):
            lines.append(
                f"loadgen tenant {name}: offered={t.offered_qps:g}qps "
                f"sent={t.sent} completed={t.completed} shed={t.shed} "
                f"(rate {t.shed_rate:.1%}) approx={t.approx} "
                f"p50={t.percentile_ms(0.5):.1f}ms "
                f"p99={t.percentile_ms(0.99):.1f}ms"
            )
        return lines


async def _post_query(
    host: str, port: int, body: bytes, timeout: float
) -> tuple[int, dict | None]:
    """One ``POST /v1/query`` over its own connection.

    Returns ``(status, parsed_body)``; transport failures surface as
    exceptions for the caller to tally.
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        head = (
            f"POST /v1/query HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await asyncio.wait_for(writer.drain(), timeout)
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head_part, _, body_part = raw.partition(b"\r\n\r\n")
    status_line = head_part.split(b"\r\n", 1)[0].decode("latin-1", "replace")
    try:
        status = int(status_line.split(" ", 2)[1])
    except (IndexError, ValueError):
        raise ConnectionError(f"malformed response line {status_line!r}")
    try:
        parsed = json.loads(body_part.decode("utf-8")) if body_part else None
    except (UnicodeDecodeError, json.JSONDecodeError):
        parsed = None
    return status, parsed


async def _drive_tenant(
    load: TenantLoad,
    host: str,
    port: int,
    duration: float,
    request_timeout: float,
    rng: random.Random,
    stats: TenantStats,
) -> None:
    """Fire one tenant's Poisson arrivals, open-loop, for ``duration``."""
    payload = dict(load.payload)
    payload["tenant"] = load.tenant
    body = json.dumps(payload).encode("utf-8")
    tasks: set[asyncio.Task] = set()
    started = time.monotonic()
    deadline = started + duration

    async def one_request() -> None:
        sent_at = time.perf_counter()
        stats.sent += 1
        try:
            status, parsed = await _post_query(
                host, port, body, request_timeout
            )
        except (asyncio.TimeoutError, ConnectionError, OSError):
            stats.note_error("transport")
            return
        elapsed_ms = (time.perf_counter() - sent_at) * 1000.0
        if status == 200:
            stats.completed += 1
            stats.latencies_ms.append(elapsed_ms)
            if parsed and parsed.get("quality") == "approx":
                stats.approx += 1
        elif status == 429:
            stats.shed += 1
        else:
            stats.note_error(str(status))

    while True:
        now = time.monotonic()
        if now >= deadline:
            break
        # open loop: fire on schedule no matter how many are pending
        task = asyncio.ensure_future(one_request())
        tasks.add(task)
        task.add_done_callback(tasks.discard)
        gap = rng.expovariate(load.offered_qps)
        await asyncio.sleep(min(gap, max(0.0, deadline - now)))
    if tasks:
        await asyncio.gather(*tasks, return_exceptions=True)


async def run_load(
    loads: list[TenantLoad],
    *,
    host: str,
    port: int,
    duration: float = 5.0,
    request_timeout: float = 30.0,
    seed: int = 0,
) -> LoadReport:
    """Drive every tenant's schedule concurrently; gather the report.

    Deterministic per ``seed``: each tenant gets its own
    ``random.Random`` stream so adding a tenant never perturbs the
    others' arrival times.
    """
    if not loads:
        raise ValueError("run_load needs at least one TenantLoad")
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    stats = {
        load.tenant: TenantStats(load.tenant, load.offered_qps)
        for load in loads
    }
    if len(stats) != len(loads):
        raise ValueError("tenant names must be unique per run")
    started = time.monotonic()
    await asyncio.gather(*(
        _drive_tenant(
            load,
            host,
            port,
            duration,
            request_timeout,
            random.Random(f"{seed}:{load.tenant}"),
            stats[load.tenant],
        )
        for load in loads
    ))
    return LoadReport(
        duration_seconds=time.monotonic() - started, tenants=stats
    )


def run_load_sync(loads: list[TenantLoad], **kwargs) -> LoadReport:
    """Blocking wrapper over :func:`run_load` (its own event loop)."""
    return asyncio.run(run_load(loads, **kwargs))


def build_serving_engine(
    *,
    scale: float = 0.05,
    seed: int = 7,
    workers: int = 0,
    pool: bool = False,
    approx: bool = False,
    approx_k: int | None = None,
    faults=None,
    metrics_path=None,
    trace_path=None,
):
    """A Gowalla-like engine plus a candidate sampler for serving.

    The same world ``serve-bench`` measures (``gowalla_like``), wrapped
    for the HTTP paths: returns ``(engine, sample_candidates)`` where
    ``sample_candidates(n, seed)`` draws a venue-anchored candidate
    set.  Engine-level admission is deliberately left off — the HTTP
    front end admits per tenant; the engine's own budget would
    double-count.

    ``approx_k`` caps the influence-sketch sample size; fleets smaller
    than the default sketch size are sampled exhaustively, so without
    a cap small worlds answer "approx" queries exactly (quality
    ``"exact"``) at full cost.
    """
    import numpy as np

    from repro.datasets import gowalla_like
    from repro.engine.faults import FaultInjector
    from repro.engine.session import QueryEngine

    world = gowalla_like(scale=scale, seed=seed)
    extra = {} if approx_k is None else {"approx_k": approx_k}
    engine = QueryEngine(
        world.dataset.objects,
        workers=workers,
        pool=pool,
        approx=approx,
        fault_injector=FaultInjector(list(faults)) if faults else None,
        metrics_path=metrics_path,
        trace_path=trace_path,
        **extra,
    )

    def sample_candidates(n: int = 24, sample_seed: int = 0):
        rng = np.random.default_rng(sample_seed)
        return world.dataset.sample_candidates(n, rng)[0]

    return engine, sample_candidates


def run_server_bench(
    *,
    offered_qps: float = 10.0,
    burst_factor: float = 4.0,
    duration: float = 3.0,
    tenants: int = 2,
    workers: int = 0,
    pool: bool = False,
    approx: bool = False,
    max_inflight: int = 2,
    max_queue_depth: int | None = None,
    shed_policy: str = "reject",
    server_url: str | None = None,
    scale: float = 0.05,
    seed: int = 7,
    timeout_ms: float | None = None,
) -> dict:
    """One open-loop run against the HTTP front end; the BENCH_8 unit.

    Drives ``tenants`` tenants for ``duration`` seconds: tenant
    ``bulk`` offers ``burst_factor * offered_qps`` (the overloader),
    every other tenant (``victim``, ``victim2``, ...) offers
    ``offered_qps``.  Without ``server_url`` an in-process
    :class:`~repro.engine.server.BackgroundServer` is started over a
    fresh Gowalla-like engine, each tenant bounded by ``max_inflight``/
    ``max_queue_depth``/``shed_policy``, and drained at the end; with
    it, an already-running front end is driven instead (its admission
    configuration is whatever the server was started with).

    Returns a JSON-ready dict: the :class:`LoadReport` plus the run's
    configuration and (in-process only) the drain summary.
    """
    if tenants < 1:
        raise ValueError(f"tenants must be >= 1, got {tenants}")
    if burst_factor < 1:
        raise ValueError(f"burst_factor must be >= 1, got {burst_factor}")

    def _loads(sample_candidates) -> list[TenantLoad]:
        candidates = [
            [float(c.x), float(c.y)] for c in sample_candidates(24, seed)
        ]
        payload = {"candidates": candidates, "tau": 0.7}
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        loads = [TenantLoad("bulk", burst_factor * offered_qps, payload)]
        for i in range(1, tenants):
            name = "victim" if i == 1 else f"victim{i}"
            loads.append(TenantLoad(name, offered_qps, payload))
        return loads

    config = {
        "offered_qps": offered_qps,
        "burst_factor": burst_factor,
        "duration": duration,
        "tenants": tenants,
        "workers": workers,
        "pool": pool,
        "approx": approx,
        "max_inflight": max_inflight,
        "max_queue_depth": max_queue_depth,
        "shed_policy": shed_policy,
    }
    if server_url is not None:
        from urllib.parse import urlparse

        parsed = urlparse(server_url)
        if not parsed.hostname or not parsed.port:
            raise ValueError(
                f"server_url must look like http://host:port, got "
                f"{server_url!r}"
            )
        engine, sample_candidates = build_serving_engine(
            scale=scale, seed=seed
        )
        # only the candidate sampler is needed; the engine under test
        # is the remote one
        engine.close()
        report = run_load_sync(
            _loads(sample_candidates),
            host=parsed.hostname,
            port=parsed.port,
            duration=duration,
            seed=seed,
        )
        return {
            "config": config,
            "report": report.to_dict(),
            "summary_lines": report.summary_lines(),
        }

    from repro.engine.admission import TenantAdmission, TenantBudget
    from repro.engine.server import BackgroundServer

    engine, sample_candidates = build_serving_engine(
        scale=scale, seed=seed, workers=workers, pool=pool, approx=approx
    )
    admission = TenantAdmission(
        default=TenantBudget(
            max_inflight=max_inflight,
            max_queue_depth=max_queue_depth,
            policy=shed_policy,
        )
    )
    server = BackgroundServer(engine, tenants=admission)
    try:
        report = run_load_sync(
            _loads(sample_candidates),
            host="127.0.0.1",
            port=server.port,
            duration=duration,
            seed=seed,
        )
    finally:
        drain = server.stop()
    return {
        "config": config,
        "report": report.to_dict(),
        "summary_lines": report.summary_lines(),
        "drain": drain,
    }
