"""Persistent shared-memory worker pool for the serving engine.

The fork-per-query path in :mod:`repro.engine.parallel` pays process
startup and copy-on-write page faults on *every* dispatch (and again on
every retry).  This module amortises that cost the way the engine's
caches amortise table construction: ``QueryEngine`` lazily starts N
long-lived workers, publishes the columnar export of each cached
``(PF, τ)`` object table (:meth:`ObjectTable.to_columnar`) — and, for
NA, the raw fleet — in ``multiprocessing.shared_memory`` segments, and
thereafter every query only ships span *bounds* and candidate slices
down a per-worker pipe.  Workers rebuild tables as zero-copy views into
the shared position block (:meth:`ObjectTable.from_columnar`), so a
warm query touches no table memory it does not read.

Dispatch protocol (all messages are plain picklable tuples):

* ``("attach", key, shm_name, meta, pf, tau)`` — worker opens the
  named segment, rebuilds the table (or fleet when the export has no
  radii) and memoises it under ``key``.  Sent lazily, once per worker
  per segment; pipe FIFO ordering guarantees attach-before-span.
* ``("span", task_id, key, kind, algorithm, kwargs, pf, tau,
  cand_slice, query_id, attempt, injector)`` — run one candidate span
  (``kind`` is ``"na"``/``"pin"``/``"vo_prune"``) and reply
  ``("ok", task_id, payload, counters, span_record)`` or
  ``("error", task_id, msg)``; the trailing
  :class:`~repro.engine.trace.SpanRecord` is the worker-measured trace
  child the parent hangs under the query's span tree.
* ``("stop",)`` — detach segments and exit.

Supervision mirrors the PR-2 fork-path semantics, adapted to long-lived
workers: a dead worker is detected via its process sentinel (not pipe
EOF — sibling forks inherit copies of the other pipes' fds, which would
defeat EOF detection) alongside its result pipe, any buffered results
are drained first, the worker is respawned (and lazily re-attached),
and its in-flight spans are re-dispatched with bounded backoff.  Once a
span exhausts :attr:`SupervisorPolicy.max_retries` — or the pool
tier's circuit breaker (:mod:`repro.engine.breaker`) trips, cancelling
further retries at a tier the ladder has given up on — it degrades to a
serial in-parent run over the task's ``local_context`` — fault hooks
never fire in the parent, so the degraded pass is fault-free by
construction.  A deadline overrun hard-kills the busy workers (then
respawns them so the pool stays warm), joins everything — no orphans —
and raises :class:`~repro.engine.faults.DeadlineExceeded`.

Results are bit-identical to serial: float64 round-trips through shared
memory exactly, rebuilt tables reuse the exported MBRs/radii instead of
recomputing them, and every span is a pure function of the table and
its candidate slice (asserted in tests/test_pool.py, including under
injected crash/delay faults and mid-batch respawns).

Cleanup is belt and braces: :meth:`WorkerPool.close` stops the workers
and unlinks every segment, a ``weakref.finalize`` hook does the same at
garbage collection / interpreter exit, and both are guarded by an
owner-pid check so a forked child can never unlink the parent's
segments.  Segment names carry the :data:`SEGMENT_PREFIX` so tests and
CI can assert ``/dev/shm`` is clean (:func:`pool_segments`).
"""

from __future__ import annotations

import multiprocessing
import os
import time
import uuid
import weakref
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from multiprocessing.shared_memory import SharedMemory
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.core.object_table import (
    ColumnarTable,
    ObjectTable,
    fleet_from_columnar,
)
from repro.core.result import Instrumentation
from repro.engine.faults import DeadlineExceeded, SupervisorPolicy
from repro.engine.trace import record_span

#: every pool segment's name starts with this, so leak checks can scan
#: ``/dev/shm`` without tripping over unrelated segments
SEGMENT_PREFIX = "pinls_"

#: spans kept in flight per worker: one running plus one queued in the
#: pipe, so a worker never idles between spans but a death never loses
#: more than two dispatches
MAX_INFLIGHT = 2


def pool_segments() -> list[str]:
    """Names of live pool shared-memory segments on this machine."""
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        return []
    return sorted(p.name for p in shm_dir.glob(SEGMENT_PREFIX + "*"))


# ----------------------------------------------------------------------
# Segment packing / attaching
# ----------------------------------------------------------------------
def _pack_segment(cols: ColumnarTable) -> tuple[SharedMemory, dict]:
    """Copy a columnar export into one fresh shared-memory segment.

    Returns the segment and a picklable ``meta`` dict describing each
    array's dtype/shape/byte offset, enough for :func:`_attach_columnar`
    to rebuild zero-copy views in another process.  All arrays use
    8-byte dtypes, so packing them back to back keeps every offset
    aligned.
    """
    arrays = cols.arrays()
    total = sum(a.nbytes for a in arrays.values())
    name = f"{SEGMENT_PREFIX}{os.getpid()}_{uuid.uuid4().hex[:10]}"
    shm = SharedMemory(create=True, size=max(total, 1), name=name)
    meta: dict = {"arrays": {}, "dead_objects": cols.dead_objects}
    offset = 0
    for key, arr in arrays.items():
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf,
                          offset=offset)
        view[...] = arr
        meta["arrays"][key] = (str(arr.dtype), tuple(arr.shape), offset)
        offset += arr.nbytes
    return shm, meta


def _attach_columnar(shm: SharedMemory, meta: dict) -> ColumnarTable:
    """Rebuild a :class:`ColumnarTable` of read-only views over ``shm``."""
    views: dict[str, np.ndarray] = {}
    for key, (dtype, shape, offset) in meta["arrays"].items():
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf,
                          offset=offset)
        view.setflags(write=False)
        views[key] = view
    return ColumnarTable(
        positions=views["positions"],
        offsets=views["offsets"],
        object_ids=views["object_ids"],
        mbrs=views["mbrs"],
        radii=views.get("radii"),
        dead_objects=int(meta["dead_objects"]),
    )


# ----------------------------------------------------------------------
# Span tasks
# ----------------------------------------------------------------------
@dataclass
class SpanTask:
    """One candidate-column span of one query, pool-dispatchable.

    Only :meth:`message` travels to a worker; ``local_context`` (the
    parent-side table or fleet used by the degrade-to-serial fallback)
    deliberately stays out of it so spans never pickle object data.
    The mutable tail fields are supervision bookkeeping the pool uses
    to attribute failures/retries to the owning query.
    """

    task_id: int
    query_index: int          # position of the owning query in its batch
    segment_key: tuple        # which shared segment the worker reads
    kind: str                 # "na" | "pin" | "vo_prune"
    algorithm: str            # registry name to rebuild the solver from
    algorithm_kwargs: dict
    pf: Any
    tau: float
    cand_slice: np.ndarray    # this span's (hi - lo, 2) candidate columns
    lo: int
    hi: int
    query_id: int | None = None   # engine query id, for fault keying
    local_context: Any = None     # parent-side table/fleet; never pickled
    attempt: int = 0
    failures: int = 0
    retries: int = 0
    degraded: bool = False

    def message(self, injector) -> tuple:
        """The picklable pipe message dispatching this span."""
        return (
            "span", self.task_id, self.segment_key, self.kind,
            self.algorithm, self.algorithm_kwargs, self.pf, self.tau,
            self.cand_slice, self.query_id, self.attempt, injector,
        )


def _execute_span(kind: str, solver, data, cand_slice, pf, tau):
    """Run one span the exact way the fork-path shard functions do.

    Returns ``(payload, counters, span_record)`` — the record is the
    worker-measured trace child shipped back with the result so the
    parent can hang it under the query's span tree.
    """
    counters = Instrumentation()
    t_wall, t_perf = time.time(), time.perf_counter()
    if kind == "vo_prune":
        with counters.phase("pruning"):
            payload = solver.pruning_phase(data, cand_slice, counters)
    else:
        # "pin" reads the rebuilt table, "na" the rebuilt fleet
        payload = solver.compute_influence(
            data, cand_slice, pf, tau, counters
        )
    record = record_span(f"span:{kind}", t_wall, t_perf, pid=os.getpid())
    return payload, counters, record


def _run_local(task: SpanTask):
    """Degraded fallback: run the span in the parent on parent data."""
    from repro import make_algorithm

    solver = make_algorithm(task.algorithm, **task.algorithm_kwargs)
    payload, counters, record = _execute_span(
        task.kind, solver, task.local_context, task.cand_slice,
        task.pf, task.tau,
    )
    record.attrs["degraded"] = True
    return payload, counters, record


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _solver_for(cache: dict, algorithm: str, kwargs: dict):
    """Memoised solver construction inside a worker."""
    key = (algorithm, tuple(sorted(kwargs.items())))
    solver = cache.get(key)
    if solver is None:
        from repro import make_algorithm

        solver = cache[key] = make_algorithm(algorithm, **kwargs)
    return solver


def _worker_main(slot: int, conn, sibling_conns) -> None:
    """Long-lived worker loop: attach segments, answer spans, exit clean.

    Exits via ``os._exit`` so the forked child never runs the parent's
    atexit hooks (in particular the pool finalizer — doubly guarded,
    since that also checks the owner pid) and never unlinks segments it
    merely attached.
    """
    for sibling in sibling_conns:
        # Inherited copies of the other workers' parent-side pipe ends;
        # close them so this worker only ever holds its own pipe.
        try:
            sibling.close()
        except OSError:
            pass
    segments: dict[tuple, SharedMemory] = {}
    data: dict[tuple, Any] = {}
    solvers: dict = {}
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            op = msg[0]
            if op == "stop":
                break
            if op == "attach":
                _, key, shm_name, meta, pf, tau = msg
                shm = SharedMemory(name=shm_name)
                cols = _attach_columnar(shm, meta)
                if cols.radii is None:
                    data[key] = fleet_from_columnar(cols)
                else:
                    # Lazy: the columnar kernels read the attached
                    # arrays directly, so no per-object wrappers or
                    # radius memo are built here (only a scalar/R-tree
                    # span would materialise them on demand).
                    data[key] = ObjectTable.from_columnar(cols, pf, tau)
                segments[key] = shm
                continue
            (_, task_id, key, kind, algorithm, kwargs, pf, tau,
             cand_slice, query_id, attempt, injector) = msg
            try:
                if injector is not None:
                    injector.fire(
                        worker=slot, query=query_id, attempt=attempt
                    )
                solver = _solver_for(solvers, algorithm, kwargs)
                payload, counters, record = _execute_span(
                    kind, solver, data[key], cand_slice, pf, tau
                )
                record.attrs["worker"] = slot
                conn.send(("ok", task_id, payload, counters, record))
            except BaseException as exc:  # noqa: BLE001 — parent decides
                try:
                    conn.send(
                        ("error", task_id, f"{type(exc).__name__}: {exc}")
                    )
                except (BrokenPipeError, OSError):
                    break
    finally:
        try:
            conn.close()
        except OSError:
            pass
        for shm in segments.values():
            try:
                shm.close()
            except OSError:
                pass
        os._exit(0)


# ----------------------------------------------------------------------
# Parent-side pool
# ----------------------------------------------------------------------
@dataclass
class _PoolWorker:
    """Parent-side record of one pool slot."""

    slot: int
    process: multiprocessing.Process
    conn: Any
    #: segment keys this incarnation has attached (cleared by respawn)
    attached: set = field(default_factory=set)
    #: task_id -> SpanTask currently dispatched to this worker
    inflight: dict = field(default_factory=dict)


def _cleanup_state(state: dict) -> None:
    """Finalizer body: kill leftover workers, unlink leftover segments.

    Runs in the pool-owning process only — forked children inherit the
    finalizer and must not tear down segments the parent still serves.
    Idempotent, so an explicit :meth:`WorkerPool.close` followed by the
    finalizer is harmless.
    """
    if os.getpid() != state["pid"]:
        return
    for proc in state["procs"]:
        if proc.is_alive():
            proc.kill()
    for proc in state["procs"]:
        try:
            proc.join(timeout=1.0)
        except (AssertionError, ValueError):
            pass
    for shm in state["shms"]:
        try:
            shm.close()
        except Exception:
            pass
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        except Exception:
            pass


class WorkerPool:
    """N long-lived fork workers sharing columnar fleet state.

    Created lazily by :class:`~repro.engine.session.QueryEngine` on the
    first pooled dispatch; one pool serves every subsequent query of
    the session.  ``run_batch`` is the sole entry point: it dispatches
    span tasks round-robin (at most :data:`MAX_INFLIGHT` per worker),
    supervises failures per the :class:`SupervisorPolicy`, and returns
    ``{task_id: (payload, counters, span_record)}``.
    """

    def __init__(self, size: int, policy: SupervisorPolicy | None = None):
        if size < 2:
            raise ValueError(f"a worker pool needs size >= 2, got {size}")
        if not _fork_available():
            raise RuntimeError("WorkerPool requires the fork start method")
        self.size = int(size)
        self.policy = policy or SupervisorPolicy()
        self._mp = multiprocessing.get_context("fork")
        # Start the resource tracker *before* forking workers so every
        # worker inherits it: segment registrations then all land in
        # one tracker (idempotent per name) and the parent's unlink
        # clears them.  Without this each worker would lazily spawn its
        # own tracker and warn about "leaked" segments at exit.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        #: key -> (shm, meta, pf, tau)
        self._segments: dict[tuple, tuple] = {}
        self._workers: list[_PoolWorker] = []
        self._closed = False
        #: workers killed and replaced over the pool's lifetime
        self.respawns = 0
        self._state = {"pid": os.getpid(), "procs": [], "shms": []}
        self._finalizer = weakref.finalize(self, _cleanup_state, self._state)
        for slot in range(self.size):
            self._workers.append(self._spawn(slot))

    # -- lifecycle -----------------------------------------------------
    def _spawn(self, slot: int) -> _PoolWorker:
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        siblings = [w.conn for w in self._workers if w is not None]
        proc = self._mp.Process(
            target=_worker_main,
            args=(slot, child_conn, siblings),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._state["procs"].append(proc)
        return _PoolWorker(slot, proc, parent_conn)

    def ensure_segment(
        self,
        key: tuple,
        builder: Callable[[], ColumnarTable],
        pf=None,
        tau: float = 0.0,
    ) -> None:
        """Publish ``builder()`` under ``key`` if not already published."""
        if self._closed:
            raise RuntimeError("pool is closed")
        if key in self._segments:
            return
        shm, meta = _pack_segment(builder())
        self._segments[key] = (shm, meta, pf, tau)
        self._state["shms"].append(shm)

    def close(self) -> None:
        """Stop workers, join them, unlink every segment.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 2.0
        for worker in self._workers:
            worker.process.join(
                timeout=max(0.0, deadline - time.monotonic())
            )
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join()
            worker.conn.close()
        self._workers = []
        for shm, _meta, _pf, _tau in self._segments.values():
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        self._segments.clear()
        self._state["shms"].clear()
        self._finalizer.detach()

    @property
    def closed(self) -> bool:
        return self._closed

    def segment_names(self) -> list[str]:
        """Names of the segments this pool currently owns."""
        return [shm.name for shm, *_ in self._segments.values()]

    def queue_depth(self) -> int:
        """Spans currently dispatched and unanswered, across workers.

        Sampled by the engine's ``pinls_pool_queue_depth`` gauge at
        scrape time; between dispatch rounds this is 0.
        """
        return sum(len(w.inflight) for w in self._workers)

    # -- dispatch ------------------------------------------------------
    def run_batch(self, tasks: list[SpanTask], supervisor) -> dict:
        """Dispatch ``tasks``, supervise, return ``{task_id: result}``.

        ``supervisor`` is the per-query/batch
        :class:`~repro.engine.parallel.Supervisor`; its report is
        updated in place (failures, retries, respawns, spans) and its
        deadline is enforced — on overrun every busy worker is killed,
        respawned, and joined before ``DeadlineExceeded`` propagates.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        for task in tasks:
            task.attempt = 0
            task.failures = 0
            task.retries = 0
            task.degraded = False
        results: dict[int, Any] = {}
        degraded: list[SpanTask] = []
        pending: deque[SpanTask] = deque(tasks)
        try:
            while pending or any(w.inflight for w in self._workers):
                supervisor.check_deadline()
                self._fill(pending, supervisor)
                self._wait_round(supervisor, results, pending, degraded)
        except DeadlineExceeded:
            self._kill_busy(supervisor)
            raise
        if degraded:
            supervisor.report.degraded = True
            supervisor.report.note(
                f"running {len(degraded)} exhausted span(s) serially "
                "in the parent"
            )
            for task in degraded:
                supervisor.check_deadline()
                results[task.task_id] = _run_local(task)
        return results

    def _fill(self, pending: deque, supervisor) -> None:
        """Hand pending tasks to the least-loaded workers."""
        while pending:
            target = min(
                (w for w in self._workers
                 if len(w.inflight) < MAX_INFLIGHT),
                key=lambda w: (len(w.inflight), w.slot),
                default=None,
            )
            if target is None:
                return
            self._dispatch(pending.popleft(), target, supervisor)

    def _dispatch(
        self, task: SpanTask, worker: _PoolWorker, supervisor
    ) -> None:
        key = task.segment_key
        if key not in worker.attached:
            shm, meta, pf, tau = self._segments[key]
            worker.conn.send(("attach", key, shm.name, meta, pf, tau))
            worker.attached.add(key)
        worker.conn.send(task.message(supervisor.injector))
        worker.inflight[task.task_id] = task
        supervisor.report.spans_dispatched += 1

    def _wait_round(
        self, supervisor, results: dict, pending: deque, degraded: list
    ) -> None:
        """One wait on every busy worker's pipe and process sentinel."""
        waitees: dict[Any, _PoolWorker] = {}
        for worker in self._workers:
            if worker.inflight:
                waitees[worker.conn] = worker
                waitees[worker.process.sentinel] = worker
        if not waitees:
            return
        ready = connection_wait(
            list(waitees), timeout=supervisor.remaining()
        )
        if not ready:
            supervisor.check_deadline()
            return
        handled_dead: set[int] = set()
        for item in ready:
            worker = waitees[item]
            if (
                self._workers[worker.slot] is not worker
                or worker.slot in handled_dead
            ):
                continue  # already respawned while handling this round
            if item is worker.conn:
                try:
                    msg = worker.conn.recv()
                except (EOFError, OSError):
                    handled_dead.add(worker.slot)
                    self._handle_death(
                        worker, supervisor, pending, degraded,
                        results,
                    )
                    continue
                self._apply_message(
                    worker, msg, supervisor, results, pending, degraded
                )
            else:  # process sentinel
                if worker.process.is_alive():
                    continue
                handled_dead.add(worker.slot)
                self._handle_death(
                    worker, supervisor, pending, degraded, results
                )

    def _apply_message(
        self,
        worker: _PoolWorker,
        msg: tuple,
        supervisor,
        results: dict,
        pending: deque,
        degraded: list,
    ) -> None:
        status, task_id = msg[0], msg[1]
        task = worker.inflight.pop(task_id, None)
        if task is None:
            return  # stale reply from a superseded dispatch
        if status == "ok":
            results[task_id] = (msg[2], msg[3], msg[4])
            return
        task.failures += 1
        supervisor.report.worker_failures += 1
        if supervisor.breaker is not None:
            supervisor.breaker.record_failure()
        supervisor.report.note(
            f"pool worker {worker.slot} failed span {task_id}: {msg[2]}"
        )
        self._requeue([task], supervisor, pending, degraded)

    def _handle_death(
        self,
        worker: _PoolWorker,
        supervisor,
        pending: deque,
        degraded: list,
        results: dict,
    ) -> None:
        """Drain, respawn, and re-dispatch after a worker died."""
        # Results the worker sent before dying are still valid — drain
        # them so completed spans are not recomputed.
        while True:
            try:
                if not worker.conn.poll(0):
                    break
                msg = worker.conn.recv()
            except (EOFError, OSError, BrokenPipeError):
                break
            self._apply_message(
                worker, msg, supervisor, results, pending, degraded
            )
        worker.process.join()
        exitcode = worker.process.exitcode
        worker.conn.close()
        failed = list(worker.inflight.values())
        worker.inflight.clear()
        self.respawns += 1
        supervisor.report.respawns += 1
        supervisor.report.note(
            f"pool worker {worker.slot} died (exitcode {exitcode}); "
            "respawned"
        )
        self._workers[worker.slot] = self._spawn(worker.slot)
        for task in failed:
            task.failures += 1
            supervisor.report.worker_failures += 1
            if supervisor.breaker is not None:
                supervisor.breaker.record_failure()
        if failed:
            supervisor.report.note(
                f"re-dispatching {len(failed)} span(s) lost with "
                f"worker {worker.slot}"
            )
            self._requeue(failed, supervisor, pending, degraded)

    def _requeue(
        self,
        failed: list[SpanTask],
        supervisor,
        pending: deque,
        degraded: list,
    ) -> None:
        retry: list[SpanTask] = []
        breaker_open = (
            supervisor.breaker is not None
            and not supervisor.breaker.allow()
        )
        for task in failed:
            if task.attempt >= self.policy.max_retries or breaker_open:
                task.degraded = True
                degraded.append(task)
                supervisor.report.note(
                    f"span {task.task_id} exhausted retries; "
                    "will degrade to serial"
                    if not breaker_open else
                    f"span {task.task_id} abandoned: the pool tier's "
                    "circuit breaker tripped; will degrade to serial"
                )
            else:
                retry.append(task)
        if not retry:
            return
        pause = self.policy.backoff_for(min(t.attempt for t in retry))
        remaining = supervisor.remaining()
        if remaining is not None:
            pause = min(pause, max(0.0, remaining))
        supervisor.report.retries += len(retry)
        for task in retry:
            task.retries += 1
            task.attempt += 1
        supervisor.report.note(
            f"retrying {len(retry)} span(s) after {pause:.3f}s backoff"
        )
        if pause > 0:
            time.sleep(pause)
        pending.extendleft(retry)

    def _kill_busy(self, supervisor) -> None:
        """Deadline fired: kill+respawn busy workers so none is orphaned
        and the pool stays warm for the next query."""
        killed = 0
        for worker in list(self._workers):
            if worker.inflight:
                worker.process.kill()
                worker.process.join()
                worker.conn.close()
                worker.inflight.clear()
                self.respawns += 1
                supervisor.report.respawns += 1
                self._workers[worker.slot] = self._spawn(worker.slot)
                killed += 1
        if killed:
            supervisor.report.note(
                f"deadline expired: {killed} busy pool worker(s) killed "
                "and respawned"
            )


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()
