"""Multi-tenant asyncio HTTP front end for the serving engine.

Everything *behind* the socket already exists — bounded admission,
the circuit-broken pool → fork → serial degradation ladder, the
sketch-based approximate floor, tracing and Prometheus metrics.  This
module is the socket: a stdlib-``asyncio`` HTTP/1.1 server that turns
the :class:`~repro.engine.session.QueryEngine` into a network service
with end-to-end guarantees a client can actually observe.

Endpoints
---------

* ``POST /v1/query`` — one PRIME-LS query; JSON body with
  ``candidates`` (``[[x, y], ...]`` or ``[{"x": .., "y": ..}, ...]``),
  optional ``tau``/``algorithm``/``pf``/``tenant``/``priority``/
  ``timeout_ms``,
* ``POST /v1/batch`` — ``{"queries": [...]}``, one coalesced admission
  round per tenant through :meth:`QueryEngine.query_batch`,
* ``POST /v1/subscribe`` — register a standing query on the front
  end's :class:`~repro.engine.subscriptions.SubscriptionEngine`; same
  ``candidates``/``tau``/``algorithm``/``pf`` fields as ``/v1/query``,
  returns the subscription id and its version-1 snapshot,
* ``POST /v1/ingest`` — stream position updates into the live fleet:
  ``{"updates": [[object_id, x, y], ...]}`` (or a single
  ``{"object_id": .., "x": .., "y": ..}``), one coalesced ingest round;
  returns applied/shed counts and the round's maintenance work,
* ``GET /v1/subscriptions/{id}`` — the subscription's current
  versioned snapshot; ``DELETE`` unsubscribes it,
* ``GET /healthz`` — the engine's readiness probe
  (:meth:`QueryEngine.health`) plus per-tenant admission and front-end
  state; 200 while ready (degraded included — a degraded ladder still
  answers), 503 while draining or closed,
* ``GET /metrics`` — the engine's Prometheus page (including the
  ``pinls_http_*`` series this module registers), rendered by the same
  :class:`~repro.engine.metrics.MetricsRegistry` a side-car
  :class:`~repro.engine.metrics.MetricsServer` would serve.

Robustness contract
-------------------

* **per-tenant admission** —
  :class:`~repro.engine.admission.TenantAdmission` gives every tenant
  its own bounded budget mapping onto the PR-4 shed policies, so one
  tenant's burst sheds *that tenant* (HTTP 429 with a typed error
  body), never the fleet; on an ``approx=True`` engine the over-budget
  request is answered from the influence sketch instead
  (:meth:`QueryEngine.query_approx` — labelled, bounded, HTTP 200),
* **deadline propagation** — ``timeout_ms`` (body field, or the
  ``X-Timeout-Ms`` header) becomes ``query(deadline_seconds=...)``;
  an overrun returns HTTP 504, the engine having already killed and
  joined any workers past the budget,
* **malformed input never tracebacks** — oversized bodies are refused
  with 413 *before* reading, missing/invalid ``Content-Length`` with
  411, malformed JSON and invalid parameters with 400; every error is
  a typed JSON body ``{"error": {"code", "status", "message"}}``,
* **slow clients cannot stall the event loop** — engine work runs on
  a *bounded* thread-pool executor (the event loop only parses,
  admits, and serialises), and reads/writes carry hard timeouts (408
  on a stalled request body; a stalled response write closes the
  connection),
* **graceful drain** — SIGTERM (or :meth:`HTTPFrontEnd.drain`) stops
  accepting, lets in-flight requests finish within the drain budget
  (stragglers are cancelled), shuts the executor down, closes the
  engine (JSONL metrics/traces flushed, every /dev/shm segment
  released), and reports per-tenant shed lines — ``run_server``
  then exits 0.

One request per connection (the server answers ``Connection: close``);
at benchmark rates connection setup is noise and the lifecycle stays
trivially correct under chaos drills.  The open-loop Poisson load
generator in :mod:`repro.engine.loadgen` is the measurement harness:
closed-loop clients hide queueing collapse, offered-rate clients do
not.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.engine.admission import (
    QueryShed,
    QueryShedError,
    TenantAdmission,
)
from repro.engine.faults import DeadlineExceeded
from repro.engine.session import QueryEngine, QueryRequest
from repro.engine.subscriptions import SubscriptionEngine
from repro.model.candidate import Candidate
from repro.prob import (
    ConcavePF,
    ConvexPF,
    ExponentialPF,
    LinearPF,
    LogsigPF,
    PowerLawPF,
    ProbabilityFunction,
)

#: tenant applied when a request names none
DEFAULT_TENANT = "default"

#: request-body ceiling (bytes) — a batch of a few hundred candidate
#: sets fits comfortably; anything bigger is refused with 413
DEFAULT_MAX_BODY_BYTES = 1 << 20

#: seconds a client may take to deliver its request (line + headers +
#: body) before the front end answers 408 and closes the connection
DEFAULT_READ_TIMEOUT = 10.0

#: seconds a client may stall the response write before the connection
#: is dropped (the handler slot is freed either way)
DEFAULT_WRITE_TIMEOUT = 10.0

#: seconds a drain waits for in-flight requests before cancelling them
DEFAULT_DRAIN_SECONDS = 5.0

#: ``timeout_ms`` ceiling — a deadline beyond this is a client bug
MAX_TIMEOUT_MS = 600_000.0

#: probability functions a request may name in its ``pf`` object
PF_REGISTRY: dict[str, type] = {
    "powerlaw": PowerLawPF,
    "exponential": ExponentialPF,
    "linear": LinearPF,
    "logsig": LogsigPF,
    "convex": ConvexPF,
    "concave": ConcavePF,
}

#: single-request shed reason per tenant shed policy (batch admission
#: reuses the engine's own per-policy reasons)
_POLICY_REASON = {
    "reject": "queue-full",
    "oldest": "superseded",
    "by-priority": "low-priority",
}


class ApiError(Exception):
    """A typed HTTP error: status code, machine code, human message.

    Raised anywhere in request handling and rendered as the JSON error
    body — the *only* error surface clients ever see (no tracebacks).
    """

    def __init__(self, status: int, code: str, message: str):
        self.status = status
        self.code = code
        self.message = message
        super().__init__(f"{status} {code}: {message}")

    def body(self) -> dict:
        """The typed JSON error body every non-2xx response carries."""
        return {
            "error": {
                "code": self.code,
                "status": self.status,
                "message": self.message,
            }
        }


_REASON_PHRASES = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    411: "Length Required", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


def _parse_pf(spec) -> ProbabilityFunction | None:
    """Build the request's probability function from its ``pf`` object."""
    if spec is None:
        return None
    if not isinstance(spec, dict) or "name" not in spec:
        raise ApiError(
            400, "bad-pf",
            'pf must be an object like {"name": "powerlaw", "rho": 0.9}',
        )
    params = dict(spec)
    name = params.pop("name")
    cls = PF_REGISTRY.get(name)
    if cls is None:
        raise ApiError(
            400, "bad-pf",
            f"unknown pf {name!r}; expected one of "
            f"{', '.join(sorted(PF_REGISTRY))}",
        )
    try:
        return cls(**params)
    except (TypeError, ValueError) as exc:
        raise ApiError(400, "bad-pf", f"invalid pf parameters: {exc}")


def _parse_candidates(raw) -> list[Candidate]:
    """Candidates from ``[[x, y], ...]`` or ``[{"x": .., "y": ..}]``."""
    if not isinstance(raw, list) or not raw:
        raise ApiError(
            400, "bad-candidates",
            "candidates must be a non-empty list of [x, y] pairs or "
            '{"x": .., "y": ..} objects',
        )
    out: list[Candidate] = []
    for i, entry in enumerate(raw):
        try:
            if isinstance(entry, dict):
                x, y = float(entry["x"]), float(entry["y"])
                cid = int(entry.get("id", i))
                label = str(entry.get("label", ""))
            else:
                x, y = float(entry[0]), float(entry[1])
                cid, label = i, ""
        except (KeyError, IndexError, TypeError, ValueError):
            raise ApiError(
                400, "bad-candidates",
                f"candidates[{i}] is not a coordinate pair",
            )
        out.append(Candidate(cid, x, y, label))
    return out


def _parse_timeout_ms(body: dict, headers: dict) -> float | None:
    """The request deadline in milliseconds (body beats header)."""
    raw = body.get("timeout_ms")
    if raw is None:
        raw = headers.get("x-timeout-ms")
    if raw is None:
        return None
    try:
        timeout_ms = float(raw)
    except (TypeError, ValueError):
        raise ApiError(
            400, "bad-timeout", f"timeout_ms must be a number, got {raw!r}"
        )
    if not 0.0 < timeout_ms <= MAX_TIMEOUT_MS:
        raise ApiError(
            400, "bad-timeout",
            f"timeout_ms must be in (0, {MAX_TIMEOUT_MS:.0f}], "
            f"got {timeout_ms}",
        )
    return timeout_ms


@dataclass
class _ParsedQuery:
    """One validated ``/v1/query`` (or batch member) ready to execute."""

    candidates: list[Candidate]
    pf: ProbabilityFunction | None
    tau: float
    algorithm: str
    tenant: str
    priority: int | None
    timeout_ms: float | None


class HTTPFrontEnd:
    """The asyncio HTTP server bridging sockets onto one engine.

    ::

        engine = QueryEngine(objects, approx=True)
        front = HTTPFrontEnd(engine, port=8080)
        await front.start()
        ...
        await front.drain()   # or run_server(...) for the blocking form

    The front end owns the listener, the per-tenant admission state,
    and a bounded executor; it does **not** own the engine's
    construction, but :meth:`drain` closes the engine (flushing JSONL
    metrics/traces and unlinking /dev/shm segments) because a drained
    front end is the engine's end of life in a serving deployment.
    """

    def __init__(
        self,
        engine: QueryEngine,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        tenants: TenantAdmission | None = None,
        subscriptions: SubscriptionEngine | None = None,
        engine_threads: int = 4,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        read_timeout: float = DEFAULT_READ_TIMEOUT,
        write_timeout: float = DEFAULT_WRITE_TIMEOUT,
        drain_seconds: float = DEFAULT_DRAIN_SECONDS,
    ):
        if engine_threads < 1:
            raise ValueError(
                f"engine_threads must be >= 1, got {engine_threads}"
            )
        if max_body_bytes < 1:
            raise ValueError(
                f"max_body_bytes must be >= 1, got {max_body_bytes}"
            )
        for name, value in (
            ("read_timeout", read_timeout),
            ("write_timeout", write_timeout),
        ):
            if value <= 0:
                raise ValueError(f"{name} must be > 0, got {value}")
        if drain_seconds < 0:
            raise ValueError(
                f"drain_seconds must be >= 0, got {drain_seconds}"
            )
        self.engine = engine
        self.host = host
        self._requested_port = int(port)
        self.tenants = tenants or TenantAdmission()
        # The standing-query tier shares the engine's metrics registry
        # so one /metrics scrape covers pinls_http_*, pinls_queries_*,
        # and pinls_sub_* alike.
        self.subscriptions = subscriptions or SubscriptionEngine(
            default_pf=engine._default_pf or PowerLawPF(),
            metrics_registry=engine.metrics,
        )
        self.max_body_bytes = int(max_body_bytes)
        self.read_timeout = float(read_timeout)
        self.write_timeout = float(write_timeout)
        self.drain_seconds = float(drain_seconds)
        self._executor = ThreadPoolExecutor(
            max_workers=int(engine_threads),
            thread_name_prefix="pinls-http",
        )
        self._server: asyncio.AbstractServer | None = None
        self._handler_tasks: set[asyncio.Task] = set()
        self._draining = False
        self._drained = False
        #: lifetime request counter (also the id shed outcomes carry)
        self.requests_served = 0
        self._inflight = 0
        self._init_http_metrics()

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _init_http_metrics(self) -> None:
        """Register the ``pinls_http_*`` series on the engine registry.

        The registry refuses duplicate names, so a second front end
        over the same engine reuses the first one's series — both
        fronts then account into one catalog, which is what a scrape
        of the shared engine should see.
        """
        reg = self.engine.metrics
        self._m_requests = reg.get("pinls_http_requests_total") or reg.counter(
            "pinls_http_requests_total",
            "HTTP requests answered, by tenant, endpoint, and status "
            "code.",
            labels=("tenant", "endpoint", "code"),
        )
        self._m_latency = reg.get(
            "pinls_http_request_seconds"
        ) or reg.histogram(
            "pinls_http_request_seconds",
            "Wall time from request receipt to response write, per "
            "endpoint.",
            labels=("endpoint",),
        )
        self._m_sheds = reg.get("pinls_http_sheds_total") or reg.counter(
            "pinls_http_sheds_total",
            "Requests refused by per-tenant admission (HTTP 429), by "
            "tenant and shed reason.",
            labels=("tenant", "reason"),
        )
        self._m_approx = reg.get(
            "pinls_http_approx_answers_total"
        ) or reg.counter(
            "pinls_http_approx_answers_total",
            "Over-budget requests answered from the approximate tier "
            "instead of shed, by tenant.",
            labels=("tenant",),
        )
        gauge = reg.get("pinls_http_inflight_requests")
        if gauge is None:
            gauge = reg.gauge(
                "pinls_http_inflight_requests",
                "HTTP requests currently being handled by this front "
                "end.",
            )
            gauge.set_function(lambda: self._inflight)
        self._m_inflight = gauge
        draining = reg.get("pinls_http_draining")
        if draining is None:
            draining = reg.gauge(
                "pinls_http_draining",
                "1 while the front end is draining or drained, else 0.",
            )
            draining.set_function(lambda: int(self._draining))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "HTTPFrontEnd":
        """Bind and start accepting connections."""
        if self._server is not None:
            return self
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        return self

    @property
    def port(self) -> int:
        """The bound port while serving, else the requested one."""
        if self._server is None or not self._server.sockets:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self._draining

    async def drain(self, budget: float | None = None) -> dict:
        """Graceful shutdown: stop accepting, finish or shed, close.

        1. mark draining (``/healthz`` flips to 503, new requests are
           refused with a typed 503 body),
        2. close the listener so no new connections arrive,
        3. wait up to the drain budget for in-flight handlers, then
           cancel the stragglers,
        4. shut the executor down (queued work cancelled),
        5. close the engine — JSONL metrics and traces are flushed by
           their append-per-event writers, pool workers are stopped
           and joined, and every /dev/shm segment is unlinked.

        Returns a summary dict (``tenants`` holds per-tenant
        offered/admitted/shed counts) and is idempotent — a second
        drain returns the summary again without re-closing anything.
        """
        if not self._drained:
            self._draining = True
            budget = self.drain_seconds if budget is None else float(budget)
            deadline = time.monotonic() + budget
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            pending = {t for t in self._handler_tasks if not t.done()}
            if pending:
                remaining = max(0.0, deadline - time.monotonic())
                done, still = await asyncio.wait(
                    pending, timeout=remaining
                )
                for task in still:
                    task.cancel()
                if still:
                    await asyncio.gather(*still, return_exceptions=True)
            self._executor.shutdown(wait=False, cancel_futures=True)
            self.engine.close()
            self._drained = True
        return {
            "drained": True,
            "tenants": self.tenants.snapshot(),
            "requests_served": self.requests_served,
        }

    def drain_lines(self) -> list[str]:
        """Human-readable per-tenant drain summary (one grep-able line
        per tenant, plus the closing status line)."""
        lines = []
        for tenant, snap in sorted(self.tenants.snapshot().items()):
            lines.append(
                f"tenant {tenant}: offered={snap['offered']} "
                f"admitted={snap['admitted']} shed={snap['shed']} "
                f"(policy {snap['policy']}, "
                f"max-inflight {snap['max_inflight']})"
            )
        lines.append(
            f"drain: complete after {self.requests_served} request(s)"
        )
        return lines

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        """One connection: read one request, answer it, close."""
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
            task.add_done_callback(self._handler_tasks.discard)
        self._inflight += 1
        started = time.perf_counter()
        endpoint = "unknown"
        tenant = DEFAULT_TENANT
        status = 500
        try:
            try:
                method, path, headers, body = await self._read_request(
                    reader
                )
                endpoint = path
                status, payload, tenant = await self._route(
                    method, path, headers, body
                )
            except ApiError as exc:
                status, payload = exc.status, exc.body()
            except asyncio.CancelledError:
                raise  # drain cancelled us; the connection just drops
            except (ConnectionError, asyncio.IncompleteReadError):
                return  # client went away mid-request: nothing to answer
            except Exception as exc:  # noqa: BLE001 - the no-traceback contract
                status = 500
                payload = ApiError(
                    500, "internal",
                    f"unexpected {type(exc).__name__} while handling "
                    "the request",
                ).body()
            await self._write_response(writer, status, payload)
        finally:
            self._inflight -= 1
            self.requests_served += 1
            elapsed = time.perf_counter() - started
            self._m_requests.inc(
                tenant=tenant, endpoint=endpoint, code=str(status)
            )
            self._m_latency.observe(elapsed, endpoint=endpoint)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader):
        """Parse one HTTP/1.1 request under the read timeout."""
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), self.read_timeout
            )
        except asyncio.TimeoutError:
            raise ApiError(
                408, "read-timeout",
                f"request head not received within "
                f"{self.read_timeout:.1f}s",
            )
        except asyncio.LimitOverrunError:
            raise ApiError(
                413, "headers-too-large", "request head exceeds the limit"
            )
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                raise ConnectionError("client closed before a request")
            raise ApiError(
                400, "bad-request", "connection closed mid-request-head"
            )
        try:
            lines = head.decode("latin-1").split("\r\n")
            method, path, _version = lines[0].split(" ", 2)
        except (UnicodeDecodeError, ValueError):
            raise ApiError(
                400, "bad-request", "malformed HTTP request line"
            )
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        path = path.split("?", 1)[0]
        body = b""
        if method == "POST":
            if "chunked" in headers.get("transfer-encoding", "").lower():
                raise ApiError(
                    411, "length-required",
                    "chunked transfer encoding is not supported; send "
                    "a Content-Length",
                )
            raw_length = headers.get("content-length")
            if raw_length is None:
                raise ApiError(
                    411, "length-required",
                    "POST requests must carry a Content-Length header",
                )
            try:
                length = int(raw_length)
                if length < 0:
                    raise ValueError
            except ValueError:
                raise ApiError(
                    400, "bad-request",
                    f"invalid Content-Length {raw_length!r}",
                )
            if length > self.max_body_bytes:
                # refused before reading: an oversized body never
                # occupies the loop or the parser
                raise ApiError(
                    413, "body-too-large",
                    f"request body of {length} bytes exceeds the "
                    f"{self.max_body_bytes}-byte limit",
                )
            if length:
                try:
                    body = await asyncio.wait_for(
                        reader.readexactly(length), self.read_timeout
                    )
                except asyncio.TimeoutError:
                    raise ApiError(
                        408, "read-timeout",
                        f"request body not received within "
                        f"{self.read_timeout:.1f}s",
                    )
        return method, path, headers, body

    async def _write_response(self, writer, status: int, payload) -> None:
        """Serialise and send one JSON (or text) response."""
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = (json.dumps(payload) + "\n").encode("utf-8")
            content_type = "application/json"
        reason = _REASON_PHRASES.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + body)
            await asyncio.wait_for(writer.drain(), self.write_timeout)
        except (asyncio.TimeoutError, ConnectionError, OSError):
            # a stalled or vanished client cannot hold the handler:
            # drop the connection, the slot is freed by the caller
            pass

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(self, method, path, headers, body):
        """Dispatch one parsed request; returns (status, payload, tenant)."""
        if path == "/healthz":
            if method != "GET":
                raise ApiError(405, "method-not-allowed", "use GET")
            return (*self._handle_healthz(), DEFAULT_TENANT)
        if path == "/metrics":
            if method != "GET":
                raise ApiError(405, "method-not-allowed", "use GET")
            return 200, self.engine.metrics.render(), DEFAULT_TENANT
        if path == "/v1/query":
            if method != "POST":
                raise ApiError(405, "method-not-allowed", "use POST")
            return await self._handle_query(headers, body)
        if path == "/v1/batch":
            if method != "POST":
                raise ApiError(405, "method-not-allowed", "use POST")
            return await self._handle_batch(headers, body)
        if path == "/v1/subscribe":
            if method != "POST":
                raise ApiError(405, "method-not-allowed", "use POST")
            return await self._handle_subscribe(headers, body)
        if path == "/v1/ingest":
            if method != "POST":
                raise ApiError(405, "method-not-allowed", "use POST")
            return await self._handle_ingest(headers, body)
        if path.startswith("/v1/subscriptions/"):
            if method not in ("GET", "DELETE"):
                raise ApiError(405, "method-not-allowed", "use GET or DELETE")
            return await self._handle_subscription(method, path)
        raise ApiError(
            404, "not-found",
            f"no route for {path!r}; endpoints: /v1/query, /v1/batch, "
            "/v1/subscribe, /v1/ingest, /v1/subscriptions/{id}, "
            "/healthz, /metrics",
        )

    def _handle_healthz(self):
        """Readiness: engine health + tenant budgets + front-end state."""
        health = self.engine.health()
        health["tenants"] = self.tenants.snapshot()
        health["subscriptions"] = self.subscriptions.stats()
        health["http"] = {
            "draining": self._draining,
            "inflight": self._inflight,
            "requests_served": self.requests_served,
        }
        if self._draining:
            health["status"] = "draining"
            health["ready"] = False
        status = 200 if health["ready"] else 503
        return status, health

    def _check_serving(self) -> None:
        if self._draining:
            raise ApiError(
                503, "draining",
                "the server is draining and no longer accepts queries",
            )

    def _parse_body(self, body: bytes) -> dict:
        try:
            parsed = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ApiError(
                400, "bad-json", f"request body is not valid JSON: {exc}"
            )
        if not isinstance(parsed, dict):
            raise ApiError(
                400, "bad-json", "request body must be a JSON object"
            )
        return parsed

    def _parse_query(
        self, payload: dict, headers: dict, tenant_default: str | None = None
    ) -> _ParsedQuery:
        """Validate one query object (top-level or batch member)."""
        tenant = payload.get("tenant") or tenant_default or headers.get(
            "x-tenant"
        ) or DEFAULT_TENANT
        if not isinstance(tenant, str) or not tenant:
            raise ApiError(400, "bad-tenant", "tenant must be a string")
        candidates = _parse_candidates(payload.get("candidates"))
        tau = payload.get("tau", 0.7)
        try:
            tau = float(tau)
        except (TypeError, ValueError):
            raise ApiError(400, "bad-tau", f"tau must be a number, got {tau!r}")
        if not 0.0 < tau < 1.0:
            raise ApiError(
                400, "bad-tau", f"tau must be in (0, 1), got {tau}"
            )
        algorithm = payload.get("algorithm", "PIN-VO")
        if not isinstance(algorithm, str):
            raise ApiError(
                400, "bad-algorithm", "algorithm must be a string"
            )
        priority = payload.get("priority")
        if priority is not None:
            try:
                priority = int(priority)
            except (TypeError, ValueError):
                raise ApiError(
                    400, "bad-priority",
                    f"priority must be an integer, got {priority!r}",
                )
        return _ParsedQuery(
            candidates=candidates,
            pf=_parse_pf(payload.get("pf")),
            tau=tau,
            algorithm=algorithm,
            tenant=tenant,
            priority=priority,
            timeout_ms=_parse_timeout_ms(payload, headers),
        )

    # ------------------------------------------------------------------
    # /v1/query
    # ------------------------------------------------------------------
    async def _handle_query(self, headers, body):
        self._check_serving()
        q = self._parse_query(self._parse_body(body), headers)
        budget = self.tenants.budget_for(q.tenant)
        priority = budget.priority if q.priority is None else q.priority
        controller = self.tenants.controller(q.tenant)
        if not controller.try_acquire():
            answer = await self._over_budget(q, controller, priority)
            return (*answer, q.tenant)
        try:
            result = await self._run_engine(
                self.engine.query,
                q.candidates,
                pf=q.pf,
                tau=q.tau,
                algorithm=q.algorithm,
                deadline_seconds=(
                    q.timeout_ms / 1000.0
                    if q.timeout_ms is not None else None
                ),
                priority=priority,
                tenant=q.tenant,
            )
        finally:
            controller.release()
        return 200, self._result_body(result, q.tenant), q.tenant

    async def _over_budget(self, q: _ParsedQuery, controller, priority):
        """The tenant's budget is full: approx-answer or shed with 429."""
        if self.engine.approx and q.algorithm in self.engine.APPROX_ALGORITHMS:
            # over-budget but never unanswered: the sketch estimate is
            # too cheap to need a slot, and it is honestly labelled
            self._m_approx.inc(tenant=q.tenant)
            result = await self._run_engine(
                self.engine.query_approx,
                q.candidates,
                pf=q.pf,
                tau=q.tau,
                algorithm=q.algorithm,
                reason="overload",
                tenant=q.tenant,
            )
            return 200, self._result_body(result, q.tenant)
        reason = _POLICY_REASON.get(controller.policy, "queue-full")
        shed = QueryShed(
            query_id=self.requests_served,
            reason=reason,
            policy=controller.policy,
            priority=priority,
            algorithm=q.algorithm,
            tau=q.tau,
            candidates=len(q.candidates),
            tenant=q.tenant,
        )
        controller.report.note_shed(shed)
        self._m_sheds.inc(tenant=q.tenant, reason=reason)
        return 429, self._shed_body(shed)

    def _shed_body(self, shed: QueryShed) -> dict:
        out = ApiError(
            429, "shed",
            f"tenant {shed.tenant!r} is over its admission budget "
            f"({shed.reason}, policy {shed.policy!r})",
        ).body()
        out["shed"] = {
            "tenant": shed.tenant,
            "reason": shed.reason,
            "policy": shed.policy,
            "priority": shed.priority,
            "algorithm": shed.algorithm,
        }
        return out

    def _result_body(self, result, tenant: str) -> dict:
        """The response body for one completed query."""
        inst = result.instrumentation
        return {
            "tenant": tenant,
            "algorithm": result.algorithm,
            "best_candidate": {
                "id": result.best_candidate.candidate_id,
                "x": result.best_candidate.x,
                "y": result.best_candidate.y,
            },
            "best_influence": result.best_influence,
            "influences": {str(k): v for k, v in result.influences.items()},
            "quality": result.quality,
            "error_bound": result.error_bound,
            "elapsed_ms": round(result.elapsed_seconds * 1000.0, 3),
            "degraded": bool(inst.degraded),
        }

    async def _run_engine(self, fn, *args, **kwargs):
        """Run one engine call on the bounded executor.

        The event loop never executes engine work — slow queries (and
        slow clients waiting on them) occupy an executor thread, not
        the loop.  Engine-level outcomes are translated to typed HTTP
        errors here: a deadline overrun is 504, an engine-level shed
        (the fleet backstop, when the engine itself has admission
        control) is 429, and validation errors are 400.
        """
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                self._executor, lambda: fn(*args, **kwargs)
            )
        except DeadlineExceeded:
            raise ApiError(
                504, "deadline-exceeded",
                "the query exceeded its timeout_ms budget",
            )
        except QueryShedError as exc:
            raise ApiError(
                429, "shed",
                f"engine admission shed the query ({exc.shed.reason})",
            )
        except ValueError as exc:
            raise ApiError(400, "bad-query", str(exc))
        except RuntimeError as exc:
            raise ApiError(503, "engine-closed", str(exc))

    # ------------------------------------------------------------------
    # /v1/subscribe, /v1/ingest, /v1/subscriptions/{id}
    # ------------------------------------------------------------------
    async def _handle_subscribe(self, headers, body):
        """Register a standing query; answers its version-1 snapshot."""
        self._check_serving()
        payload = self._parse_body(body)
        candidates = _parse_candidates(payload.get("candidates"))
        tau = payload.get("tau", 0.7)
        try:
            tau = float(tau)
        except (TypeError, ValueError):
            raise ApiError(400, "bad-tau", f"tau must be a number, got {tau!r}")
        if not 0.0 < tau < 1.0:
            raise ApiError(400, "bad-tau", f"tau must be in (0, 1), got {tau}")
        algorithm = payload.get("algorithm", "PIN-VO")
        pf = _parse_pf(payload.get("pf"))

        def _subscribe():
            sub_id = self.subscriptions.subscribe(
                candidates, tau=tau, pf=pf, algorithm=algorithm
            )
            return sub_id, self.subscriptions.snapshot(sub_id)

        sub_id, snap = await self._run_engine(_subscribe)
        return 200, {
            "subscription_id": sub_id,
            "snapshot": snap.to_dict(),
        }, DEFAULT_TENANT

    async def _handle_ingest(self, headers, body):
        """One coalesced ingest round of position updates."""
        self._check_serving()
        payload = self._parse_body(body)
        raw = payload.get("updates")
        if raw is None and "object_id" in payload:
            raw = [[payload.get("object_id"), payload.get("x"),
                    payload.get("y")]]
        if not isinstance(raw, list) or not raw:
            raise ApiError(
                400, "bad-updates",
                'ingest body must be {"updates": [[object_id, x, y], ...]} '
                'or {"object_id": .., "x": .., "y": ..}',
            )
        updates = []
        for i, entry in enumerate(raw):
            try:
                if isinstance(entry, dict):
                    oid = int(entry["object_id"])
                    x, y = float(entry["x"]), float(entry["y"])
                else:
                    oid = int(entry[0])
                    x, y = float(entry[1]), float(entry[2])
            except (KeyError, IndexError, TypeError, ValueError):
                raise ApiError(
                    400, "bad-updates",
                    f"updates[{i}] is not an [object_id, x, y] triple",
                )
            updates.append((oid, x, y))
        report = await self._run_engine(
            self.subscriptions.ingest_batch, updates
        )
        return 200, {
            "offered": report.offered,
            "applied": report.applied,
            "shed": [
                {"object_id": s.object_id, "reason": s.reason,
                 "policy": s.policy}
                for s in report.shed
            ],
            "safe_region_hits": report.safe_region_hits,
            "crossings": report.crossings,
            "validations": report.validations,
            "changed_subscriptions": report.changed,
            "elapsed_ms": round(report.elapsed_seconds * 1000.0, 3),
        }, DEFAULT_TENANT

    def _parse_subscription_id(self, path: str) -> int:
        raw = path.rsplit("/", 1)[-1]
        try:
            return int(raw)
        except ValueError:
            raise ApiError(
                400, "bad-subscription-id",
                f"subscription id must be an integer, got {raw!r}",
            )

    async def _handle_subscription(self, method, path):
        """GET = the current snapshot, DELETE = unsubscribe."""
        self._check_serving()
        sub_id = self._parse_subscription_id(path)
        try:
            if method == "DELETE":
                await self._run_engine(
                    self.subscriptions.unsubscribe, sub_id
                )
                return 200, {"unsubscribed": sub_id}, DEFAULT_TENANT
            snap = await self._run_engine(
                self.subscriptions.snapshot, sub_id
            )
        except KeyError:
            raise ApiError(
                404, "unknown-subscription",
                f"no subscription with id {sub_id}",
            )
        return 200, snap.to_dict(), DEFAULT_TENANT

    # ------------------------------------------------------------------
    # /v1/batch
    # ------------------------------------------------------------------
    async def _handle_batch(self, headers, body):
        """One admission round per tenant, then one engine batch.

        Members are grouped by tenant and admitted through each
        tenant's own controller (so the per-tenant shed *policy*
        applies within the round: ``by-priority`` keeps a tenant's
        high-priority members, ``oldest`` its freshest).  Admitted
        members run through :meth:`QueryEngine.query_batch`; shed ones
        come back in place as typed shed objects, preserving order.
        """
        self._check_serving()
        payload = self._parse_body(body)
        raw_queries = payload.get("queries")
        if not isinstance(raw_queries, list) or not raw_queries:
            raise ApiError(
                400, "bad-batch",
                'batch body must be {"queries": [...]} with at least '
                "one query",
            )
        batch_tenant = payload.get("tenant")
        timeout_ms = _parse_timeout_ms(payload, headers)
        queries: list[_ParsedQuery] = []
        for i, raw in enumerate(raw_queries):
            if not isinstance(raw, dict):
                raise ApiError(
                    400, "bad-batch", f"queries[{i}] must be an object"
                )
            try:
                queries.append(
                    self._parse_query(raw, headers, tenant_default=batch_tenant)
                )
            except ApiError as exc:
                raise ApiError(
                    exc.status, exc.code, f"queries[{i}]: {exc.message}"
                )

        # Per-tenant admission round over the batch members.
        by_tenant: dict[str, list[int]] = {}
        for i, q in enumerate(queries):
            by_tenant.setdefault(q.tenant, []).append(i)
        slots: list = [None] * len(queries)
        admitted: list[int] = []
        released: dict[str, int] = {}
        for tenant, indexes in by_tenant.items():
            controller = self.tenants.controller(tenant)
            budget = self.tenants.budget_for(tenant)
            priorities = [
                budget.priority
                if queries[i].priority is None else queries[i].priority
                for i in indexes
            ]
            ok, shed_pairs = controller.admit_batch(priorities)
            released[tenant] = len(ok)
            admitted.extend(indexes[k] for k in ok)
            for k, reason in shed_pairs:
                i = indexes[k]
                shed = QueryShed(
                    query_id=self.requests_served,
                    reason=reason,
                    policy=controller.policy,
                    priority=priorities[k],
                    algorithm=queries[i].algorithm,
                    tau=queries[i].tau,
                    candidates=len(queries[i].candidates),
                    tenant=tenant,
                )
                controller.report.note_shed(shed)
                self._m_sheds.inc(tenant=tenant, reason=reason)
                slots[i] = self._shed_body(shed)
        admitted.sort()

        results = []
        if admitted:
            requests = [
                QueryRequest(
                    queries[i].candidates,
                    queries[i].pf,
                    queries[i].tau,
                    queries[i].algorithm,
                    priority=(
                        queries[i].priority
                        if queries[i].priority is not None
                        else self.tenants.budget_for(queries[i].tenant).priority
                    ),
                )
                for i in admitted
            ]
            try:
                results = await self._run_engine(
                    self.engine.query_batch,
                    requests,
                    deadline_seconds=(
                        timeout_ms / 1000.0
                        if timeout_ms is not None else None
                    ),
                )
            finally:
                for tenant, n in released.items():
                    if n:
                        self.tenants.release(tenant, n)
        for i, res in zip(admitted, results):
            if isinstance(res, QueryShed):
                # the engine-level (fleet backstop) admission shed it
                self._m_sheds.inc(
                    tenant=queries[i].tenant, reason=res.reason
                )
                slots[i] = self._shed_body(res)
            else:
                slots[i] = self._result_body(res, queries[i].tenant)
        tenant_label = (
            batch_tenant if isinstance(batch_tenant, str) and batch_tenant
            else DEFAULT_TENANT
        )
        return 200, {"results": slots}, tenant_label


class BackgroundServer:
    """A front end running on a private event loop in a daemon thread.

    The form tests and the in-process benchmark harness use::

        with BackgroundServer(engine, tenants=...) as server:
            ... speak HTTP to server.port ...

    ``stop()`` (or leaving the context) runs the full drain on the
    server's loop and joins the thread.
    """

    def __init__(self, engine: QueryEngine, **kwargs):
        self.front = HTTPFrontEnd(engine, **kwargs)
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._stopped = False
        self._thread = threading.Thread(
            target=self._run, name="pinls-http-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("HTTP front end failed to start in 10s")
        if self._start_error is not None:
            raise self._start_error

    _start_error: BaseException | None = None

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.front.start())
        except BaseException as exc:  # noqa: BLE001 - surfaced to the creator
            self._start_error = exc
            self._started.set()
            return
        self._started.set()
        self._loop.run_forever()
        # stop() stops the loop after draining; close it here so the
        # owning thread is the one that tears its loop down
        self._loop.close()

    @property
    def port(self) -> int:
        return self.front.port

    @property
    def url(self) -> str:
        return self.front.url

    def stop(self) -> dict:
        """Drain on the server's loop, stop it, join the thread."""
        if self._stopped:
            return {"drained": True, "already": True}
        self._stopped = True
        future = asyncio.run_coroutine_threadsafe(
            self.front.drain(), self._loop
        )
        summary = future.result(timeout=self.front.drain_seconds + 30.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        return summary

    def __enter__(self) -> "BackgroundServer":
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False


def run_server(
    engine: QueryEngine,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    tenants: TenantAdmission | None = None,
    engine_threads: int = 4,
    drain_seconds: float = DEFAULT_DRAIN_SECONDS,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    read_timeout: float = DEFAULT_READ_TIMEOUT,
    write_timeout: float = DEFAULT_WRITE_TIMEOUT,
    out=None,
) -> int:
    """Blocking entry point: serve until SIGTERM/SIGINT, drain, exit 0.

    Prints one ``serving on http://host:port`` line once bound (so
    wrappers and CI can discover an ephemeral port), then per-tenant
    shed lines and the drain status on shutdown.  Returns the process
    exit code — 0 after a clean drain.
    """
    out = out or sys.stdout
    front = HTTPFrontEnd(
        engine,
        host=host,
        port=port,
        tenants=tenants,
        engine_threads=engine_threads,
        drain_seconds=drain_seconds,
        max_body_bytes=max_body_bytes,
        read_timeout=read_timeout,
        write_timeout=write_timeout,
    )

    async def _serve() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stop.set)
        await front.start()
        print(f"serving on {front.url}", file=out, flush=True)
        await stop.wait()
        print("drain: signal received, draining", file=out, flush=True)
        await front.drain()

    asyncio.run(_serve())
    for line in front.drain_lines():
        print(line, file=out)
    if hasattr(out, "flush"):
        out.flush()
    return 0
